"""Setup shim so that editable installs work without the ``wheel`` package.

The project metadata lives in ``pyproject.toml``; this file only enables the
legacy ``pip install -e . --no-use-pep517`` code path in offline environments
where PEP 660 editable wheels cannot be built.
"""

from setuptools import setup

setup()
