"""Tests for the workload registry (the paper's Q1–Q6 and user-study targets)."""

import pytest

from repro.sql.render import render_query
from repro.workloads import WORKLOADS, build_pair, workload


class TestWorkloadRegistry:
    def test_all_paper_queries_registered(self):
        assert {"Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "U1", "U2", "U3"} <= set(WORKLOADS)

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            workload("Q99")

    def test_expected_result_sizes(self):
        expected = {"Q1": 1, "Q2": 6, "Q3": 5, "Q4": 14, "Q5": 4, "Q6": 4}
        for name, size in expected.items():
            assert WORKLOADS[name].expected_result_size == size

    @pytest.mark.parametrize("name", ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6"])
    def test_build_pair_matches_expected_cardinality(self, name):
        database, result, target = build_pair(name, scale=0.03)
        assert len(result) == WORKLOADS[name].expected_result_size
        assert set(target.tables) <= set(database.table_names)

    def test_queries_render_to_sql(self):
        for name, entry in WORKLOADS.items():
            sql = render_query(entry.target_query)
            assert sql.startswith("SELECT"), name

    def test_q1_q2_use_dnf_over_pvalues(self):
        q1 = WORKLOADS["Q1"].target_query
        q2 = WORKLOADS["Q2"].target_query
        # the (pvalue1 OR pvalue2 OR ...) factor expands to 4 conjuncts in DNF
        assert len(q1.predicate.conjuncts) == 4
        assert len(q2.predicate.conjuncts) == 4

    def test_q6_is_disjunctive(self):
        q6 = WORKLOADS["Q6"].target_query
        assert len(q6.predicate.conjuncts) == 2

    def test_join_table_counts(self):
        assert len(WORKLOADS["Q1"].target_query.tables) == 2
        assert len(WORKLOADS["Q3"].target_query.tables) == 2
        assert len(WORKLOADS["Q4"].target_query.tables) == 3
