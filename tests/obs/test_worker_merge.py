"""Worker-side counters must surface in the parent after a pooled round.

The process-pool workers evaluate attempts in separate processes, so every
``JOIN_STATS``/``COLUMNAR_STATS`` increment they make would be invisible to
the driver unless each work unit ships its counter deltas back with its
outcomes and the backend merges them into the parent registry.
"""

from __future__ import annotations

import pytest

from repro.core.config import QFEConfig
from repro.core.execution_backend import ProcessPoolBackend
from repro.core.round_planner import RoundPlanner
from repro.relational.columnar import COLUMNAR_STATS
from repro.relational.join import JOIN_STATS


@pytest.fixture(scope="module")
def process_backend():
    backend = ProcessPoolBackend(2)
    yield backend
    backend.close()


def test_worker_counters_merge_into_the_parent(
    employee_db, employee_result, employee_candidates, process_backend
):
    planner = RoundPlanner(QFEConfig())
    plan = planner.prepare_round(employee_db, employee_result, employee_candidates)

    # Attempt evaluation happens exclusively inside the workers; freeze the
    # parent's view after preparation so any growth must come from the merge.
    join_before = JOIN_STATS.snapshot()
    columnar_before = sum(COLUMNAR_STATS.snapshot().values())

    outcomes = planner.execute(plan, stop_at_first=False, backend=process_backend)

    assert outcomes  # the round actually ran attempts
    full_joins, delta_applies = JOIN_STATS.snapshot()
    assert delta_applies > join_before[1], (
        "worker delta-apply counts never reached the parent registry"
    )
    # Workers never perform full joins (the delta-only protocol).
    assert full_joins == join_before[0]
    assert sum(COLUMNAR_STATS.snapshot().values()) > columnar_before, (
        "worker columnar counters (masks/index probes/zone skips) were not merged"
    )


def test_serial_execute_needs_no_merge(
    employee_db, employee_result, employee_candidates
):
    # Control: the serial backend evaluates in-process, so counters move
    # without any shipping. This pins down that the pooled assertion above
    # is exercising the merge path rather than parent-side evaluation.
    planner = RoundPlanner(QFEConfig())
    plan = planner.prepare_round(employee_db, employee_result, employee_candidates)
    before = JOIN_STATS.delta_applies
    planner.execute(plan, stop_at_first=False)
    assert JOIN_STATS.delta_applies > before
