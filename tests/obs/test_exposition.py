"""Prometheus text exposition: renderer output and the /metrics endpoint."""

from __future__ import annotations

import urllib.request

import pytest

from repro.obs.exposition import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.obs.registry import MetricsRegistry
from repro.service.manager import SessionManager
from repro.service.server import make_server
from repro.service.store import InMemorySessionStore


class TestRenderPrometheus:
    def test_counter_with_help_type_and_default_zero(self):
        registry = MetricsRegistry()
        registry.counter("qfe_x_total", "Things counted.")
        text = render_prometheus(registry)
        assert "# HELP qfe_x_total Things counted.\n" in text
        assert "# TYPE qfe_x_total counter\n" in text
        assert "\nqfe_x_total 0\n" in text

    def test_labeled_counter_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("qfe_hits_total", labels=("kind",))
        counter.inc(2, kind="a")
        counter.inc(kind='we"ird\\')
        text = render_prometheus(registry)
        assert 'qfe_hits_total{kind="a"} 2' in text
        assert 'qfe_hits_total{kind="we\\"ird\\\\"} 1' in text

    def test_gauge_kind(self):
        registry = MetricsRegistry()
        registry.gauge("qfe_live", "Live things.").inc(3)
        text = render_prometheus(registry)
        assert "# TYPE qfe_live gauge\n" in text
        assert "\nqfe_live 3\n" in text

    def test_histogram_buckets_sum_count(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("qfe_lat_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        text = render_prometheus(registry)
        assert 'qfe_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'qfe_lat_seconds_bucket{le="1"} 2' in text
        assert 'qfe_lat_seconds_bucket{le="+Inf"} 3' in text
        assert "qfe_lat_seconds_sum 5.55" in text
        assert "qfe_lat_seconds_count 3" in text

    def test_first_registry_wins_on_duplicates(self):
        private, shared = MetricsRegistry(), MetricsRegistry()
        private.counter("qfe_dup_total").inc(1)
        shared.counter("qfe_dup_total").inc(9)
        text = render_prometheus(private, shared)
        samples = [line for line in text.splitlines() if line.startswith("qfe_dup_total ")]
        assert samples == ["qfe_dup_total 1"]

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_output_parses_line_by_line(self):
        registry = MetricsRegistry()
        registry.counter("qfe_a_total").inc(1)
        registry.histogram("qfe_b_seconds").observe(0.2)
        for line in render_prometheus(registry).splitlines():
            assert line.startswith("#") or " " in line
            if not line.startswith("#"):
                name_part, value = line.rsplit(" ", 1)
                float(value)  # every sample value must parse as a number


@pytest.fixture(scope="module")
def service_url():
    manager = SessionManager(store=InMemorySessionStore())
    server = make_server(manager)
    server.serve_background()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", manager
    server.close()


def _get(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request) as response:
        return response.status, response.headers.get("Content-Type"), response.read().decode("utf-8")


class TestMetricsEndpoint:
    def test_json_remains_the_default(self, service_url):
        url, _ = service_url
        status, content_type, body = _get(f"{url}/metrics")
        assert status == 200
        assert content_type.startswith("application/json")
        import json

        payload = json.loads(body)
        assert "rounds_served" in payload
        assert set(payload["round_latency_seconds"]) == {"count", "p50", "p95"}

    def test_query_parameter_selects_prometheus(self, service_url):
        url, manager = service_url
        manager._metrics.bump("rounds_served")
        manager._metrics.observe_round_latency(0.02)
        status, content_type, body = _get(f"{url}/metrics?format=prometheus")
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        assert "# TYPE qfe_service_rounds_served counter" in body
        assert "# TYPE qfe_service_round_latency_seconds histogram" in body
        assert 'qfe_service_round_latency_seconds_bucket{le="+Inf"} 1' in body
        assert "qfe_service_round_latency_seconds_count 1" in body
        # Live gauges ride along with the counter snapshot.
        assert "qfe_service_active_sessions 0" in body
        # Process-wide registry metrics (join/columnar/pushdown) are exposed too.
        assert "qfe_join_full_joins" in body

    def test_accept_header_selects_prometheus(self, service_url):
        url, _ = service_url
        status, content_type, body = _get(
            f"{url}/metrics", headers={"Accept": "text/plain; version=0.0.4"}
        )
        # An Accept header without "prometheus" keeps the JSON default...
        assert content_type.startswith("application/json")
        status, content_type, body = _get(
            f"{url}/metrics",
            headers={"Accept": "application/openmetrics-text, text/plain;prometheus"},
        )
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        assert body.startswith("# ")
