"""MetricsRegistry: instruments, labels, facade stats, worker merge, threads."""

from __future__ import annotations

import threading

import pytest

from repro.obs.registry import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RegistryStats,
    reset_all_stats,
)


class TestCounter:
    def test_inc_get_and_value(self):
        counter = MetricsRegistry().counter("c_total")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_set_overwrites(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc(3)
        counter.set(1)
        assert counter.value == 1

    def test_labeled_series_are_independent(self):
        counter = MetricsRegistry().counter("c_total", labels=("kind",))
        counter.inc(kind="a")
        counter.inc(2, kind="b")
        assert counter.get(kind="a") == 1
        assert counter.get(kind="b") == 2
        assert counter.series() == {("a",): 1, ("b",): 2}

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        plain = registry.counter("plain_total")
        with pytest.raises(ValueError):
            plain.inc(kind="a")
        labeled = registry.counter("labeled_total", labels=("kind",))
        with pytest.raises(ValueError):
            labeled.inc()
        with pytest.raises(ValueError):
            labeled.inc(other="x")

    def test_gauge_goes_down(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 3


class TestHistogram:
    def test_buckets_are_cumulative_with_inf(self):
        histogram = MetricsRegistry().histogram("h", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 4
        assert snapshot["sum"] == pytest.approx(6.05)
        bounds = [bound for bound, _ in snapshot["buckets"]]
        counts = [count for _, count in snapshot["buckets"]]
        assert bounds == [0.1, 1.0, float("inf")]
        assert counts == [1, 3, 4]

    def test_quantile_matches_legacy_nearest_rank(self):
        histogram = MetricsRegistry().histogram("h", reservoir=16)
        samples = [0.4, 0.1, 0.3, 0.2]
        for value in samples:
            histogram.observe(value)
        ordered = sorted(samples)

        def legacy(fraction):
            index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
            return ordered[index]

        assert histogram.quantile(0.50) == legacy(0.50)
        assert histogram.quantile(0.95) == legacy(0.95)

    def test_quantile_none_when_empty(self):
        histogram = MetricsRegistry().histogram("h", reservoir=4)
        assert histogram.quantile(0.5) is None

    def test_reservoir_is_bounded(self):
        histogram = MetricsRegistry().histogram("h", reservoir=3)
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        # Window keeps the most recent 3; count keeps the full total.
        assert histogram.quantile(0.0) == 2.0
        assert histogram.observation_count() == 4


class TestRegistry:
    def test_creation_is_memoized_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_label_signature_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", labels=("kind",))
        with pytest.raises(ValueError):
            registry.counter("x")

    def test_reset_zeroes_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(7)
        registry.histogram("h").observe(1.0)
        registry.reset()
        assert registry.counter("c").value == 0
        assert registry.histogram("h").snapshot()["count"] == 0

    def test_reset_all_stats_targets_the_default_registry(self):
        name = "qfe_test_reset_probe"
        REGISTRY.counter(name).inc(3)
        reset_all_stats()
        assert REGISTRY.counter(name).value == 0


class TestWorkerMergeProtocol:
    def test_deltas_then_merge_roundtrip(self):
        worker = MetricsRegistry()
        worker.counter("events_total").inc(5)
        before = worker.counter_values()
        worker.counter("events_total").inc(2)
        worker.counter("other_total", labels=("kind",)).inc(3, kind="a")
        deltas = worker.counter_deltas(before)
        assert deltas == {"events_total": {(): 2}, "other_total": {("a",): 3}}

        driver = MetricsRegistry()
        driver.counter("events_total").inc(10)
        driver.counter("other_total", labels=("kind",)).inc(1, kind="a")
        driver.merge_counter_deltas(deltas)
        assert driver.counter("events_total").value == 12
        assert driver.counter("other_total", labels=("kind",)).get(kind="a") == 4

    def test_gauges_are_excluded_from_snapshots(self):
        registry = MetricsRegistry()
        registry.gauge("live").inc(3)
        registry.counter("done_total").inc(1)
        assert set(registry.counter_values()) == {"done_total"}

    def test_merge_is_commutative(self):
        deltas = [
            {"a_total": {(): 1}},
            {"a_total": {(): 2}, "b_total": {(): 5}},
            {"b_total": {(): 7}},
        ]
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for registry in (forward, backward):
            registry.counter("a_total")
            registry.counter("b_total")
        for delta in deltas:
            forward.merge_counter_deltas(delta)
        for delta in reversed(deltas):
            backward.merge_counter_deltas(delta)
        assert forward.counter_values() == backward.counter_values()

    def test_merge_skips_unknown_labeled_series(self):
        driver = MetricsRegistry()
        # Label names are not recoverable from a series key, so an unknown
        # labeled counter is dropped rather than guessed at.
        driver.merge_counter_deltas({"ghost_total": {("a",): 3}})
        assert driver.get("ghost_total") is None
        # An unknown *unlabeled* counter is materialized on the fly.
        driver.merge_counter_deltas({"plain_total": {(): 2}})
        assert driver.counter("plain_total").value == 2


class _ProbeStats(RegistryStats):
    _PREFIX = "qfe_probe"
    _FIELDS = ("hits", "misses")


class TestRegistryStatsFacade:
    def test_attribute_round_trip(self):
        stats = _ProbeStats(MetricsRegistry())
        stats.hits += 1
        stats.hits += 1
        stats.misses = 5
        assert stats.hits == 2
        assert stats.misses == 5
        assert stats.snapshot() == {"hits": 2, "misses": 5}

    def test_reset(self):
        stats = _ProbeStats(MetricsRegistry())
        stats.hits += 3
        stats.reset()
        assert stats.hits == 0

    def test_values_are_registry_visible(self):
        registry = MetricsRegistry()
        stats = _ProbeStats(registry)
        stats.hits += 4
        assert registry.counter("qfe_probe_hits").value == 4

    def test_unknown_attribute_raises(self):
        stats = _ProbeStats(MetricsRegistry())
        with pytest.raises(AttributeError):
            stats.nonexistent


class TestConcurrency:
    def test_threads_hammering_counters_lose_no_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("hammer_total", labels=("worker",))
        histogram = registry.histogram("hammer_seconds", reservoir=64)
        increments_per_thread, thread_count = 2000, 8
        barrier = threading.Barrier(thread_count)

        def hammer(worker_id: int) -> None:
            barrier.wait()
            for index in range(increments_per_thread):
                counter.inc(worker=worker_id % 4)
                if index % 50 == 0:
                    histogram.observe(index / increments_per_thread)

        threads = [
            threading.Thread(target=hammer, args=(worker_id,))
            for worker_id in range(thread_count)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = sum(counter.series().values())
        assert total == increments_per_thread * thread_count
        expected_observations = thread_count * (increments_per_thread // 50)
        assert histogram.observation_count() == expected_observations

    def test_threads_hammering_facade_attributes(self):
        stats = _ProbeStats(MetricsRegistry())
        thread_count, increments = 4, 1000
        barrier = threading.Barrier(thread_count)

        def hammer() -> None:
            barrier.wait()
            for _ in range(increments):
                # The legacy `stats.field += 1` is a read-modify-write and was
                # never atomic; hammer through inc() (the atomic path) and
                # just assert the facade machinery itself is thread-safe.
                stats._counters["hits"].inc()

        threads = [threading.Thread(target=hammer) for _ in range(thread_count)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.hits == thread_count * increments
