"""Tracer: span records, nesting, sinks, pid guard, summary, CLI, validator."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.summary import aggregate_phases, phase_breakdown, render_summary
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    start_tracing,
    stop_tracing,
)

_REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(autouse=True)
def _restore_tracer():
    previous = get_tracer()
    yield
    set_tracer(previous)


class TestSpans:
    def test_span_records_name_duration_and_attrs(self):
        spans: list = []
        tracer = Tracer(spans)
        with tracer.span("work", kind="unit"):
            pass
        (record,) = spans
        assert record["name"] == "work"
        assert record["attrs"] == {"kind": "unit"}
        assert record["duration_s"] >= 0
        assert record["parent_id"] is None

    def test_nesting_links_parent_ids(self):
        spans: list = []
        tracer = Tracer(spans)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        by_name = {record["name"]: record for record in spans}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["sibling"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["parent_id"] is None
        # Children close (and are written) before their parent.
        assert spans[-1]["name"] == "outer"

    def test_span_ids_are_unique(self):
        spans: list = []
        tracer = Tracer(spans)
        for _ in range(10):
            with tracer.span("tick"):
                pass
        ids = [record["span_id"] for record in spans]
        assert len(set(ids)) == len(ids)

    def test_set_attaches_attrs_mid_span(self):
        spans: list = []
        tracer = Tracer(spans)
        with tracer.span("work") as span:
            span.set(rows=42)
        assert spans[0]["attrs"] == {"rows": 42}

    def test_exception_marks_the_span_and_propagates(self):
        spans: list = []
        tracer = Tracer(spans)
        with pytest.raises(RuntimeError):
            with tracer.span("work"):
                raise RuntimeError("boom")
        assert spans[0]["attrs"]["error"] == "RuntimeError"

    def test_forked_process_gets_noop_spans(self):
        spans: list = []
        tracer = Tracer(spans)
        tracer._pid -= 1  # simulate being inherited by a forked child
        with tracer.span("work"):
            pass
        assert spans == []


class TestFileSink:
    def test_start_stop_tracing_writes_json_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = start_tracing(path)
        assert get_tracer() is tracer
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        stop_tracing()
        assert isinstance(get_tracer(), NullTracer)
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert [record["name"] for record in records] == ["inner", "outer"]

    def test_stop_tracing_is_idempotent(self, tmp_path):
        start_tracing(tmp_path / "t.jsonl")
        stop_tracing()
        stop_tracing()


class TestNullTracer:
    def test_null_tracer_spans_are_shared_noops(self):
        one = NULL_TRACER.span("a")
        two = NULL_TRACER.span("b", attr=1)
        assert one is two
        with one as span:
            span.set(anything=True)
        assert not NULL_TRACER.enabled


def _round_spans(tracer):
    """Emit one synthetic round's span tree with known durations."""
    with tracer.span("session.propose", iteration=1):
        with tracer.span("round.prepare"):
            pass
        with tracer.span("round.search", backend="process-pool"):
            with tracer.span("backend.broadcast"):
                pass
            with tracer.span("backend.wave", units=2):
                pass
            with tracer.span("backend.merge"):
                pass
        with tracer.span("round.materialize"):
            pass
        with tracer.span("round.present"):
            pass


class TestSummary:
    def test_phases_sum_to_round_wall_clock(self):
        spans: list = []
        _round_spans(Tracer(spans))
        (entry,) = phase_breakdown(spans)
        assert entry["round"] == 1
        assert sum(entry["phases"].values()) == pytest.approx(entry["total_s"])

    def test_aggregate_phases_covers_all_rounds(self):
        spans: list = []
        tracer = Tracer(spans)
        _round_spans(tracer)
        _round_spans(tracer)
        totals = aggregate_phases(spans)
        per_round = phase_breakdown(spans)
        assert len(per_round) == 2
        assert totals["prepare"] == pytest.approx(
            sum(entry["phases"]["prepare"] for entry in per_round), abs=1e-5
        )

    def test_render_summary_has_a_row_per_round_plus_totals(self):
        spans: list = []
        tracer = Tracer(spans)
        _round_spans(tracer)
        _round_spans(tracer)
        text = render_summary(spans)
        lines = text.strip().splitlines()
        assert lines[0].split()[:2] == ["round", "total_s"]
        assert len(lines) == 2 + 2 + 1  # header, rule, two rounds, totals
        assert lines[-1].split()[0] == "all"

    def test_render_summary_empty_trace(self):
        assert "no session.propose spans" in render_summary([])

    def test_summary_reads_a_span_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = start_tracing(path)
        _round_spans(tracer)
        stop_tracing()
        (entry,) = phase_breakdown(str(path))
        assert sum(entry["phases"].values()) == pytest.approx(entry["total_s"])


class TestTraceCli:
    def test_qfe_trace_summary(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = start_tracing(path)
        _round_spans(tracer)
        stop_tracing()
        from repro.obs.cli import main

        proc_out = []

        class _Capture:
            def write(self, text):
                proc_out.append(text)

        stdout, sys.stdout = sys.stdout, _Capture()
        try:
            code = main(["summary", str(path)])
        finally:
            sys.stdout = stdout
        assert code == 0
        assert "round" in "".join(proc_out)

    def test_qfe_trace_summary_missing_file(self):
        from repro.obs.cli import main

        assert main(["summary", "/nonexistent/trace.jsonl"]) == 2


class TestCheckTraceScript:
    def _run(self, path):
        return subprocess.run(
            [sys.executable, str(_REPO_ROOT / "scripts" / "check_trace.py"), str(path)],
            capture_output=True,
            text=True,
        )

    def test_valid_trace_passes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = start_tracing(path)
        _round_spans(tracer)
        stop_tracing()
        result = self._run(path)
        assert result.returncode == 0, result.stderr

    def test_malformed_trace_fails(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "x"}\nnot json\n')
        result = self._run(path)
        assert result.returncode == 1
        assert "missing field" in result.stderr
        assert "not valid JSON" in result.stderr

    def test_dangling_parent_fails(self, tmp_path):
        spans: list = []
        _round_spans(Tracer(spans))
        spans[0]["parent_id"] = 9999
        path = tmp_path / "dangling.jsonl"
        path.write_text("".join(json.dumps(span) + "\n" for span in spans))
        result = self._run(path)
        assert result.returncode == 1
        assert "dangling parent_id" in result.stderr
