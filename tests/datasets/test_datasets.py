"""Tests for the synthetic dataset builders (shape, determinism, planted rows)."""

import pytest

from repro.datasets import adult, baseball, employee, scientific
from repro.datasets.synth import identifier, log_fold_change, p_value, rng_for, scaled_count
from repro.relational.constraints import modification_is_valid
from repro.relational.evaluator import evaluate
from repro.relational.join import full_join
from repro.workloads import baseball_queries, scientific_queries


class TestSynthHelpers:
    def test_rng_is_deterministic(self):
        assert rng_for("x").random() == rng_for("x").random()
        assert rng_for("x").random() != rng_for("y").random()

    def test_identifier_format(self):
        value = identifier(rng_for("id"), "gene")
        assert value.startswith("gene_") and len(value) == len("gene_") + 6

    def test_p_value_range(self):
        rng = rng_for("p")
        values = [p_value(rng) for _ in range(200)]
        assert all(0 < v <= 1 for v in values)
        assert any(v < 0.05 for v in values)

    def test_log_fold_change_bounded(self):
        rng = rng_for("fc")
        assert all(abs(log_fold_change(rng)) <= 6.0 for _ in range(100))

    def test_scaled_count(self):
        assert scaled_count(100, 0.5) == 50
        assert scaled_count(100, 0.0001) == 1
        assert scaled_count(10, 2.0) == 20


class TestEmployeeDataset:
    def test_example_pair(self):
        database, result, target = employee.example_pair()
        assert len(database.relation("Employee")) == 4
        assert evaluate(target, database).bag_equal(result)
        assert len(employee.candidate_trio()) == 3


class TestScientificDataset:
    def test_schema_shape(self, scientific_db):
        main = scientific_db.relation(scientific.MAIN_TABLE)
        side = scientific_db.relation(scientific.SIDE_TABLE)
        assert main.schema.arity == 16
        assert side.schema.arity == 3

    def test_planted_query_cardinalities(self, scientific_db):
        queries = scientific_queries()
        assert len(evaluate(queries["Q1"], scientific_db)) == 1
        assert len(evaluate(queries["Q2"], scientific_db)) == 6

    def test_join_smaller_than_side_table(self, scientific_db):
        side = scientific_db.relation(scientific.SIDE_TABLE)
        assert len(full_join(scientific_db)) < len(side)

    def test_deterministic(self):
        first = scientific.build_database(0.02)
        second = scientific.build_database(0.02)
        for name in first.table_names:
            assert first.relation(name).bag_equal(second.relation(name))

    def test_scale_changes_background_only(self):
        small = scientific.build_database(0.02)
        large = scientific.build_database(0.05)
        assert large.total_tuples() > small.total_tuples()
        queries = scientific_queries()
        assert len(evaluate(queries["Q2"], small)) == len(evaluate(queries["Q2"], large)) == 6

    def test_constraints_hold(self, scientific_db):
        assert modification_is_valid(scientific_db)

    def test_full_scale_row_counts(self):
        # construct only the row-count arithmetic, not the full database
        assert scientific.FULL_MAIN_ROWS == 3926
        assert scientific.FULL_SIDE_ROWS == 424
        assert scientific.FULL_JOIN_ROWS == 417


class TestBaseballDataset:
    def test_schema_shape(self, baseball_db):
        assert baseball_db.relation(baseball.TEAM_TABLE).schema.arity == 29
        assert baseball_db.relation(baseball.MANAGER_TABLE).schema.arity == 11
        assert baseball_db.relation(baseball.BATTING_TABLE).schema.arity == 15

    def test_planted_query_cardinalities(self, baseball_db):
        queries = baseball_queries()
        expected = {"Q3": 5, "Q4": 14, "Q5": 4, "Q6": 4}
        for name, query in queries.items():
            assert len(evaluate(query, baseball_db)) == expected[name], name

    def test_deterministic(self):
        first = baseball.build_database(0.02)
        second = baseball.build_database(0.02)
        for name in first.table_names:
            assert first.relation(name).bag_equal(second.relation(name))

    def test_constraints_hold(self, baseball_db):
        assert modification_is_valid(baseball_db)

    def test_join_has_manager_fanout(self, baseball_db):
        joined = full_join(baseball_db)
        batting = baseball_db.relation(baseball.BATTING_TABLE)
        fanouts = [joined.fanout_of(baseball.BATTING_TABLE, t.tuple_id) for t in batting.tuples]
        assert max(fanouts) >= 1
        # some batting rows join with two manager stints at larger scales;
        # at tiny scale just require the join to be non-degenerate
        assert sum(fanouts) == len(joined)


class TestAdultDataset:
    def test_schema_shape(self, adult_db):
        assert adult_db.relation(adult.ADULT_TABLE).schema.arity == 15

    def test_user_study_queries_have_small_results(self, adult_db):
        for query in adult.user_study_queries():
            result = evaluate(query, adult_db)
            assert 1 <= len(result) <= 10

    def test_example_pair(self):
        database, result, target = adult.example_pair(0, scale=0.02)
        assert evaluate(target, database).bag_equal(result)

    def test_deterministic(self):
        first = adult.build_database(0.02)
        second = adult.build_database(0.02)
        assert first.relation(adult.ADULT_TABLE).bag_equal(second.relation(adult.ADULT_TABLE))

    def test_planted_counts_stable_across_scales(self):
        queries = adult.user_study_queries()
        small = adult.build_database(0.02)
        larger = adult.build_database(0.06)
        for query in queries:
            assert len(evaluate(query, small)) == len(evaluate(query, larger))
