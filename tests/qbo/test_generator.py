"""Unit and integration tests for the QBO-style query generator."""

import pytest

from repro.exceptions import NoCandidateQueriesError
from repro.qbo.config import QBOConfig
from repro.qbo.generator import QueryGenerator
from repro.relational.evaluator import evaluate
from repro.relational.relation import Relation


class TestGeneratorOnEmployee:
    def test_all_candidates_reproduce_result(self, employee_db, employee_result):
        generator = QueryGenerator(QBOConfig(threshold_variants=2))
        candidates = generator.generate(employee_db, employee_result)
        assert candidates
        for query in candidates:
            assert evaluate(query, employee_db).bag_equal(employee_result)

    def test_paper_candidates_are_found(self, employee_db, employee_result, employee_candidates):
        generator = QueryGenerator(QBOConfig(threshold_variants=3))
        found = generator.generate(employee_db, employee_result)
        # gender = 'M' and dept = 'IT' must be among the generated candidates;
        # salary > 4000 is represented by an equivalent-on-D threshold variant.
        predicates = {str(q.predicate) for q in found}
        assert any("gender" in p for p in predicates)
        assert any("dept" in p for p in predicates)
        assert any("salary" in p for p in predicates)

    def test_candidates_are_unique(self, employee_db, employee_result):
        generator = QueryGenerator(QBOConfig(threshold_variants=3))
        candidates = generator.generate(employee_db, employee_result)
        assert len({q.canonical_key() for q in candidates}) == len(candidates)

    def test_deterministic_output(self, employee_db, employee_result):
        first = QueryGenerator(QBOConfig()).generate(employee_db, employee_result)
        second = QueryGenerator(QBOConfig()).generate(employee_db, employee_result)
        assert [str(q) for q in first] == [str(q) for q in second]

    def test_max_candidates_cap(self, employee_db, employee_result):
        generator = QueryGenerator(QBOConfig(threshold_variants=3, max_candidates=3))
        assert len(generator.generate(employee_db, employee_result)) <= 3

    def test_report_populated(self, employee_db, employee_result):
        generator = QueryGenerator(QBOConfig())
        generator.generate(employee_db, employee_result)
        report = generator.last_report
        assert report is not None
        assert report.candidate_count > 0
        assert report.join_schemas_tried >= 1
        assert report.elapsed_seconds >= 0

    def test_impossible_result_raises(self, employee_db):
        impossible = Relation.from_rows("R", ["Employee.name"], [["Nobody"]])
        with pytest.raises(NoCandidateQueriesError):
            QueryGenerator(QBOConfig()).generate(employee_db, impossible)

    def test_key_columns_excluded_by_default(self, employee_db, employee_result):
        candidates = QueryGenerator(QBOConfig(threshold_variants=2)).generate(
            employee_db, employee_result
        )
        assert not any(
            "Employee.Eid" in query.selection_attributes() for query in candidates
        )
        with_keys = QueryGenerator(
            QBOConfig(threshold_variants=2, exclude_key_columns=False)
        ).generate(employee_db, employee_result)
        assert any("Employee.Eid" in query.selection_attributes() for query in with_keys)


class TestGeneratorOnJoins:
    def test_join_candidates(self, two_table_db):
        result = Relation.from_rows("R", ["ename", "dname"], [["Ann", "IT"], ["Cy", "IT"]])
        candidates = QueryGenerator(QBOConfig()).generate(two_table_db, result)
        assert candidates
        for query in candidates:
            assert set(query.tables) == {"Emp", "Dept"}
            assert evaluate(query, two_table_db).bag_equal(result)

    def test_trivial_result_includes_unselective_query(self, two_table_db):
        result = Relation.from_rows(
            "R", ["dname"], [["IT"], ["Sales"], ["Service"]]
        )
        candidates = QueryGenerator(QBOConfig()).generate(two_table_db, result)
        assert any(query.predicate.is_true for query in candidates)

    def test_set_semantics_generation(self, two_table_db):
        result = Relation.from_rows("R", ["dname"], [["IT"]])
        candidates = QueryGenerator(QBOConfig()).generate(
            two_table_db, result, set_semantics=True
        )
        assert candidates
        for query in candidates:
            produced = evaluate(query, two_table_db)
            assert produced.set_equal(result)


class TestGeneratorOnWorkloads:
    def test_scientific_q2_candidates(self, scientific_db):
        from repro.workloads import scientific_queries

        target = scientific_queries()["Q2"]
        result = evaluate(target, scientific_db, name="R")
        generator = QueryGenerator(QBOConfig(threshold_variants=2, max_candidates=25))
        candidates = generator.generate(scientific_db, result)
        assert len(candidates) >= 5
        for query in candidates[:10]:
            assert evaluate(query, scientific_db).bag_equal(result)
