"""Unit tests for candidate atom generation."""

from repro.qbo.atoms import build_atom_pool
from repro.qbo.config import QBOConfig
from repro.relational.join import full_join
from repro.relational.predicates import ComparisonOp


def _pool(db, positive, negative, **config_kwargs):
    joined = full_join(db)
    config = QBOConfig(**config_kwargs)
    return joined, build_atom_pool(joined, positive, negative, config)


class TestAtomInvariants:
    def test_atoms_cover_all_positives(self, two_table_db):
        joined, pool = _pool(two_table_db, positive=[0, 2], negative=[1, 3, 4])
        for atom in pool:
            assert {0, 2} <= set(atom.selected)

    def test_atoms_exclude_some_negative(self, two_table_db):
        joined, pool = _pool(two_table_db, positive=[0, 2], negative=[1, 3, 4])
        for atom in pool:
            assert atom.excludes([1, 3, 4])

    def test_deterministic_order(self, two_table_db):
        _, first = _pool(two_table_db, positive=[0], negative=[1, 2, 3, 4])
        _, second = _pool(two_table_db, positive=[0], negative=[1, 2, 3, 4])
        assert [str(a.term) for a in first] == [str(a.term) for a in second]

    def test_excluded_attributes_respected(self, two_table_db):
        joined = full_join(two_table_db)
        config = QBOConfig()
        pool = build_atom_pool(
            joined, [0], [1, 2, 3, 4], config,
            excluded_attributes=("Emp.eid", "Emp.did", "Dept.did"),
        )
        attributes = {atom.term.attribute for atom in pool}
        assert "Emp.eid" not in attributes
        assert "Emp.did" not in attributes


class TestNumericAtoms:
    def test_threshold_variants_scale_with_config(self, two_table_db):
        _, one = _pool(two_table_db, positive=[0], negative=[1, 3, 4], threshold_variants=1)
        _, three = _pool(two_table_db, positive=[0], negative=[1, 3, 4], threshold_variants=3)
        salary_one = [a for a in one if a.term.attribute == "Emp.salary"]
        salary_three = [a for a in three if a.term.attribute == "Emp.salary"]
        assert len(salary_three) >= len(salary_one)

    def test_integer_domain_avoids_equivalent_thresholds(self, two_table_db):
        # Emp.salary values: 90(+), 55, 70, 40, 65 — all integers. The variants
        # emitted for the positive row must be pairwise distinguishable, i.e.
        # an integer value can fall strictly between consecutive cut points.
        _, pool = _pool(two_table_db, positive=[0], negative=[1, 2, 3, 4], threshold_variants=3)
        cuts = sorted(
            float(a.term.constant)
            for a in pool
            if a.term.attribute == "Emp.salary" and a.term.op in (ComparisonOp.GE, ComparisonOp.GT)
        )
        for low, high in zip(cuts, cuts[1:]):
            assert int(high) - int(low) >= 1 or (high - low) >= 1

    def test_equality_atom_for_single_positive_value(self, two_table_db):
        _, pool = _pool(two_table_db, positive=[0], negative=[1, 2, 3, 4])
        equals = [a for a in pool if a.term.attribute == "Emp.salary" and a.term.op is ComparisonOp.EQ]
        assert equals and equals[0].term.constant == 90


class TestCategoricalAtoms:
    def test_equality_for_single_value(self, two_table_db):
        _, pool = _pool(two_table_db, positive=[0], negative=[1, 3])
        names = [a for a in pool if a.term.attribute == "Emp.ename"]
        assert any(a.term.op is ComparisonOp.EQ and a.term.constant == "Ann" for a in names)

    def test_membership_for_multiple_values(self, two_table_db):
        joined, pool = _pool(two_table_db, positive=[0, 2], negative=[1, 3])
        position = joined.relation.schema.index_of("Emp.ename")
        expected = {joined.relation.tuples[0].values[position],
                    joined.relation.tuples[2].values[position]}
        names = [a for a in pool if a.term.attribute == "Emp.ename"]
        assert any(a.term.op is ComparisonOp.IN and set(a.term.constant) == expected for a in names)

    def test_membership_disabled(self, two_table_db):
        _, pool = _pool(two_table_db, positive=[0, 2], negative=[1, 3], allow_membership_terms=False)
        assert not any(a.term.op is ComparisonOp.IN for a in pool)

    def test_negated_atoms_when_enabled(self, two_table_db):
        _, with_negation = _pool(
            two_table_db, positive=[0, 1, 2, 4], negative=[3], allow_negated_terms=True
        )
        assert any(a.term.op in (ComparisonOp.NE, ComparisonOp.NOT_IN) for a in with_negation)
        _, without = _pool(two_table_db, positive=[0, 1, 2, 4], negative=[3])
        assert not any(a.term.op in (ComparisonOp.NE, ComparisonOp.NOT_IN) for a in without)
