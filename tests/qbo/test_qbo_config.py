"""Unit tests for QBOConfig validation and presets."""

import pytest

from repro.qbo.config import QBOConfig


class TestQBOConfig:
    def test_defaults_are_valid(self):
        config = QBOConfig()
        assert config.max_join_relations >= 1
        assert config.exclude_key_columns is True

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_join_relations": 0},
            {"max_terms_per_conjunct": 0},
            {"max_conjuncts": 0},
            {"max_candidates": 0},
            {"threshold_variants": 0},
            {"threshold_variants": 4},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            QBOConfig(**kwargs)

    def test_exhaustive_preset_is_larger(self):
        default, exhaustive = QBOConfig(), QBOConfig.exhaustive()
        assert exhaustive.max_candidates > default.max_candidates
        assert exhaustive.threshold_variants >= default.threshold_variants
        assert exhaustive.max_join_relations >= default.max_join_relations

    def test_conservative_preset_is_smaller(self):
        default, conservative = QBOConfig(), QBOConfig.conservative()
        assert conservative.max_candidates < default.max_candidates
        assert conservative.max_terms_per_conjunct <= default.max_terms_per_conjunct

    def test_frozen(self):
        with pytest.raises(Exception):
            QBOConfig().max_candidates = 5  # type: ignore[misc]
