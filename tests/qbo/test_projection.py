"""Unit tests for projection inference."""

from repro.qbo.config import QBOConfig
from repro.qbo.projection import candidate_projections
from repro.relational.join import full_join
from repro.relational.relation import Relation


class TestCandidateProjections:
    def test_name_match_preferred(self, two_table_db):
        joined = full_join(two_table_db)
        result = Relation.from_rows("R", ["ename"], [["Ann"], ["Cy"]])
        projections = candidate_projections(joined, result, QBOConfig())
        assert projections == [("Emp.ename",)]

    def test_value_containment_without_name_match(self, two_table_db):
        joined = full_join(two_table_db)
        result = Relation.from_rows("R", ["who"], [["Ann"], ["Cy"]])
        projections = candidate_projections(joined, result, QBOConfig())
        assert ("Emp.ename",) in projections

    def test_numeric_columns_can_match_multiple(self, two_table_db):
        joined = full_join(two_table_db)
        result = Relation.from_rows("R", ["value"], [[100]])
        projections = candidate_projections(joined, result, QBOConfig(match_columns_by_name=False))
        flattened = {p[0] for p in projections}
        assert "Dept.budget" in flattened

    def test_unmatchable_result_yields_nothing(self, two_table_db):
        joined = full_join(two_table_db)
        result = Relation.from_rows("R", ["x"], [["definitely-not-present"]])
        assert candidate_projections(joined, result, QBOConfig()) == []

    def test_same_column_not_reused(self, two_table_db):
        joined = full_join(two_table_db)
        result = Relation.from_rows("R", ["a", "b"], [["Ann", "Ann"]])
        for projection in candidate_projections(joined, result, QBOConfig(match_columns_by_name=False)):
            assert len(set(projection)) == len(projection)

    def test_mapping_cap_respected(self, two_table_db):
        joined = full_join(two_table_db)
        result = Relation.from_rows("R", ["n"], [[1]])
        config = QBOConfig(match_columns_by_name=False, max_projection_mappings=2)
        assert len(candidate_projections(joined, result, config)) <= 2

    def test_multi_column_projection(self, two_table_db):
        joined = full_join(two_table_db)
        result = Relation.from_rows("R", ["ename", "dname"], [["Ann", "IT"]])
        assert ("Emp.ename", "Dept.dname") in candidate_projections(joined, result, QBOConfig())
