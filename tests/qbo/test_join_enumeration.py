"""Unit tests for join-schema enumeration."""

from repro.qbo.config import QBOConfig
from repro.qbo.join_enumeration import enumerate_join_schemas
from repro.relational.database import Database
from repro.relational.schema import ForeignKey


class TestEnumerateJoinSchemas:
    def test_two_table_schema(self, two_table_db):
        schemas = enumerate_join_schemas(two_table_db.schema, QBOConfig())
        assert ("Dept",) in schemas
        assert ("Emp",) in schemas
        assert ("Dept", "Emp") in schemas

    def test_max_join_relations_respected(self, two_table_db):
        schemas = enumerate_join_schemas(two_table_db.schema, QBOConfig(max_join_relations=1))
        assert all(len(s) == 1 for s in schemas)

    def test_disconnected_subsets_excluded(self):
        database = Database.from_tables(
            {
                "A": (["id", "b_id"], [[1, 1]]),
                "B": (["id"], [[1]]),
                "C": (["id"], [[1]]),
            },
            foreign_keys=[ForeignKey("A", ("b_id",), "B", ("id",))],
        )
        schemas = enumerate_join_schemas(database.schema, QBOConfig())
        assert ("A", "B") in schemas
        assert ("A", "C") not in schemas
        assert ("B", "C") not in schemas

    def test_three_table_chain(self, baseball_db):
        schemas = enumerate_join_schemas(baseball_db.schema, QBOConfig(max_join_relations=3))
        assert ("Batting", "Manager", "Team") in schemas
        # Batting and Manager are only connected through Team.
        assert ("Batting", "Manager") not in schemas

    def test_smallest_first_ordering(self, two_table_db):
        schemas = enumerate_join_schemas(two_table_db.schema, QBOConfig())
        sizes = [len(s) for s in schemas]
        assert sizes == sorted(sizes)
