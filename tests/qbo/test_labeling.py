"""Unit tests for joined-row labeling against an example result."""

from repro.qbo.labeling import label_rows
from repro.relational.join import full_join
from repro.relational.relation import Relation


def _labeling(db, result_rows, columns, *, set_semantics=False):
    joined = full_join(db)
    positions = [joined.relation.schema.index_of(c) for c in columns]
    result = Relation.from_rows("R", list(columns), result_rows)
    return joined, label_rows(joined, positions, result, set_semantics=set_semantics)


class TestLabeling:
    def test_simple_positive_negative_split(self, two_table_db):
        joined, labeling = _labeling(two_table_db, [["Ann"], ["Cy"]], ["Emp.ename"])
        assert labeling.feasible
        assert len(labeling.positive_rows) == 2
        assert len(labeling.negative_rows) == 3
        assert not labeling.has_ambiguity

    def test_infeasible_when_value_missing(self, two_table_db):
        _, labeling = _labeling(two_table_db, [["Nobody"]], ["Emp.ename"])
        assert not labeling.feasible

    def test_infeasible_when_multiplicity_exceeds_bag(self, two_table_db):
        _, labeling = _labeling(two_table_db, [["Ann"], ["Ann"]], ["Emp.ename"])
        assert not labeling.feasible

    def test_set_semantics_allows_duplicates_collapse(self, two_table_db):
        _, labeling = _labeling(
            two_table_db, [["IT"]], ["Dept.dname"], set_semantics=True
        )
        assert labeling.feasible
        assert len(labeling.positive_rows) == 2  # both IT employees' joined rows

    def test_ambiguous_group_detected(self, two_table_db):
        # Dept.dname of joined rows: IT appears twice; asking for exactly one
        # IT row under bag semantics leaves the group ambiguous.
        _, labeling = _labeling(two_table_db, [["IT"]], ["Dept.dname"])
        assert labeling.feasible
        assert labeling.has_ambiguity
        assert len(labeling.ambiguous_rows) == 2

    def test_trivially_all(self, two_table_db):
        joined, labeling = _labeling(
            two_table_db,
            [["Ann"], ["Bo"], ["Cy"], ["Di"], ["Ed"]],
            ["Emp.ename"],
        )
        assert labeling.is_trivially_all

    def test_multi_column_projection(self, two_table_db):
        _, labeling = _labeling(
            two_table_db, [["Ann", "IT"]], ["Emp.ename", "Dept.dname"]
        )
        assert labeling.feasible
        assert len(labeling.positive_rows) == 1
        assert len(labeling.negative_rows) == 4
