"""Unit tests for candidate expansion by constant mutation (Table 6 device)."""

from repro.qbo.config import QBOConfig
from repro.qbo.generator import QueryGenerator
from repro.qbo.mutation import expand_candidate_set, mutate_candidates
from repro.relational.evaluator import evaluate


class TestMutation:
    def _base(self, employee_db, employee_result, count=5):
        generator = QueryGenerator(QBOConfig(threshold_variants=1, max_candidates=count))
        return generator.generate(employee_db, employee_result)

    def test_mutants_preserve_result(self, employee_db, employee_result):
        base = self._base(employee_db, employee_result)
        mutants = mutate_candidates(employee_db, employee_result, base, limit=10)
        for mutant in mutants:
            assert evaluate(mutant, employee_db).bag_equal(employee_result)

    def test_mutants_are_new_queries(self, employee_db, employee_result):
        base = self._base(employee_db, employee_result)
        base_keys = {q.canonical_key() for q in base}
        mutants = mutate_candidates(employee_db, employee_result, base, limit=10)
        assert mutants
        for mutant in mutants:
            assert mutant.canonical_key() not in base_keys

    def test_limit_respected(self, employee_db, employee_result):
        base = self._base(employee_db, employee_result)
        assert len(mutate_candidates(employee_db, employee_result, base, limit=3)) <= 3

    def test_expand_to_target_size(self, employee_db, employee_result):
        base = self._base(employee_db, employee_result)
        expanded = expand_candidate_set(employee_db, employee_result, base, target_size=15)
        assert len(expanded) >= len(base)
        assert len(expanded) <= 15
        assert expanded[: len(base)] == base
        assert len({q.canonical_key() for q in expanded}) == len(expanded)

    def test_expand_truncates_when_already_large(self, employee_db, employee_result):
        base = self._base(employee_db, employee_result, count=8)
        expanded = expand_candidate_set(employee_db, employee_result, base, target_size=2)
        assert len(expanded) == 2

    def test_mutation_of_categorical_equality(self, two_table_db):
        from repro.relational.relation import Relation

        result = Relation.from_rows("R", ["ename"], [["Ann"], ["Cy"]])
        generator = QueryGenerator(QBOConfig(threshold_variants=1, max_candidates=10))
        base = generator.generate(two_table_db, result)
        expanded = expand_candidate_set(two_table_db, result, base, target_size=len(base) + 5)
        for query in expanded:
            assert evaluate(query, two_table_db).bag_equal(result)
