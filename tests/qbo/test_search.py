"""Unit tests for conjunction search and DNF covering."""

from repro.qbo.atoms import build_atom_pool
from repro.qbo.config import QBOConfig
from repro.qbo.search import search_conjunctions, search_dnf_covers
from repro.relational.join import full_join


def _atoms(db, positive, negative, config=None):
    joined = full_join(db)
    config = config or QBOConfig()
    return joined, build_atom_pool(joined, positive, negative, config)


class TestSearchConjunctions:
    def test_empty_negatives_yields_true_conjunct(self, two_table_db):
        joined, atoms = _atoms(two_table_db, [0, 1, 2, 3, 4], [])
        conjuncts = search_conjunctions(atoms, [0, 1, 2, 3, 4], [], QBOConfig())
        assert len(conjuncts) == 1
        assert len(conjuncts[0]) == 0

    def test_every_conjunct_separates(self, two_table_db):
        positive, negative = [0, 2], [1, 3, 4]
        joined, atoms = _atoms(two_table_db, positive, negative)
        config = QBOConfig()
        rows = joined.rows_as_mappings()
        for conjunct in search_conjunctions(atoms, positive, negative, config):
            for p in positive:
                assert conjunct.evaluate_row(rows[p])
            for n in negative:
                assert not conjunct.evaluate_row(rows[n])

    def test_irredundant_results(self, two_table_db):
        positive, negative = [0], [1, 2, 3, 4]
        joined, atoms = _atoms(two_table_db, positive, negative)
        conjuncts = search_conjunctions(atoms, positive, negative, QBOConfig())
        keys = [frozenset(str(t) for t in c.terms) for c in conjuncts]
        for i, key in enumerate(keys):
            for j, other in enumerate(keys):
                if i != j:
                    assert not key < other  # no conjunct is a strict subset of another

    def test_respects_max_terms(self, two_table_db):
        positive, negative = [0, 2], [1, 3, 4]
        joined, atoms = _atoms(two_table_db, positive, negative)
        config = QBOConfig(max_terms_per_conjunct=1)
        for conjunct in search_conjunctions(atoms, positive, negative, config):
            assert len(conjunct) <= 1

    def test_respects_node_budget(self, two_table_db):
        positive, negative = [0, 2], [1, 3, 4]
        joined, atoms = _atoms(two_table_db, positive, negative)
        config = QBOConfig(max_search_nodes=1)
        assert len(search_conjunctions(atoms, positive, negative, config)) <= 1


class TestSearchDNFCovers:
    def test_cover_found_for_disjoint_groups(self, two_table_db):
        # Positives Bo (Sales, 55) and Di (Service, 40) share no single
        # conjunction that excludes all others with one attribute each, but a
        # 2-conjunct DNF over dname works.
        positive, negative = [1, 3], [0, 2, 4]
        joined, _ = _atoms(two_table_db, positive, negative)
        config = QBOConfig(max_conjuncts=2)
        covers = search_dnf_covers(joined, positive, negative, config)
        assert covers
        rows = joined.rows_as_mappings()
        for predicate in covers:
            for p in positive:
                assert predicate.evaluate_row(rows[p])
            for n in negative:
                assert not predicate.evaluate_row(rows[n])

    def test_cover_respects_max_conjuncts(self, two_table_db):
        positive, negative = [1, 3], [0, 2, 4]
        joined, _ = _atoms(two_table_db, positive, negative)
        covers = search_dnf_covers(joined, positive, negative, QBOConfig(max_conjuncts=1))
        for predicate in covers:
            assert len(predicate.conjuncts) <= 1

    def test_no_cover_for_impossible_split(self, two_table_db):
        # A row cannot be both positive and negative… simulate impossibility by
        # demanding a cover while excluding the seed's identical twin via an
        # attribute set that cannot distinguish them: use max_terms 0 budget.
        positive, negative = [1, 3], [0, 2, 4]
        joined, _ = _atoms(two_table_db, positive, negative)
        config = QBOConfig(max_conjuncts=2, max_terms_per_conjunct=1, allow_membership_terms=False)
        covers = search_dnf_covers(joined, positive, negative, config)
        rows = joined.rows_as_mappings()
        for predicate in covers:
            for n in negative:
                assert not predicate.evaluate_row(rows[n])
