"""Lifecycle tests for the extended :class:`JoinCache`.

Covers superset-join reuse, the columnar view / term-mask cache riding along
with cached joins, batch evaluation through the cache, and the id-keyed
invalidation contract for modified database copies.
"""

from __future__ import annotations

from repro.relational.evaluator import JoinCache, evaluate
from repro.relational.predicates import ComparisonOp, DNFPredicate, Term
from repro.relational.query import SPJQuery


def _salary_query(threshold):
    return SPJQuery(
        ["Emp"], ["Emp.ename"],
        DNFPredicate.from_terms([Term("Emp.salary", ComparisonOp.GT, threshold)]),
    )


class TestJoinReuse:
    def test_superset_join_reused_across_table_orderings(self, two_table_db):
        cache = JoinCache()
        first = cache.join_for(two_table_db, ["Emp", "Dept"])
        second = cache.join_for(two_table_db, ["Dept", "Emp"])
        assert first is second
        assert cache.cached_join_count == 1

    def test_distinct_table_sets_cached_separately(self, two_table_db):
        cache = JoinCache()
        cache.join_for(two_table_db, ["Emp"])
        cache.join_for(two_table_db, ["Emp", "Dept"])
        assert cache.cached_join_count == 2

    def test_database_copies_get_separate_entries(self, two_table_db):
        cache = JoinCache()
        copy = two_table_db.copy()
        cache.join_for(two_table_db, ["Emp"])
        cache.join_for(copy, ["Emp"])
        assert cache.cached_join_count == 2


class TestColumnarLifecycle:
    def test_columnar_view_rides_with_cached_join(self, two_table_db):
        cache = JoinCache()
        view = cache.columnar_for(two_table_db, ["Emp", "Dept"])
        assert view is cache.columnar_for(two_table_db, ["Dept", "Emp"])
        assert view is cache.join_for(two_table_db, ["Emp", "Dept"]).columnar()

    def test_term_masks_accumulate_across_evaluations(self, two_table_db):
        cache = JoinCache()
        cache.evaluate(_salary_query(60), two_table_db)
        view = cache.columnar_for(two_table_db, ["Emp"])
        assert view.cached_term_count == 1
        cache.evaluate(_salary_query(60), two_table_db)  # cache hit
        assert view.cached_term_count == 1
        cache.evaluate(_salary_query(80), two_table_db)  # new distinct term
        assert view.cached_term_count == 2


class TestBatchThroughCache:
    def test_results_align_with_query_order_across_join_schemas(self, two_table_db):
        cache = JoinCache()
        single = _salary_query(60)
        joined = SPJQuery(
            ["Emp", "Dept"], ["Emp.ename"],
            DNFPredicate.from_terms([Term("Dept.budget", ComparisonOp.GE, 80)]),
        )
        batch = cache.evaluate_batch([joined, single, joined], two_table_db)
        assert len(batch) == 3
        assert batch.fingerprints[0] == batch.fingerprints[2]
        for query, result in zip([joined, single, joined], batch.results):
            assert result.bag_equal(evaluate(query, two_table_db))
        # one join per distinct signature
        assert cache.cached_join_count == 2

    def test_fingerprints_optional(self, two_table_db):
        cache = JoinCache()
        batch = cache.evaluate_batch(
            [_salary_query(60)], two_table_db, with_fingerprints=False
        )
        assert batch.fingerprints is None


class TestInvalidation:
    def test_invalidate_drops_only_that_databases_joins(self, two_table_db):
        cache = JoinCache()
        copy = two_table_db.copy()
        original_join = cache.join_for(two_table_db, ["Emp"])
        copy_join = cache.join_for(copy, ["Emp"])
        cache.invalidate(copy)
        assert cache.cached_join_count == 1
        assert cache.join_for(two_table_db, ["Emp"]) is original_join
        assert cache.join_for(copy, ["Emp"]) is not copy_join

    def test_modified_copy_is_stale_until_invalidated(self, two_table_db):
        cache = JoinCache()
        copy = two_table_db.copy()
        query = _salary_query(60)
        before = cache.evaluate(query, copy)
        assert sorted(r[0] for r in before.rows()) == ["Ann", "Cy", "Ed"]

        # In-place modification of a database whose join is cached: the cache
        # (keyed on identity) keeps serving the stale snapshot until told.
        copy.relation("Emp").update_value(3, "salary", 99)
        stale = cache.evaluate(query, copy)
        assert sorted(r[0] for r in stale.rows()) == ["Ann", "Cy", "Ed"]

        cache.invalidate(copy)
        fresh = cache.evaluate(query, copy)
        assert sorted(r[0] for r in fresh.rows()) == ["Ann", "Cy", "Di", "Ed"]

    def test_entries_evicted_when_database_is_garbage_collected(self, two_table_db):
        cache = JoinCache()
        copy = two_table_db.copy()
        cache.join_for(copy, ["Emp"])
        assert cache.cached_join_count == 1
        del copy  # finalizer fires on deallocation, before the id can recycle
        assert cache.cached_join_count == 0

    def test_clear_drops_everything(self, two_table_db):
        cache = JoinCache()
        cache.join_for(two_table_db, ["Emp"])
        cache.join_for(two_table_db.copy(), ["Emp"])
        cache.clear()
        assert cache.cached_join_count == 0
