"""Lifecycle tests for the extended :class:`JoinCache`.

Covers superset-join reuse, the columnar view / term-mask cache riding along
with cached joins, batch evaluation through the cache, the id-keyed
invalidation contract for modified database copies, and the lifetime of
delta-derived entries — which must never outlive the base entry they were
patched out of (neither on explicit invalidation nor when the base database
is garbage-collected).
"""

from __future__ import annotations

from repro.relational.delta import TupleDelta
from repro.relational.evaluator import JoinCache, evaluate
from repro.relational.join import JOIN_STATS
from repro.relational.predicates import ComparisonOp, DNFPredicate, Term
from repro.relational.query import SPJQuery


def _salary_query(threshold):
    return SPJQuery(
        ["Emp"], ["Emp.ename"],
        DNFPredicate.from_terms([Term("Emp.salary", ComparisonOp.GT, threshold)]),
    )


class TestJoinReuse:
    def test_superset_join_reused_across_table_orderings(self, two_table_db):
        cache = JoinCache()
        first = cache.join_for(two_table_db, ["Emp", "Dept"])
        second = cache.join_for(two_table_db, ["Dept", "Emp"])
        assert first is second
        assert cache.cached_join_count == 1

    def test_distinct_table_sets_cached_separately(self, two_table_db):
        cache = JoinCache()
        cache.join_for(two_table_db, ["Emp"])
        cache.join_for(two_table_db, ["Emp", "Dept"])
        assert cache.cached_join_count == 2

    def test_database_copies_get_separate_entries(self, two_table_db):
        cache = JoinCache()
        copy = two_table_db.copy()
        cache.join_for(two_table_db, ["Emp"])
        cache.join_for(copy, ["Emp"])
        assert cache.cached_join_count == 2


class TestColumnarLifecycle:
    def test_columnar_view_rides_with_cached_join(self, two_table_db):
        cache = JoinCache()
        view = cache.columnar_for(two_table_db, ["Emp", "Dept"])
        assert view is cache.columnar_for(two_table_db, ["Dept", "Emp"])
        assert view is cache.join_for(two_table_db, ["Emp", "Dept"]).columnar()

    def test_term_masks_accumulate_across_evaluations(self, two_table_db):
        cache = JoinCache()
        cache.evaluate(_salary_query(60), two_table_db)
        view = cache.columnar_for(two_table_db, ["Emp"])
        assert view.cached_term_count == 1
        cache.evaluate(_salary_query(60), two_table_db)  # cache hit
        assert view.cached_term_count == 1
        cache.evaluate(_salary_query(80), two_table_db)  # new distinct term
        assert view.cached_term_count == 2


class TestBatchThroughCache:
    def test_results_align_with_query_order_across_join_schemas(self, two_table_db):
        cache = JoinCache()
        single = _salary_query(60)
        joined = SPJQuery(
            ["Emp", "Dept"], ["Emp.ename"],
            DNFPredicate.from_terms([Term("Dept.budget", ComparisonOp.GE, 80)]),
        )
        batch = cache.evaluate_batch([joined, single, joined], two_table_db)
        assert len(batch) == 3
        assert batch.fingerprints[0] == batch.fingerprints[2]
        for query, result in zip([joined, single, joined], batch.results):
            assert result.bag_equal(evaluate(query, two_table_db))
        # one join per distinct signature
        assert cache.cached_join_count == 2

    def test_fingerprints_optional(self, two_table_db):
        cache = JoinCache()
        batch = cache.evaluate_batch(
            [_salary_query(60)], two_table_db, with_fingerprints=False
        )
        assert batch.fingerprints is None


class TestInvalidation:
    def test_invalidate_drops_only_that_databases_joins(self, two_table_db):
        cache = JoinCache()
        copy = two_table_db.copy()
        original_join = cache.join_for(two_table_db, ["Emp"])
        copy_join = cache.join_for(copy, ["Emp"])
        cache.invalidate(copy)
        assert cache.cached_join_count == 1
        assert cache.join_for(two_table_db, ["Emp"]) is original_join
        assert cache.join_for(copy, ["Emp"]) is not copy_join

    def test_modified_copy_is_stale_until_invalidated(self, two_table_db):
        cache = JoinCache()
        copy = two_table_db.copy()
        query = _salary_query(60)
        before = cache.evaluate(query, copy)
        assert sorted(r[0] for r in before.rows()) == ["Ann", "Cy", "Ed"]

        # In-place modification of a database whose join is cached: the cache
        # (keyed on identity) keeps serving the stale snapshot until told.
        copy.relation("Emp").update_value(3, "salary", 99)
        stale = cache.evaluate(query, copy)
        assert sorted(r[0] for r in stale.rows()) == ["Ann", "Cy", "Ed"]

        cache.invalidate(copy)
        fresh = cache.evaluate(query, copy)
        assert sorted(r[0] for r in fresh.rows()) == ["Ann", "Cy", "Di", "Ed"]

    def test_entries_evicted_when_database_is_garbage_collected(self, two_table_db):
        cache = JoinCache()
        copy = two_table_db.copy()
        cache.join_for(copy, ["Emp"])
        assert cache.cached_join_count == 1
        del copy  # finalizer fires on deallocation, before the id can recycle
        assert cache.cached_join_count == 0

    def test_clear_drops_everything(self, two_table_db):
        cache = JoinCache()
        cache.join_for(two_table_db, ["Emp"])
        cache.join_for(two_table_db.copy(), ["Emp"])
        cache.clear()
        assert cache.cached_join_count == 0


def _raise_salary(base, tuple_id=3, salary=99):
    """A modified copy of *base* plus the update-only delta describing it."""
    derived = base.copy()
    derived.relation("Emp").update_value(tuple_id, "salary", salary)
    delta = TupleDelta()
    delta.record_update(
        "Emp", tuple_id, derived.relation("Emp").tuple_by_id(tuple_id).values
    )
    return derived, delta


class TestDerivedEntries:
    def test_derive_patches_instead_of_rejoining(self, two_table_db):
        cache = JoinCache()
        base_join = cache.join_for(two_table_db, ["Emp", "Dept"])
        derived_db, delta = _raise_salary(two_table_db)
        JOIN_STATS.reset()
        derived_join = cache.derive(two_table_db, delta, derived_db, ["Emp", "Dept"])
        assert JOIN_STATS.full_joins == 0 and JOIN_STATS.delta_applies == 1
        assert derived_join is cache.join_for(derived_db, ["Emp", "Dept"])  # memoized
        assert derived_join is not base_join
        result = cache.evaluate(_salary_query(60), derived_db)
        assert sorted(r[0] for r in result.rows()) == ["Ann", "Cy", "Di", "Ed"]
        # the base entry still serves the unmodified database
        unchanged = cache.evaluate(_salary_query(60), two_table_db)
        assert sorted(r[0] for r in unchanged.rows()) == ["Ann", "Cy", "Ed"]

    def test_signatures_derive_on_demand(self, two_table_db):
        cache = JoinCache()
        derived_db, delta = _raise_salary(two_table_db)
        cache.derive(two_table_db, delta, derived_db)  # no eager signature
        assert cache.derived_link_count == 1
        JOIN_STATS.reset()
        cache.join_for(derived_db, ["Emp"])
        # only the (cold) base join of the signature is built; the derived
        # entry itself is patched out of it
        assert JOIN_STATS.full_joins == 1 and JOIN_STATS.delta_applies == 1
        assert cache.cached_join_count == 2

    def test_invalidate_base_evicts_derived_entries(self, two_table_db):
        cache = JoinCache()
        cache.join_for(two_table_db, ["Emp"])
        derived_db, delta = _raise_salary(two_table_db)
        cache.derive(two_table_db, delta, derived_db, ["Emp"])
        assert cache.cached_join_count == 2
        cache.invalidate(two_table_db)
        # base gone -> derived entries (patched out of it) are gone too
        assert cache.cached_join_count == 0
        assert cache.derived_link_count == 0

    def test_invalidate_derived_keeps_base(self, two_table_db):
        cache = JoinCache()
        base_join = cache.join_for(two_table_db, ["Emp"])
        derived_db, delta = _raise_salary(two_table_db)
        cache.derive(two_table_db, delta, derived_db, ["Emp"])
        cache.invalidate(derived_db)
        assert cache.cached_join_count == 1
        assert cache.derived_link_count == 0
        assert cache.join_for(two_table_db, ["Emp"]) is base_join

    def test_base_garbage_collection_evicts_derived_entries(self, two_table_db):
        cache = JoinCache()
        base = two_table_db.copy()
        derived_db, delta = _raise_salary(base)
        cache.derive(base, delta, derived_db, ["Emp"])
        assert cache.cached_join_count == 2  # base signature + derived entry
        del base  # finalizer fires: base entries AND derived children evicted
        assert cache.cached_join_count == 0
        assert cache.derived_link_count == 0
        # the derived database remains usable — it just rebuilds cold now
        JOIN_STATS.reset()
        result = cache.evaluate(_salary_query(60), derived_db)
        assert JOIN_STATS.full_joins == 1
        assert sorted(r[0] for r in result.rows()) == ["Ann", "Cy", "Di", "Ed"]

    def test_derived_garbage_collection_severs_link_only(self, two_table_db):
        cache = JoinCache()
        base_join = cache.join_for(two_table_db, ["Emp"])
        derived_db, delta = _raise_salary(two_table_db)
        cache.derive(two_table_db, delta, derived_db, ["Emp"])
        del derived_db
        assert cache.derived_link_count == 0
        assert cache.cached_join_count == 1
        assert cache.join_for(two_table_db, ["Emp"]) is base_join

    def test_clear_resets_links(self, two_table_db):
        cache = JoinCache()
        derived_db, delta = _raise_salary(two_table_db)
        cache.derive(two_table_db, delta, derived_db, ["Emp"])
        cache.clear()
        assert cache.cached_join_count == 0
        assert cache.derived_link_count == 0
