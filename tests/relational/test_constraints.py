"""Unit tests for primary-key / foreign-key validation (Section 6.3)."""

import pytest

from repro.exceptions import ForeignKeyViolation, PrimaryKeyViolation
from repro.relational.constraints import (
    check_foreign_keys,
    check_primary_keys,
    constraint_violations,
    modification_is_valid,
    validate_database,
)


class TestPrimaryKeys:
    def test_valid_database_has_no_violations(self, two_table_db):
        assert check_primary_keys(two_table_db) == []

    def test_duplicate_primary_key_detected(self, two_table_db):
        broken = two_table_db.copy()
        broken.relation("Emp").update_value(1, "eid", 1)
        violations = check_primary_keys(broken)
        assert len(violations) == 1
        assert "duplicate primary key" in violations[0]

    def test_null_primary_key_detected(self, two_table_db):
        broken = two_table_db.copy()
        broken.relation("Dept").update_value(0, "did", None)
        assert any("NULL in primary key" in v for v in check_primary_keys(broken))


class TestForeignKeys:
    def test_valid_database_has_no_violations(self, two_table_db):
        assert check_foreign_keys(two_table_db) == []

    def test_dangling_reference_detected(self, two_table_db):
        broken = two_table_db.copy()
        broken.relation("Emp").update_value(0, "did", 99)
        violations = check_foreign_keys(broken)
        assert len(violations) == 1
        assert "missing parent key" in violations[0]

    def test_null_foreign_key_is_allowed(self, two_table_db):
        modified = two_table_db.copy()
        modified.relation("Emp").update_value(0, "did", None)
        assert check_foreign_keys(modified) == []


class TestValidation:
    def test_validate_passes_on_valid_database(self, two_table_db):
        validate_database(two_table_db)
        assert modification_is_valid(two_table_db)

    def test_validate_raises_primary_key_first(self, two_table_db):
        broken = two_table_db.copy()
        broken.relation("Dept").update_value(0, "did", 2)  # duplicate PK and dangling FK
        with pytest.raises(PrimaryKeyViolation):
            validate_database(broken)

    def test_validate_raises_foreign_key(self, two_table_db):
        broken = two_table_db.copy()
        broken.relation("Emp").update_value(0, "did", 42)
        with pytest.raises(ForeignKeyViolation):
            validate_database(broken)
        assert not modification_is_valid(broken)

    def test_constraint_violations_aggregates(self, two_table_db):
        broken = two_table_db.copy()
        broken.relation("Emp").update_value(0, "did", 42)
        broken.relation("Emp").update_value(1, "eid", 3)
        assert len(constraint_violations(broken)) == 2

    def test_datasets_are_valid(self, scientific_db, baseball_db, adult_db):
        for database in (scientific_db, baseball_db, adult_db):
            assert modification_is_valid(database)
