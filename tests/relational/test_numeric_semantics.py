"""Cross-engine numeric/type-semantics consistency.

One property drives four implementations of the same comparison — the
row-at-a-time interpreter (``Term.evaluate_value``), the compiled term
closures, the columnar batch masks, and the SQLite oracle — over mixed
``True/1/1.0`` domains and integers straddling 2^53, and demands they all
agree. This is the contract the scenario engine leans on: a single wrong
comparison silently corrupts partition signatures and with them the whole
QFE interaction transcript.

The columnar path now runs on typed compact storage, so the masks here are
additionally checked against the boxed object-column oracle
(:class:`ColumnarViewReference`) — including the regimes only the typed
representation could get wrong: the beyond-int64 boxed side table, NULL
bitmap semantics, NaN constants, and dictionary-encoded string comparisons.
"""

from __future__ import annotations

import math

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.relational.columnar import ColumnarView, ColumnarViewReference, pack_bools
from repro.relational.database import Database
from repro.relational.evaluator import evaluate
from repro.relational.predicates import ComparisonOp, DNFPredicate, Term, compile_term
from repro.relational.query import SPJQuery
from repro.sql.sqlite_backend import SQLiteBackend

_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

BIG = 2**53

# Per-column value pools (mixed representations of the same numbers, plus the
# 2^53 neighbourhood; columns stay type-homogeneous as the engine requires).
_INT_VALUES = [0, 1, 2, -1, BIG - 1, BIG, BIG + 1, None]
_FLOAT_VALUES = [0.0, 1.0, 0.5, 2.0, -1.0, 0.1234567, float(BIG), None]
_BOOL_VALUES = [True, False]
_STRING_VALUES = ["", "IT", "Sales", "aa", "zz", None]

# Constants deliberately cross type boundaries: bools against numeric
# columns, ints against floats, floats against ints, 2^53 ± 1. String
# columns draw string constants (dictionary hits, misses, and bounds) —
# cross-type *ordering* on strings errors in our engine but not in SQL, so
# that regime lives in the typed-vs-reference property below instead.
_CONSTANTS = [True, False, 0, 1, 1.0, 0.0, 2, 0.5, 0.1234567, BIG, BIG + 1, float(BIG)]
_STRING_CONSTANTS = ["", "IT", "M", "zz", "zzz", "Sales"]
_CONSTANT_POOLS = {
    "i": _CONSTANTS,
    "f": _CONSTANTS,
    "b": _CONSTANTS,
    "s": _STRING_CONSTANTS,
}

_SCALAR_OPS = [
    ComparisonOp.EQ,
    ComparisonOp.NE,
    ComparisonOp.LT,
    ComparisonOp.LE,
    ComparisonOp.GT,
    ComparisonOp.GE,
]

_row = st.tuples(
    st.sampled_from(_INT_VALUES),
    st.sampled_from(_FLOAT_VALUES),
    st.sampled_from(_BOOL_VALUES),
    st.sampled_from(_STRING_VALUES),
)
_term_spec = st.sampled_from(["i", "f", "b", "s"]).flatmap(
    lambda column: st.tuples(
        st.just(column),
        st.sampled_from(_SCALAR_OPS + [ComparisonOp.IN, ComparisonOp.NOT_IN]),
        st.sampled_from(_CONSTANT_POOLS[column]),
        st.sampled_from(_CONSTANT_POOLS[column]),  # second member for IN/NOT IN
    )
)


def _database(rows) -> Database:
    return Database.from_tables({"T": (["i", "f", "b", "s"], [list(r) for r in rows])})


class TestFourPathConsistency:
    @_SETTINGS
    @given(rows=st.lists(_row, min_size=1, max_size=10), spec=_term_spec)
    def test_interpreter_compiled_mask_and_sqlite_agree(self, rows, spec):
        column, op, constant, second = spec
        if op.is_membership:
            constant = (constant, second)
        qualified = Term(f"T.{column}", op, constant)
        database = _database(rows)
        relation = database.relation("T")
        values = relation.column(column)

        # Path 1 vs 2: interpreter vs compiled closure, value by value.
        compiled = compile_term(qualified)
        interpreted = [qualified.evaluate_value(v) for v in values]
        assert [compiled(v) for v in values] == interpreted

        # Path 3: the typed columnar term mask, bit for bit — and identical
        # (mask, error mask, error) state on the object-column oracle.
        bare = Term(column, op, constant)
        view = ColumnarView(relation)
        assert view.term_mask(bare) == pack_bools(interpreted)
        reference = ColumnarViewReference(relation)
        assert view._term_entry(bare)[:2] == reference._term_entry(bare)[:2]

        # Path 4: the SQLite oracle on the rendered SQL.
        query = SPJQuery(
            ["T"], ["T.i", "T.f", "T.b", "T.s"], DNFPredicate.from_terms([qualified])
        )
        ours = evaluate(query, database)
        with SQLiteBackend(database) as backend:
            theirs = backend.execute(query)
        assert ours.bag_equal(theirs), (op, constant)

    @_SETTINGS
    @given(rows=st.lists(_row, min_size=1, max_size=8))
    def test_distinct_dedup_agrees_with_sqlite(self, rows):
        database = _database(rows)
        query = SPJQuery(["T"], ["T.i", "T.b"], distinct=True)
        ours = evaluate(query, database)
        with SQLiteBackend(database) as backend:
            theirs = backend.execute(query)
        assert ours.set_equal(theirs)


#: Value/constant pools for the typed-vs-reference property: everything the
#: SQLite path cannot express — beyond-int64 integers (boxed side table),
#: NaN/inf constants, cross-type ordering on string columns (engine errors).
_EXTREME_INT_VALUES = [0, -1, BIG + 1, 2**63 - 1, 2**63, -(2**64), 7, None]
_EXTREME_CONSTANTS = [
    0,
    2**63,
    2**63 - 1,
    -(2**64),
    BIG + 1,
    math.nan,
    math.inf,
    -math.inf,
    1.5,
    "IT",
    True,
    None,
]
_extreme_row = st.tuples(
    st.sampled_from(_EXTREME_INT_VALUES),
    st.sampled_from(_STRING_VALUES),
)
_extreme_spec = st.tuples(
    st.sampled_from(["i", "s"]),
    st.sampled_from(_SCALAR_OPS + [ComparisonOp.IN, ComparisonOp.NOT_IN]),
    st.sampled_from(_EXTREME_CONSTANTS),
    st.sampled_from(_EXTREME_CONSTANTS),
)


class TestTypedVsReferenceExtremes:
    """Typed columns must match the boxed oracle where SQL cannot follow."""

    @_SETTINGS
    @given(rows=st.lists(_extreme_row, min_size=1, max_size=12), spec=_extreme_spec)
    def test_typed_matches_object_oracle(self, rows, spec):
        column, op, constant, second = spec
        if op.is_membership:
            constant = (constant, second)
        relation = Database.from_tables(
            {"T": (["i", "s"], [list(r) for r in rows])}
        ).relation("T")
        term = Term(column, op, constant)
        typed = ColumnarView(relation)
        reference = ColumnarViewReference(relation)
        typed_mask, typed_errors, typed_error = typed._term_entry(term)
        ref_mask, ref_errors, ref_error = reference._term_entry(term)
        assert (typed_mask, typed_errors) == (ref_mask, ref_errors)
        assert str(typed_error) == str(ref_error)  # exact interpreter message

    def test_overflow_side_table_round_trips_through_masks(self):
        values = [1, 2, 3, 4, 5, 6, 7, 8, 2**63, -(2**64), BIG, BIG + 1]
        relation = Database.from_tables(
            {"T": (["i"], [[v] for v in values])}
        ).relation("T")
        view = ColumnarView(relation)
        assert view.term_mask(Term("i", ComparisonOp.EQ, 2**63)) == 1 << 8
        assert view.term_mask(Term("i", ComparisonOp.GT, BIG + 1)) == 1 << 8
        assert view.term_mask(Term("i", ComparisonOp.LT, 0)) == 1 << 9
        # 2^63 is a power of two, so the double equals the boxed int exactly
        # — cross-type equality must stay mathematically exact, not bitwise.
        assert view.term_mask(Term("i", ComparisonOp.EQ, float(2**63))) == 1 << 8
        # 2^53 + 1 is *not* double-representable: float(2^53 + 1) rounds to
        # 2^53, so the float constant selects row 2^53 and only it.
        assert view.term_mask(Term("i", ComparisonOp.EQ, float(BIG + 1))) == 1 << 10
        assert view.term_mask(Term("i", ComparisonOp.EQ, BIG + 1)) == 1 << 11

    def test_nan_constant_bitmap_semantics(self):
        relation = Database.from_tables(
            {"T": (["f"], [[0.0], [1.5], [None], [-2.0]])}
        ).relation("T")
        view = ColumnarView(relation)
        reference = ColumnarViewReference(relation)
        for op in _SCALAR_OPS:
            term = Term("f", op, math.nan)
            # NaN compares False to everything and never errors; NULLs stay
            # filtered. NE is the one truth-bearing case: x != NaN is True
            # for every non-NULL x.
            assert view._term_entry(term) == reference._term_entry(term)
            expected = view.all_rows_mask & ~(1 << 2) if op is ComparisonOp.NE else 0
            assert view.term_mask(term) == expected


class TestCacheKeyAliasing:
    """Bools must never alias numerics (and big ints never each other)."""

    @pytest.mark.parametrize("numeric", [1, 1.0, 0, 0.0])
    def test_bool_constants_never_share_keys_with_numerics(self, numeric):
        for op in _SCALAR_OPS:
            bool_key = Term("a", op, bool(numeric)).mask_key()
            assert bool_key != Term("a", op, numeric).mask_key()

    def test_equal_int_float_constants_share_one_key(self):
        assert Term("a", ComparisonOp.LE, 60).mask_key() == Term(
            "a", ComparisonOp.LE, 60.0
        ).mask_key()

    def test_big_int_neighbours_never_collide(self):
        keys = {Term("a", ComparisonOp.EQ, BIG + d).mask_key() for d in (-1, 0, 1)}
        assert len(keys) == 3

    def test_membership_keys_are_exact_too(self):
        left = Term("a", ComparisonOp.IN, (BIG, 1)).mask_key()
        right = Term("a", ComparisonOp.IN, (BIG + 1, 1)).mask_key()
        assert left != right
        assert Term("a", ComparisonOp.IN, (1, True)).mask_key() != Term(
            "a", ComparisonOp.IN, (1, 1)
        ).mask_key()


class TestTupleClassExactness:
    """Domain partitioning must keep huge-int representatives exact."""

    def test_neighbouring_breakpoints_partition_separately(self):
        from repro.core.tuple_class import DomainPartition

        terms = [Term("T.a", ComparisonOp.LE, BIG), Term("T.a", ComparisonOp.LE, BIG + 1)]
        partition = DomainPartition("T.a", terms, [BIG - 1, BIG, BIG + 1])
        assert partition.subset_of_value(BIG) != partition.subset_of_value(BIG + 1)

    def test_representatives_preserve_exact_active_values(self):
        from repro.core.tuple_class import DomainPartition

        partition = DomainPartition(
            "T.a", [Term("T.a", ComparisonOp.GE, BIG)], [BIG - 1, BIG + 1]
        )
        representatives = {
            value for subset in partition.subsets for value in subset.representatives
        }
        # The odd value 2^53 + 1 — unrepresentable as a double — must appear
        # exactly; a float() round-trip would silently rewrite it to 2^53.
        assert BIG + 1 in representatives
        assert BIG - 1 in representatives
