"""Differential tests: the columnar engine against the row-at-a-time oracle.

The columnar engine (compiled terms, cached bitmasks, batch evaluation) must
be *indistinguishable* from the original row-at-a-time evaluator, which is
kept as :func:`~repro.relational.evaluator.evaluate_on_join_reference`. These
tests hold the two against each other on handcrafted predicates covering
every operator and value-type combination, and on all six paper workloads
(Q1–Q6) including constant-mutated candidate variants.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import EvaluationError
from repro.qbo.mutation import mutate_candidates
from repro.relational.columnar import (
    ColumnarView,
    mask_count,
    mask_from_positions,
    mask_positions,
    pack_bools,
    pack_bools_reference,
)
from repro.relational.database import Database
from repro.relational.evaluator import (
    evaluate_batch,
    evaluate_on_join,
    evaluate_on_join_reference,
    result_fingerprint,
)
from repro.relational.join import full_join
from repro.relational.predicates import (
    ComparisonOp,
    Conjunct,
    DNFPredicate,
    Term,
    compile_predicate,
    compile_term,
)
from repro.relational.query import SPJQuery
from repro.workloads import WORKLOADS, build_pair

#: Tiny scale keeps the six workload pairs fast while exercising real data.
_SCALE = 0.03


# ------------------------------------------------------------------ mask helpers
class TestMaskHelpers:
    def test_pack_and_positions_roundtrip(self):
        flags = [True, False, True, True, False, False, True]
        mask = pack_bools(flags)
        assert mask_positions(mask) == [0, 2, 3, 6]
        assert mask_count(mask) == 4

    def test_empty_and_all_set(self):
        assert pack_bools([]) == 0
        assert mask_positions(0) == []
        assert mask_positions(pack_bools([True] * 5)) == [0, 1, 2, 3, 4]

    @given(st.lists(st.booleans(), max_size=700))
    @settings(max_examples=50, deadline=None)
    def test_pack_positions_roundtrip_property(self, flags):
        mask = pack_bools(flags)
        assert mask_positions(mask) == [i for i, f in enumerate(flags) if f]
        assert mask_count(mask) == sum(flags)

    def test_sparse_positions_match_dense_path(self):
        # Few set bits spread over a huge bit range → the bit-stripping
        # sparse path; pinned against the dense bin()-scan equivalent.
        positions = [0, 7, 4_099, 54_321, 400_000]
        mask = mask_from_positions(positions)
        assert mask.bit_count() * 16 <= mask.bit_length()  # sparse path taken
        assert mask_positions(mask) == positions
        dense = [i for i, ch in enumerate(bin(mask)[:1:-1]) if ch == "1"]
        assert mask_positions(mask) == dense

    @given(st.sets(st.integers(min_value=0, max_value=300_000), max_size=14))
    @settings(max_examples=50, deadline=None)
    def test_sparse_positions_property(self, positions):
        expected = sorted(positions)
        mask = mask_from_positions(expected)
        assert mask_positions(mask) == expected
        assert mask_count(mask) == len(expected)

    @given(st.lists(st.booleans(), max_size=1200))
    @settings(max_examples=60, deadline=None)
    def test_pack_bools_matches_reference_oracle(self, flags):
        # The chunked int.from_bytes packer against the per-bit shift loop.
        assert pack_bools(flags) == pack_bools_reference(flags)

    def test_mask_from_positions_inverse(self):
        assert mask_from_positions([], 0) == 0
        assert mask_from_positions([1, 3], 8) == 0b1010
        assert mask_from_positions(iter([0, 2])) == 0b101


# ------------------------------------------------------------ compiled terms
_VALUES = [None, True, False, 0, 1, 4200, -3, 0.05, 4200.0, -0.5, "IT", "Sales", ""]
_CONSTANTS = [True, False, 0, 1, 4200, 0.05, 4200.0, -0.5, "IT", ""]
_SCALAR_OPS = [
    ComparisonOp.EQ,
    ComparisonOp.NE,
    ComparisonOp.LT,
    ComparisonOp.LE,
    ComparisonOp.GT,
    ComparisonOp.GE,
]


class TestCompiledTerms:
    def test_scalar_ops_match_interpreter(self):
        for op in _SCALAR_OPS:
            for constant in _CONSTANTS:
                term = Term("T.a", op, constant)
                compiled = compile_term(term)
                for value in _VALUES:
                    try:
                        expected = term.evaluate_value(value)
                    except EvaluationError:
                        with pytest.raises(EvaluationError):
                            compiled(value)
                        continue
                    assert compiled(value) == expected, (op, constant, value)

    def test_membership_ops_match_interpreter(self):
        for op in (ComparisonOp.IN, ComparisonOp.NOT_IN):
            for constants in ([1, 2.0, "IT"], ["IT", "Sales"], [True, 0], []):
                term = Term("T.a", op, constants)
                compiled = compile_term(term)
                for value in _VALUES:
                    assert compiled(value) == term.evaluate_value(value), (op, constants, value)

    def test_numeric_constants_share_mask_key(self):
        assert Term("T.a", ComparisonOp.GT, 60).mask_key() == Term(
            "T.a", ComparisonOp.GT, 60.0
        ).mask_key()
        assert Term("T.a", ComparisonOp.GT, 60).mask_key() != Term(
            "T.a", ComparisonOp.GE, 60
        ).mask_key()
        # Boolean constants never alias numeric ones in cache keys (even
        # though ``_safe_eq`` gives EQ True and EQ 1.0 identical row-level
        # semantics today): cache identity must stay conservative.
        assert Term("T.a", ComparisonOp.EQ, True).mask_key() != Term(
            "T.a", ComparisonOp.EQ, 1.0
        ).mask_key()
        assert Term("T.a", ComparisonOp.EQ, True).mask_key() != Term(
            "T.a", ComparisonOp.EQ, 1
        ).mask_key()
        for value in [None, True, False, 0, 1, 1.0, 2, "1", ""]:
            assert Term("T.a", ComparisonOp.EQ, True).evaluate_value(value) == Term(
                "T.a", ComparisonOp.EQ, 1.0
            ).evaluate_value(value)

    def test_compile_predicate_matches_evaluate_row(self):
        predicate = DNFPredicate(
            (
                Conjunct((Term("a", ComparisonOp.GT, 10), Term("b", ComparisonOp.EQ, "x"))),
                Conjunct((Term("a", ComparisonOp.LE, -1),)),
            )
        )
        index_of = {"a": 0, "b": 1}
        compiled = compile_predicate(predicate, index_of)
        for a in [None, -5, -1, 0, 10, 11, 2.5]:
            for b in [None, "x", "y"]:
                row = {"a": a, "b": b}
                assert compiled((a, b)) == predicate.evaluate_row(row), row

    def test_compile_predicate_unknown_attribute(self):
        predicate = DNFPredicate.from_terms([Term("missing", ComparisonOp.EQ, 1)])
        with pytest.raises(EvaluationError):
            compile_predicate(predicate, {"present": 0})

    def test_true_predicate_compiles_to_constant(self):
        assert compile_predicate(DNFPredicate.true(), {})(()) is True


# ------------------------------------------------------------- columnar views
class TestColumnarView:
    def test_view_snapshots_columns(self, two_table_db):
        joined = full_join(two_table_db)
        view = ColumnarView(joined.relation)
        assert view.row_count == len(joined)
        assert view.column("Emp.ename")[0] == "Ann"
        assert view.has_attribute("Dept.budget")
        assert not view.has_attribute("Dept.nope")

    def test_term_masks_are_cached_and_shared(self, two_table_db):
        joined = full_join(two_table_db)
        view = joined.columnar()
        assert view is joined.columnar()  # memoized on the join
        term_int = Term("Emp.salary", ComparisonOp.GT, 60)
        term_float = Term("Emp.salary", ComparisonOp.GT, 60.0)
        mask = view.term_mask(term_int)
        assert view.cached_term_count == 1
        assert view.term_mask(term_float) == mask  # normalized key: cache hit
        assert view.cached_term_count == 1
        assert mask_count(mask) == 3  # Ann 90, Cy 70, Ed 65

    def test_invalidate_columnar_rebuilds(self, two_table_db):
        joined = full_join(two_table_db)
        view = joined.columnar()
        joined.invalidate_columnar()
        assert joined.columnar() is not view


# ------------------------------------------------- differential: paper workloads
def _candidate_pool(database, result, target):
    """The target plus result-preserving constant mutants and edge variants."""
    pool = [target]
    pool += mutate_candidates(database, result, [target], limit=8)
    pool.append(target.with_predicate(DNFPredicate.true()))
    pool.append(target.with_distinct(True))
    return pool


def _assert_sqlite_agrees(queries, batch, database, context):
    from repro.sql.sqlite_backend import SQLiteBackend

    with SQLiteBackend(database) as backend:
        for query, ours in zip(queries, batch.results):
            theirs = backend.execute(query)
            if query.distinct:
                assert ours.set_equal(theirs), f"{context}: SQLite disagrees on {query}"
            else:
                assert ours.bag_equal(theirs), f"{context}: SQLite disagrees on {query}"


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_batch_agrees_with_sqlite_oracle(name):
    """Second oracle: ``evaluate_batch`` vs SQLite on ``D`` *and* derived ``D'``.

    ``evaluate_on_join_reference`` shares our predicate semantics, so it
    cannot catch a systematic interpretation bug; SQLite is an independent
    engine. Evaluation goes through a :class:`JoinCache` (one join per query
    signature — bag multiplicities depend on the join, so a superset join
    would not match SQL semantics), over the original database and over
    several delta-derived instances, so the incrementally maintained
    join/mask state is also held against the independent oracle.
    """
    import random

    from repro.relational.evaluator import JoinCache
    from tests.relational.test_delta_maintenance import random_delta

    database, result, target = build_pair(name, _SCALE)
    queries = _candidate_pool(database, result, target)

    cache = JoinCache()
    batch = cache.evaluate_batch(queries, database, set_semantics=False)
    _assert_sqlite_agrees(queries, batch, database, name)

    for seed in (11, 12):
        derived_db, delta = random_delta(database, random.Random(seed), operations=5)
        cache.derive(database, delta, derived_db)
        derived_batch = cache.evaluate_batch(queries, derived_db, set_semantics=False)
        _assert_sqlite_agrees(queries, derived_batch, derived_db, f"{name}/seed {seed} (derived)")
        cache.invalidate(derived_db)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_columnar_matches_reference_on_paper_workloads(name):
    database, result, target = build_pair(name, _SCALE)
    joined = full_join(database)
    queries = _candidate_pool(database, result, target)

    batch = evaluate_batch(queries, joined, database, set_semantics=False)
    for query, batch_result, fingerprint in zip(queries, batch.results, batch.fingerprints):
        reference = evaluate_on_join_reference(query, joined, database)
        columnar = evaluate_on_join(query, joined, database)
        assert columnar.bag_equal(reference), f"{name}: bag mismatch for {query}"
        assert columnar.set_equal(reference), f"{name}: set mismatch for {query}"
        assert batch_result.bag_equal(reference), f"{name}: batch mismatch for {query}"
        assert fingerprint == result_fingerprint(reference)
        assert result_fingerprint(columnar, set_semantics=True) == result_fingerprint(
            reference, set_semantics=True
        )


def test_batch_shares_results_between_equivalent_candidates(two_table_db):
    joined = full_join(two_table_db)
    # Two syntactically different predicates selecting the same rows, plus one
    # genuinely different candidate.
    same_a = SPJQuery(
        ["Emp"], ["Emp.ename"],
        DNFPredicate.from_terms([Term("Emp.salary", ComparisonOp.GT, 60)]),
    )
    same_b = SPJQuery(
        ["Emp"], ["Emp.ename"],
        DNFPredicate.from_terms([Term("Emp.salary", ComparisonOp.GE, 65)]),
    )
    other = SPJQuery(
        ["Emp"], ["Emp.ename"],
        DNFPredicate.from_terms([Term("Emp.salary", ComparisonOp.GT, 80)]),
    )
    batch = evaluate_batch([same_a, same_b, other], joined, two_table_db)
    assert batch.results[0] is batch.results[1]  # identical mask+projection share
    assert batch.fingerprints[0] == batch.fingerprints[1]
    assert batch.fingerprints[0] != batch.fingerprints[2]


def test_short_circuit_suppresses_unreachable_term_errors(two_table_db):
    # AND short-circuit: rows where the first term fails must never evaluate
    # the incomparable second term (the interpreter never reaches it).
    conjunct_query = SPJQuery(
        ["Emp"], ["Emp.ename"],
        DNFPredicate(
            (
                Conjunct(
                    (
                        Term("Emp.salary", ComparisonOp.GT, 1000),  # false for all
                        Term("Emp.ename", ComparisonOp.LT, 10),  # would raise
                    )
                ),
            )
        ),
    )
    joined = full_join(two_table_db)
    reference = evaluate_on_join_reference(conjunct_query, joined, two_table_db)
    columnar = evaluate_on_join(conjunct_query, joined, two_table_db)
    assert len(reference) == 0 and columnar.bag_equal(reference)

    # OR short-circuit: rows satisfied by the first conjunct must never
    # evaluate the erroring second conjunct.
    disjunct_query = SPJQuery(
        ["Emp"], ["Emp.ename"],
        DNFPredicate(
            (
                Conjunct((Term("Emp.salary", ComparisonOp.GT, 0),)),  # true for all
                Conjunct((Term("Emp.ename", ComparisonOp.LT, 10),)),  # would raise
            )
        ),
    )
    reference = evaluate_on_join_reference(disjunct_query, joined, two_table_db)
    columnar = evaluate_on_join(disjunct_query, joined, two_table_db)
    assert columnar.bag_equal(reference)


def test_columnar_raises_like_reference_on_incomparable(two_table_db):
    query = SPJQuery(
        ["Emp"], ["Emp.ename"],
        DNFPredicate.from_terms([Term("Emp.ename", ComparisonOp.LT, 10)]),
    )
    joined = full_join(two_table_db)
    with pytest.raises(EvaluationError):
        evaluate_on_join_reference(query, joined, two_table_db)
    with pytest.raises(EvaluationError):
        evaluate_on_join(query, joined, two_table_db)


def test_columnar_and_reference_agree_on_distinct(two_table_db):
    database = two_table_db.copy()
    database.relation("Dept").insert([4, "Extra", 100])
    query = SPJQuery(["Dept"], ["Dept.budget"], distinct=True)
    joined = full_join(database)
    reference = evaluate_on_join_reference(query, joined, database)
    columnar = evaluate_on_join(query, joined, database)
    assert columnar.bag_equal(reference)
    assert len(columnar) == 3
