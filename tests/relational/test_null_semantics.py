"""Cross-engine NULL / three-valued-logic consistency.

One property drives four implementations of the same comparison over columns
containing NULLs and constants that are NULL, NaN or type-incomparable — the
row-at-a-time interpreter (``Term.evaluate_value``), the compiled term
closures, the columnar batch masks, and the SQL-pushdown translation
executed by SQLite — and demands they all agree. The evaluator's semantics
are *not* SQL's: ``NULL`` values fail every predicate outright (no three-
valued ``UNKNOWN`` propagation), ``NOT IN`` with a NULL in the list still
selects rows, and ordering a value against a NULL constant is an error. The
pushdown layer must reproduce exactly that, rewriting each term rather than
leaning on SQLite's native semantics; where it cannot, it must refuse to
compile (``PushdownUnsupportedError``) so the round falls back to Python.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.exceptions import EvaluationError
from repro.relational.columnar import ColumnarView, pack_bools
from repro.relational.database import Database
from repro.relational.predicates import ComparisonOp, Term, compile_term
from repro.sql.pushdown import PushdownUnsupportedError, SqliteMirror
from repro.sql.pushdown import compile_term as compile_term_sql
from repro.sql.render import render_identifier

_SETTINGS = settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

BIG = 2**53
NAN = float("nan")

# Per-column value pools; every column contains NULLs alongside ordinary
# values (columns stay type-homogeneous as the engine requires).
_INT_VALUES = [None, 0, 1, -1, BIG, BIG + 1]
_FLOAT_VALUES = [None, 0.0, 1.0, -0.5, float(BIG)]
_BOOL_VALUES = [None, True, False]
_STR_VALUES = [None, "x", "y", "1"]

# Constants deliberately include NULL, NaN, and values whose type cannot be
# compared with some columns ('1' against INTEGER must never match — the
# evaluator compares exactly, without SQLite's affinity coercion).
_CONSTANTS = [None, NAN, True, False, 0, 1, 1.0, 0.5, BIG, BIG + 1, "x", "1"]

_SCALAR_OPS = [
    ComparisonOp.EQ,
    ComparisonOp.NE,
    ComparisonOp.LT,
    ComparisonOp.LE,
    ComparisonOp.GT,
    ComparisonOp.GE,
]

# The first row pins every column's inferred type; hypothesis rows layer the
# NULL-heavy mixtures on top.
_ANCHOR_ROW = (1, 1.0, True, "x")

_row = st.tuples(
    st.sampled_from(_INT_VALUES),
    st.sampled_from(_FLOAT_VALUES),
    st.sampled_from(_BOOL_VALUES),
    st.sampled_from(_STR_VALUES),
)
_term_spec = st.tuples(
    st.sampled_from(["i", "f", "b", "s"]),
    st.sampled_from(_SCALAR_OPS + [ComparisonOp.IN, ComparisonOp.NOT_IN]),
    st.sampled_from(_CONSTANTS),
    st.sampled_from(_CONSTANTS),  # second member for IN/NOT IN
)

_COLUMNS = ["i", "f", "b", "s"]


def _ids(relation):
    return [t.tuple_id for t in relation.tuples]


def _database(rows) -> Database:
    all_rows = [list(_ANCHOR_ROW)] + [list(r) for r in rows]
    return Database.from_tables({"T": (_COLUMNS, all_rows)})


def _interpret(term: Term, values):
    """Per-row interpreter verdicts; ``None`` marks an evaluation error."""
    verdicts = []
    errored = False
    for value in values:
        try:
            verdicts.append(term.evaluate_value(value))
        except EvaluationError:
            verdicts.append(None)
            errored = True
    return verdicts, errored


class TestFourPathNullConsistency:
    @_SETTINGS
    @given(rows=st.lists(_row, min_size=0, max_size=8), spec=_term_spec)
    def test_interpreter_compiled_mask_and_pushdown_agree(self, rows, spec):
        column, op, constant, second = spec
        if op.is_membership:
            constant = (constant, second)
        qualified = Term(f"T.{column}", op, constant)
        database = _database(rows)
        relation = database.relation("T")
        values = relation.column(column)
        column_type = relation.schema.attribute(column).type

        verdicts, errored = _interpret(qualified, values)

        if not errored:
            # Path 1 vs 2: interpreter vs compiled closure, value by value.
            compiled = compile_term(qualified)
            assert [compiled(v) for v in values] == verdicts

            # Path 3: the columnar term mask, bit for bit.
            bare = Term(column, op, constant)
            view = ColumnarView(relation)
            assert view.term_mask(bare) == pack_bools(verdicts)

        # Path 4: the pushdown SQL translation, row id by row id.
        try:
            condition = compile_term_sql(qualified, column_type)
        except PushdownUnsupportedError:
            # Refusing to compile is always safe (the round falls back to
            # the Python evaluator) and *mandatory* when any row errors —
            # a compiled round could not reproduce the error.
            return
        assert not errored, (
            f"{qualified} errors in the evaluator but compiled to SQL: {condition}"
        )
        expected = {
            tuple_id
            for tuple_id, verdict in zip(_ids(relation), verdicts)
            if verdict
        }
        with SqliteMirror(database) as mirror:
            sql = (
                f'SELECT "_qfe_id" FROM {render_identifier("T")} '
                f"WHERE {condition}"
            )
            selected = {row[0] for row in mirror._connection.execute(sql)}
        assert selected == expected, (qualified, condition)


class TestPinnedNullCases:
    """The specific traps, pinned so a pool change never un-tests them."""

    def _selected(self, database, term):
        relation = database.relation("T")
        column = term.attribute.split(".", 1)[1]
        column_type = relation.schema.attribute(column).type
        condition = compile_term_sql(term, column_type)
        with SqliteMirror(database) as mirror:
            rows = mirror._connection.execute(
                f'SELECT "_qfe_id" FROM "T" WHERE {condition}'
            ).fetchall()
        return {row[0] for row in rows}

    def test_not_in_with_null_in_list_still_selects(self):
        # SQL's ``x NOT IN (1, NULL)`` selects nothing; the evaluator's
        # selects every row whose value differs from 1. The pushdown must
        # strip the NULL, not pass it through.
        database = _database([(2, 1.0, True, "x"), (1, 1.0, True, "x")])
        term = Term("T.i", ComparisonOp.NOT_IN, (1, None))
        ids = self._selected(database, term)
        values = dict(zip(_ids(database.relation("T")),
                          database.relation("T").column("i")))
        assert ids == {i for i, v in values.items() if v is not None and v != 1}

    def test_in_with_only_null_matches_nothing(self):
        database = _database([(None, None, None, None)])
        term = Term("T.i", ComparisonOp.IN, (None,))
        assert self._selected(database, term) == set()

    def test_null_rows_fail_equality_against_null_constant(self):
        # The evaluator is not SQL: NULL == NULL is False, not UNKNOWN,
        # and NULL != NULL is also False (NULL fails every predicate).
        database = _database([(None, None, None, None)])
        assert self._selected(database, Term("T.i", ComparisonOp.EQ, None)) == set()

    def test_ne_null_constant_selects_exactly_non_null_rows(self):
        database = _database([(None, None, None, None), (7, None, None, None)])
        ids = self._selected(database, Term("T.i", ComparisonOp.NE, None))
        values = dict(zip(_ids(database.relation("T")),
                          database.relation("T").column("i")))
        assert ids == {i for i, v in values.items() if v is not None}

    def test_ordering_against_null_constant_refuses_to_compile(self):
        from repro.relational.types import AttributeType

        with pytest.raises(PushdownUnsupportedError):
            compile_term_sql(Term("T.i", ComparisonOp.LT, None), AttributeType.INTEGER)

    def test_string_literal_never_matches_integers(self):
        # SQLite's affinity would coerce '1' = 1 to true on a TEXT column
        # and 1 = '1' on INTEGER; the evaluator never cross-matches.
        database = _database([(1, 1.0, True, "1")])
        assert self._selected(database, Term("T.i", ComparisonOp.EQ, "1")) == set()
        relation = database.relation("T")
        ids = {
            i for i, v in zip(_ids(relation), relation.column("s")) if v == "1"
        }
        assert self._selected(database, Term("T.s", ComparisonOp.EQ, "1")) == ids
        assert self._selected(database, Term("T.s", ComparisonOp.EQ, 1)) == set()

    def test_nan_constant_behaves_like_python_not_sql(self):
        # Python: every comparison against NaN is False except ``!=`` which
        # is True — so EQ/orderings select nothing, NE selects every
        # non-NULL row, and NaN inside an IN list is dead weight.
        database = _database([(0, 0.0, True, "x"), (None, None, None, None)])
        relation = database.relation("T")
        non_null_f = {
            i for i, v in zip(_ids(relation), relation.column("f")) if v is not None
        }
        for op in _SCALAR_OPS:
            selected = self._selected(database, Term("T.f", op, NAN))
            expected = non_null_f if op is ComparisonOp.NE else set()
            assert selected == expected, op
        zero_f = {
            i for i, v in zip(_ids(relation), relation.column("f")) if v == 0.0
        }
        assert self._selected(
            database, Term("T.f", ComparisonOp.IN, (NAN, 0.0))
        ) == zero_f

    def test_ordering_against_nan_on_a_string_column_refuses_to_compile(self):
        # ``"x" < nan`` is a cross-type ordering *error* in the evaluator,
        # not a benign False — the numeric-column NaN fold must not apply.
        from repro.relational.types import AttributeType

        with pytest.raises(PushdownUnsupportedError):
            compile_term_sql(Term("T.s", ComparisonOp.LT, NAN), AttributeType.STRING)
        # Over numeric columns the fold stays: every ordering folds to 0.
        assert compile_term_sql(
            Term("T.f", ComparisonOp.LT, NAN), AttributeType.FLOAT
        ) == "0"

    def test_huge_int_neighbours_stay_exact_through_sql(self):
        # 2^53 and 2^53 + 1 collapse after a float() round-trip; the SQL
        # path must keep them apart exactly as the evaluator does.
        database = _database([(BIG, None, None, None), (BIG + 1, None, None, None)])
        relation = database.relation("T")
        by_value = dict(zip(relation.column("i"), _ids(relation)))
        assert self._selected(database, Term("T.i", ComparisonOp.EQ, BIG)) == {
            by_value[BIG]
        }
        assert self._selected(database, Term("T.i", ComparisonOp.EQ, BIG + 1)) == {
            by_value[BIG + 1]
        }
