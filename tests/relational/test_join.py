"""Unit tests for foreign-key joins, provenance and join indexes."""

import pytest

from repro.exceptions import SchemaError
from repro.relational.database import Database
from repro.relational.join import foreign_key_join, full_join
from repro.relational.schema import ForeignKey


class TestForeignKeyJoin:
    def test_single_table_join_is_trivial(self, two_table_db):
        joined = foreign_key_join(two_table_db, ["Dept"])
        assert len(joined) == 3
        assert joined.attribute_names == ("Dept.did", "Dept.dname", "Dept.budget")

    def test_two_table_join_size_and_columns(self, two_table_db):
        joined = foreign_key_join(two_table_db, ["Emp", "Dept"])
        assert len(joined) == 5  # every Emp row has a matching Dept
        assert "Emp.ename" in joined.attribute_names
        assert "Dept.dname" in joined.attribute_names

    def test_join_values_line_up(self, two_table_db):
        joined = foreign_key_join(two_table_db, ["Emp", "Dept"])
        for row in joined.rows_as_mappings():
            assert row["Emp.did"] == row["Dept.did"]

    def test_empty_table_list_rejected(self, two_table_db):
        with pytest.raises(SchemaError):
            foreign_key_join(two_table_db, [])

    def test_unconnected_tables_rejected(self):
        database = Database.from_tables(
            {"A": (["x"], [[1]]), "B": (["y"], [[2]])},
        )
        with pytest.raises(SchemaError):
            foreign_key_join(database, ["A", "B"])

    def test_unknown_table_rejected(self, two_table_db):
        with pytest.raises(SchemaError):
            foreign_key_join(two_table_db, ["Emp", "Nope"])

    def test_full_join(self, two_table_db):
        assert len(full_join(two_table_db)) == 5

    def test_null_foreign_keys_drop_out(self):
        database = Database.from_tables(
            {
                "Parent": (["pid"], [[1], [2]]),
                "Child": (["cid", "pid"], [[1, 1], [2, None], [3, 2]]),
            },
            foreign_keys=[ForeignKey("Child", ("pid",), "Parent", ("pid",))],
            primary_keys={"Parent": ["pid"], "Child": ["cid"]},
        )
        assert len(full_join(database)) == 2


class TestProvenanceAndJoinIndex:
    def test_provenance_maps_to_base_tuples(self, two_table_db):
        joined = foreign_key_join(two_table_db, ["Emp", "Dept"])
        for position in range(len(joined)):
            emp_id = joined.base_tuple_of(position, "Emp")
            dept_id = joined.base_tuple_of(position, "Dept")
            emp_row = two_table_db.relation("Emp").tuple_by_id(emp_id)
            dept_row = two_table_db.relation("Dept").tuple_by_id(dept_id)
            assert emp_row.values[2] == dept_row.values[0]

    def test_base_tuple_of_unknown_table(self, two_table_db):
        joined = foreign_key_join(two_table_db, ["Emp", "Dept"])
        with pytest.raises(SchemaError):
            joined.base_tuple_of(0, "Nope")

    def test_fanout_counts_children(self, two_table_db):
        joined = foreign_key_join(two_table_db, ["Emp", "Dept"])
        # Dept 1 (IT) has two employees, Dept 3 has one.
        dept = two_table_db.relation("Dept")
        it_id = next(t.tuple_id for t in dept.tuples if t.values[1] == "IT")
        service_id = next(t.tuple_id for t in dept.tuples if t.values[1] == "Service")
        assert joined.fanout_of("Dept", it_id) == 2
        assert joined.fanout_of("Dept", service_id) == 1
        assert joined.fanout_of("Dept", 999) == 0

    def test_joined_positions_consistent_with_fanout(self, two_table_db):
        joined = foreign_key_join(two_table_db, ["Emp", "Dept"])
        for table in ("Emp", "Dept"):
            for row in two_table_db.relation(table).tuples:
                positions = joined.joined_positions_of(table, row.tuple_id)
                assert len(positions) == joined.fanout_of(table, row.tuple_id)

    def test_owning_table_of(self, two_table_db):
        joined = foreign_key_join(two_table_db, ["Emp", "Dept"])
        assert joined.owning_table_of("Dept.dname") == "Dept"
        with pytest.raises(SchemaError):
            joined.owning_table_of("Nope.x")

    def test_row_as_mapping(self, two_table_db):
        joined = foreign_key_join(two_table_db, ["Emp", "Dept"])
        row = joined.row_as_mapping(0)
        assert set(row) == set(joined.attribute_names)


class TestDatasetJoins:
    def test_scientific_join_smaller_than_side_table(self, scientific_db):
        from repro.datasets import scientific

        joined = full_join(scientific_db)
        assert 0 < len(joined) < len(scientific_db.relation(scientific.SIDE_TABLE))

    def test_baseball_three_way_join_has_fanout(self, baseball_db):
        joined = full_join(baseball_db)
        batting_rows = len(baseball_db.relation("Batting"))
        # some team-seasons have two managers, so the join exceeds Batting,
        # but it never doubles it
        assert len(joined) >= batting_rows * 0.5
        assert len(joined) <= batting_rows * 2
