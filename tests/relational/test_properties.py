"""Hypothesis property tests for the relational substrate.

Invariants covered:

* ``minEdit`` is a metric-like distance on relation instances: identity,
  symmetry, non-negativity, and the upper bound ``arity · (|T| + |T'|)``;
  the edit script's cost always equals the reported minimum.
* Bag equality is insensitive to row order; set equality is insensitive to
  duplication.
* Predicate evaluation agrees between our engine and SQLite for randomly
  generated single-table selections.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.relational.database import Database
from repro.relational.edit import min_edit_relation, min_edit_script
from repro.relational.predicates import ComparisonOp, DNFPredicate, Term
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation
from repro.sql.sqlite_backend import cross_check

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_value = st.one_of(
    st.integers(min_value=-50, max_value=50),
    st.sampled_from(["red", "green", "blue", "x"]),
    st.none(),
)
_row = st.tuples(
    st.integers(min_value=-20, max_value=20),
    st.sampled_from(["red", "green", "blue"]),
    st.floats(min_value=-5, max_value=5, allow_nan=False, allow_infinity=False),
)
_rows = st.lists(_row, min_size=0, max_size=8)


def _relation(rows) -> Relation:
    return Relation.from_rows("T", ["a", "b", "c"], [list(r) for r in rows])


class TestMinEditProperties:
    @_SETTINGS
    @given(_rows)
    def test_identity(self, rows):
        relation = _relation(rows)
        assert min_edit_relation(relation, relation.copy()) == 0

    @_SETTINGS
    @given(_rows, _rows)
    def test_symmetry(self, left_rows, right_rows):
        left, right = _relation(left_rows), _relation(right_rows)
        assert min_edit_relation(left, right) == min_edit_relation(right, left)

    @_SETTINGS
    @given(_rows, _rows)
    def test_upper_bound_and_nonnegative(self, left_rows, right_rows):
        left, right = _relation(left_rows), _relation(right_rows)
        cost = min_edit_relation(left, right)
        assert 0 <= cost <= 3 * (len(left) + len(right))

    @_SETTINGS
    @given(_rows, _rows)
    def test_script_cost_matches(self, left_rows, right_rows):
        left, right = _relation(left_rows), _relation(right_rows)
        script = min_edit_script(left, right)
        assert script.cost == min_edit_relation(left, right)

    @_SETTINGS
    @given(_rows)
    def test_zero_iff_bag_equal(self, rows):
        left = _relation(rows)
        shuffled = _relation(list(reversed(rows)))
        assert min_edit_relation(left, shuffled) == 0
        assert left.bag_equal(shuffled)


class TestBagSetProperties:
    @_SETTINGS
    @given(_rows)
    def test_bag_equality_order_insensitive(self, rows):
        assert _relation(rows).bag_equal(_relation(list(reversed(rows))))

    @_SETTINGS
    @given(_rows)
    def test_set_equality_duplication_insensitive(self, rows):
        doubled = _relation(list(rows) + list(rows))
        assert doubled.set_equal(_relation(rows)) or not rows


_operators = st.sampled_from(
    [ComparisonOp.EQ, ComparisonOp.NE, ComparisonOp.LT, ComparisonOp.LE,
     ComparisonOp.GT, ComparisonOp.GE]
)


class TestSQLiteAgreement:
    @_SETTINGS
    @given(
        rows=st.lists(
            st.tuples(st.integers(0, 30), st.sampled_from(["p", "q", "r"])),
            min_size=1,
            max_size=10,
        ),
        operator=_operators,
        constant=st.integers(0, 30),
    )
    def test_numeric_selection_agrees_with_sqlite(self, rows, operator, constant):
        database = Database.from_tables(
            {"T": (["a", "b"], [list(r) for r in rows])}
        )
        query = SPJQuery(
            ["T"], ["T.a", "T.b"],
            DNFPredicate.from_terms([Term("T.a", operator, constant)]),
        )
        assert cross_check(query, database)

    @_SETTINGS
    @given(
        rows=st.lists(
            st.tuples(st.integers(0, 10), st.sampled_from(["p", "q", "r"])),
            min_size=1,
            max_size=10,
        ),
        constant=st.sampled_from(["p", "q", "r", "zz"]),
    )
    def test_string_equality_agrees_with_sqlite(self, rows, constant):
        database = Database.from_tables({"T": (["a", "b"], [list(r) for r in rows])})
        query = SPJQuery(
            ["T"], ["T.b"],
            DNFPredicate.from_terms([Term("T.b", ComparisonOp.EQ, constant)]),
        )
        assert cross_check(query, database)
