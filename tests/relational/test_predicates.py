"""Unit tests for terms, conjuncts and DNF predicates."""

import pytest

from repro.exceptions import EvaluationError
from repro.relational.predicates import ComparisonOp, Conjunct, DNFPredicate, Term, always_true


class TestComparisonOp:
    def test_negate_roundtrip(self):
        for op in ComparisonOp:
            assert op.negate().negate() is op

    def test_categories(self):
        assert ComparisonOp.LT.is_ordering
        assert not ComparisonOp.EQ.is_ordering
        assert ComparisonOp.IN.is_membership
        assert not ComparisonOp.GT.is_membership


class TestTermEvaluation:
    def test_equality_and_inequality(self):
        assert Term("a", ComparisonOp.EQ, 5).evaluate_value(5)
        assert Term("a", ComparisonOp.EQ, 5).evaluate_value(5.0)
        assert not Term("a", ComparisonOp.EQ, 5).evaluate_value(6)
        assert Term("a", ComparisonOp.NE, 5).evaluate_value(6)

    def test_orderings(self):
        assert Term("a", ComparisonOp.LT, 5).evaluate_value(4)
        assert not Term("a", ComparisonOp.LT, 5).evaluate_value(5)
        assert Term("a", ComparisonOp.LE, 5).evaluate_value(5)
        assert Term("a", ComparisonOp.GT, 5).evaluate_value(6)
        assert Term("a", ComparisonOp.GE, 5).evaluate_value(5)

    def test_membership(self):
        term = Term("a", ComparisonOp.IN, ("x", "y"))
        assert term.evaluate_value("x")
        assert not term.evaluate_value("z")
        negated = Term("a", ComparisonOp.NOT_IN, ("x", "y"))
        assert negated.evaluate_value("z")
        assert not negated.evaluate_value("x")

    def test_null_never_matches(self):
        for op in ComparisonOp:
            constant = ("x",) if op.is_membership else "x"
            assert not Term("a", op, constant).evaluate_value(None)

    def test_string_ordering(self):
        assert Term("a", ComparisonOp.LT, "m").evaluate_value("a")

    def test_mixed_type_comparison_raises(self):
        with pytest.raises(EvaluationError):
            Term("a", ComparisonOp.LT, "x").evaluate_value(5)

    def test_evaluate_row_requires_attribute(self):
        term = Term("T.a", ComparisonOp.EQ, 1)
        assert term.evaluate_row({"T.a": 1})
        with pytest.raises(EvaluationError):
            term.evaluate_row({"T.b": 1})

    def test_satisfied_by_all_and_none(self):
        term = Term("a", ComparisonOp.GT, 3)
        assert term.satisfied_by_all([4, 5])
        assert not term.satisfied_by_all([4, 2])
        assert term.satisfied_by_none([1, 2])
        assert not term.satisfied_by_none([1, 4])


class TestTermStructure:
    def test_constants(self):
        assert Term("a", ComparisonOp.IN, (1, 2)).constants() == (1, 2)
        assert Term("a", ComparisonOp.EQ, 1).constants() == (1,)

    def test_with_constant(self):
        term = Term("a", ComparisonOp.GT, 1)
        assert term.with_constant(2).constant == 2
        assert term.constant == 1

    def test_numeric_breakpoints_direction(self):
        assert (5.0, True) in Term("a", ComparisonOp.LE, 5).numeric_breakpoints()
        assert (5.0, False) in Term("a", ComparisonOp.LT, 5).numeric_breakpoints()
        assert len(Term("a", ComparisonOp.EQ, 5).numeric_breakpoints()) == 2
        assert Term("a", ComparisonOp.EQ, "x").numeric_breakpoints() == []

    def test_str_rendering(self):
        assert str(Term("a", ComparisonOp.EQ, "it's")) == "a = 'it''s'"
        assert str(Term("a", ComparisonOp.IN, (1, 2))) == "a IN (1, 2)"
        assert str(Term("a", ComparisonOp.GE, 2.5)) == "a >= 2.5"


class TestConjunct:
    def test_empty_conjunct_is_true(self):
        assert Conjunct(()).evaluate_row({"a": 1})

    def test_all_terms_must_hold(self):
        conjunct = Conjunct((Term("a", ComparisonOp.GT, 1), Term("b", ComparisonOp.EQ, "x")))
        assert conjunct.evaluate_row({"a": 2, "b": "x"})
        assert not conjunct.evaluate_row({"a": 2, "b": "y"})

    def test_attributes_and_terms_on(self):
        conjunct = Conjunct((Term("a", ComparisonOp.GT, 1), Term("b", ComparisonOp.EQ, 2),
                             Term("a", ComparisonOp.LT, 9)))
        assert conjunct.attributes() == ("a", "b")
        assert len(conjunct.terms_on("a")) == 2
        assert len(conjunct) == 3

    def test_str(self):
        assert str(Conjunct(())) == "TRUE"
        assert "AND" in str(Conjunct((Term("a", ComparisonOp.GT, 1), Term("b", ComparisonOp.LT, 2))))


class TestDNFPredicate:
    def test_true_predicate(self):
        assert always_true().is_true
        assert always_true().evaluate_row({"anything": 1})
        assert str(always_true()) == "TRUE"

    def test_single_conjunct(self):
        predicate = DNFPredicate.from_terms([Term("a", ComparisonOp.GT, 1)])
        assert predicate.evaluate_row({"a": 2})
        assert not predicate.evaluate_row({"a": 0})

    def test_disjunction(self):
        predicate = DNFPredicate(
            (
                Conjunct((Term("a", ComparisonOp.EQ, 1),)),
                Conjunct((Term("b", ComparisonOp.EQ, 2),)),
            )
        )
        assert predicate.evaluate_row({"a": 1, "b": 0})
        assert predicate.evaluate_row({"a": 0, "b": 2})
        assert not predicate.evaluate_row({"a": 0, "b": 0})
        assert "OR" in str(predicate)

    def test_attributes_and_term_count(self):
        predicate = DNFPredicate(
            (
                Conjunct((Term("a", ComparisonOp.EQ, 1), Term("b", ComparisonOp.GT, 2))),
                Conjunct((Term("a", ComparisonOp.EQ, 3),)),
            )
        )
        assert predicate.attributes() == ("a", "b")
        assert predicate.term_count() == 3
        assert len(predicate.terms_on("a")) == 2

    def test_equality_is_order_insensitive(self):
        left = DNFPredicate.from_terms([Term("a", ComparisonOp.EQ, 1), Term("b", ComparisonOp.EQ, 2)])
        right = DNFPredicate.from_terms([Term("b", ComparisonOp.EQ, 2), Term("a", ComparisonOp.EQ, 1)])
        assert left == right
        assert hash(left) == hash(right)

    def test_inequality(self):
        left = DNFPredicate.from_terms([Term("a", ComparisonOp.EQ, 1)])
        right = DNFPredicate.from_terms([Term("a", ComparisonOp.EQ, 2)])
        assert left != right


class TestLargeIntegerExactness:
    """Regression suite for the 2^53 ± 1 float() round-trip corruption.

    ``float(2**53) == float(2**53 + 1)``, so any comparison or cache key that
    normalized integer constants through ``float()`` silently equated two
    distinct constants — corrupting partition signatures downstream.
    """

    BIG = 2**53

    def test_equality_is_exact_at_2_pow_53(self):
        term = Term("a", ComparisonOp.EQ, self.BIG)
        assert term.evaluate_value(self.BIG)
        assert not term.evaluate_value(self.BIG + 1)
        assert not term.evaluate_value(self.BIG - 1)
        neighbour = Term("a", ComparisonOp.EQ, self.BIG + 1)
        assert neighbour.evaluate_value(self.BIG + 1)
        assert not neighbour.evaluate_value(self.BIG)

    def test_ordering_is_exact_at_2_pow_53(self):
        # float-normalized: 2^53 + 1 > 2^53 evaluated False.
        assert Term("a", ComparisonOp.GT, self.BIG).evaluate_value(self.BIG + 1)
        assert not Term("a", ComparisonOp.GT, self.BIG).evaluate_value(self.BIG)
        assert Term("a", ComparisonOp.LT, self.BIG + 1).evaluate_value(self.BIG)
        assert Term("a", ComparisonOp.LE, self.BIG).evaluate_value(self.BIG)
        assert not Term("a", ComparisonOp.LE, self.BIG).evaluate_value(self.BIG + 1)

    def test_membership_is_exact_at_2_pow_53(self):
        term = Term("a", ComparisonOp.IN, (self.BIG, self.BIG + 2))
        assert term.evaluate_value(self.BIG)
        assert not term.evaluate_value(self.BIG + 1)
        assert Term("a", ComparisonOp.NOT_IN, (self.BIG,)).evaluate_value(self.BIG + 1)

    def test_compiled_terms_agree_with_interpreter(self):
        from repro.relational.predicates import compile_term

        values = [self.BIG - 1, self.BIG, self.BIG + 1, float(self.BIG), None]
        for op in ComparisonOp:
            constant = (self.BIG, self.BIG + 1) if op.is_membership else self.BIG
            term = Term("a", op, constant)
            compiled = compile_term(term)
            for value in values:
                assert compiled(value) == term.evaluate_value(value), (op, value)

    def test_mask_keys_distinguish_neighbouring_big_ints(self):
        # Distinct constants must never share a term-mask cache entry.
        low = Term("a", ComparisonOp.EQ, self.BIG).mask_key()
        high = Term("a", ComparisonOp.EQ, self.BIG + 1).mask_key()
        assert low != high
        # ...while exactly-equal int/float constants still share one.
        assert Term("a", ComparisonOp.EQ, self.BIG).mask_key() == Term(
            "a", ComparisonOp.EQ, float(self.BIG)
        ).mask_key()

    def test_float_constants_keep_exact_python_semantics(self):
        # float(2^53 + 1) literally IS 2^53, so an EQ against it matches the
        # int 2^53 (exact mathematical equality) and not 2^53 + 1.
        term = Term("a", ComparisonOp.EQ, float(self.BIG + 1))
        assert term.evaluate_value(self.BIG)
        assert not term.evaluate_value(self.BIG + 1)

    def test_numeric_breakpoints_stay_distinct(self):
        low = Term("a", ComparisonOp.LE, self.BIG).numeric_breakpoints()
        high = Term("a", ComparisonOp.LE, self.BIG + 1).numeric_breakpoints()
        assert {v for v, _ in low} != {v for v, _ in high}
