"""Unit tests for attribute types and value coercion."""

import math

import pytest

from repro.exceptions import TypeMismatchError
from repro.relational.types import (
    AttributeType,
    coerce_value,
    infer_type,
    is_numeric,
    python_type_of,
    value_sort_key,
    values_equal,
)


class TestAttributeType:
    def test_sql_names(self):
        assert AttributeType.INTEGER.sql_name == "INTEGER"
        assert AttributeType.FLOAT.sql_name == "REAL"
        assert AttributeType.STRING.sql_name == "TEXT"
        assert AttributeType.BOOLEAN.sql_name == "INTEGER"

    def test_is_numeric(self):
        assert is_numeric(AttributeType.INTEGER)
        assert is_numeric(AttributeType.FLOAT)
        assert not is_numeric(AttributeType.STRING)
        assert not is_numeric(AttributeType.BOOLEAN)

    def test_python_type_of(self):
        assert python_type_of(AttributeType.INTEGER) is int
        assert python_type_of(AttributeType.STRING) is str


class TestInferType:
    def test_infers_integer(self):
        assert infer_type([1, 2, None, 3]) is AttributeType.INTEGER

    def test_infers_float_from_mixed_numbers(self):
        assert infer_type([1, 2.5]) is AttributeType.FLOAT

    def test_infers_string_dominates(self):
        assert infer_type([1, "a", 2.0]) is AttributeType.STRING

    def test_infers_boolean(self):
        assert infer_type([True, False, None]) is AttributeType.BOOLEAN

    def test_all_none_defaults_to_string(self):
        assert infer_type([None, None]) is AttributeType.STRING


class TestCoerceValue:
    def test_none_allowed_when_nullable(self):
        assert coerce_value(None, AttributeType.INTEGER) is None

    def test_none_rejected_when_not_nullable(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(None, AttributeType.INTEGER, nullable=False)

    def test_integer_accepts_integral_float(self):
        assert coerce_value(3.0, AttributeType.INTEGER) == 3

    def test_integer_rejects_fractional_float(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(3.5, AttributeType.INTEGER)

    def test_float_accepts_int(self):
        assert coerce_value(3, AttributeType.FLOAT) == 3.0
        assert isinstance(coerce_value(3, AttributeType.FLOAT), float)

    def test_float_rejects_nan(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(math.nan, AttributeType.FLOAT)

    def test_boolean_not_accepted_as_integer(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(True, AttributeType.INTEGER)

    def test_boolean_from_zero_one(self):
        assert coerce_value(1, AttributeType.BOOLEAN) is True
        assert coerce_value(0, AttributeType.BOOLEAN) is False

    def test_boolean_rejects_other_ints(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(2, AttributeType.BOOLEAN)

    def test_string_rejects_numbers(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(5, AttributeType.STRING)


class TestValueHelpers:
    def test_values_equal_null_only_equals_null(self):
        assert values_equal(None, None)
        assert not values_equal(None, 0)
        assert not values_equal("", None)

    def test_values_equal_numeric_cross_type(self):
        assert values_equal(1, 1.0)
        assert not values_equal(1, 2)

    def test_values_equal_bool_vs_int(self):
        assert values_equal(True, True)
        assert not values_equal(True, 2)

    def test_sort_key_total_order(self):
        values = ["b", None, 3, True, 1.5, "a"]
        ordered = sorted(values, key=value_sort_key)
        assert ordered[0] is None
        assert ordered[-1] == "b"
