"""Unit tests for SPJQuery / SPJUQuery value objects."""

import pytest

from repro.exceptions import SchemaError, UnsupportedQueryError
from repro.relational.predicates import ComparisonOp, DNFPredicate, Term
from repro.relational.query import SPJQuery, SPJUQuery


class TestSPJQueryConstruction:
    def test_requires_tables_and_projection(self):
        with pytest.raises(SchemaError):
            SPJQuery([], ["T.a"])
        with pytest.raises(SchemaError):
            SPJQuery(["T"], [])

    def test_default_predicate_is_true(self):
        query = SPJQuery(["T"], ["T.a"])
        assert query.predicate.is_true
        assert query.distinct is False

    def test_join_signature_ignores_order(self):
        left = SPJQuery(["B", "A"], ["A.x"])
        right = SPJQuery(["A", "B"], ["A.x"])
        assert left.join_signature == right.join_signature

    def test_selection_attributes(self):
        query = SPJQuery(
            ["T"], ["T.a"],
            DNFPredicate.from_terms([Term("T.b", ComparisonOp.GT, 1), Term("T.c", ComparisonOp.EQ, 2)]),
        )
        assert query.selection_attributes() == ("T.b", "T.c")


class TestSPJQueryIdentity:
    def test_equality_is_semantic(self):
        predicate = DNFPredicate.from_terms(
            [Term("T.a", ComparisonOp.GT, 1), Term("T.b", ComparisonOp.EQ, 2)]
        )
        reordered = DNFPredicate.from_terms(
            [Term("T.b", ComparisonOp.EQ, 2), Term("T.a", ComparisonOp.GT, 1)]
        )
        assert SPJQuery(["T"], ["T.a"], predicate) == SPJQuery(["T"], ["T.a"], reordered)
        assert hash(SPJQuery(["T"], ["T.a"], predicate)) == hash(SPJQuery(["T"], ["T.a"], reordered))

    def test_distinct_changes_identity(self):
        base = SPJQuery(["T"], ["T.a"])
        assert base != base.with_distinct(True)

    def test_with_predicate_copy(self):
        base = SPJQuery(["T"], ["T.a"])
        modified = base.with_predicate(DNFPredicate.from_terms([Term("T.a", ComparisonOp.EQ, 1)]))
        assert base.predicate.is_true
        assert not modified.predicate.is_true
        assert modified.tables == base.tables


class TestSPJQueryValidation:
    def test_validate_ok(self, two_table_db, join_query):
        join_query.validate(two_table_db.schema)

    def test_validate_unknown_table(self, two_table_db):
        with pytest.raises(SchemaError):
            SPJQuery(["Nope"], ["Nope.a"]).validate(two_table_db.schema)

    def test_validate_unknown_projection(self, two_table_db):
        with pytest.raises(SchemaError):
            SPJQuery(["Emp"], ["Emp.nope"]).validate(two_table_db.schema)

    def test_validate_unknown_selection_attribute(self, two_table_db):
        query = SPJQuery(
            ["Emp"], ["Emp.ename"],
            DNFPredicate.from_terms([Term("Dept.budget", ComparisonOp.GT, 1)]),
        )
        with pytest.raises(SchemaError):
            query.validate(two_table_db.schema)

    def test_str_is_sql(self, salary_query):
        text = str(salary_query)
        assert text.startswith("SELECT")
        assert "WHERE" in text


class TestSPJUQuery:
    def test_requires_branches(self):
        with pytest.raises(SchemaError):
            SPJUQuery([])

    def test_arity_must_match(self):
        with pytest.raises(UnsupportedQueryError):
            SPJUQuery([SPJQuery(["T"], ["T.a"]), SPJQuery(["T"], ["T.a", "T.b"])])

    def test_equality_ignores_branch_order(self):
        a = SPJQuery(["T"], ["T.a"], DNFPredicate.from_terms([Term("T.a", ComparisonOp.EQ, 1)]))
        b = SPJQuery(["T"], ["T.a"], DNFPredicate.from_terms([Term("T.a", ComparisonOp.EQ, 2)]))
        assert SPJUQuery([a, b]) == SPJUQuery([b, a])

    def test_validate_branches(self, two_table_db):
        good = SPJQuery(["Emp"], ["Emp.ename"])
        bad = SPJQuery(["Emp"], ["Emp.nope"])
        SPJUQuery([good]).validate(two_table_db.schema)
        with pytest.raises(SchemaError):
            SPJUQuery([good, bad]).validate(two_table_db.schema)

    def test_str_mentions_union(self, two_table_db):
        branch = SPJQuery(["Emp"], ["Emp.ename"])
        assert "UNION" in str(SPJUQuery([branch, branch]))
