"""Differential property suite for the delta-maintenance layer.

Seeded-random edit scripts — inserts, deletes and updates, including
FK-fanout rows, join-column rewrites and no-op updates — are applied to the
paper datasets, and the incrementally maintained state is held against a cold
rebuild from the modified database:

* ``JoinedRelation.apply_delta`` must equal ``foreign_key_join(D', ...)`` as a
  bag of joined rows, with a consistent join index;
* the copy-on-write ``ColumnarView.derive`` must be *bit-identical* to a view
  built fresh from the derived joined relation (same columns, same predicate
  masks);
* ``evaluate`` / ``evaluate_batch`` results and fingerprints on the derived
  state must equal the cold rebuild — and the row-at-a-time reference — for
  the paper workload queries Q1–Q6 and their mutated candidate variants.
"""

from __future__ import annotations

import random

import pytest

from repro.exceptions import EvaluationError
from repro.qbo.mutation import mutate_candidates
from repro.relational.columnar import ColumnarView
from repro.relational.database import Database
from repro.relational.delta import TupleDelta
from repro.relational.evaluator import (
    JoinCache,
    evaluate_batch,
    evaluate_on_join,
    evaluate_on_join_reference,
)
from repro.relational.join import JOIN_STATS, full_join
from repro.relational.predicates import ComparisonOp, Conjunct, DNFPredicate, Term
from repro.relational.query import SPJQuery
from repro.workloads import build_pair

#: Tiny scale keeps the six workload pairs fast while exercising real data.
_SCALE = 0.03

_PAPER_WORKLOADS = ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6")

#: ``build_pair`` output shared across seeds (the pairs are read-only here).
_PAIR_CACHE: dict[str, tuple] = {}


def _workload_pair(name: str):
    if name not in _PAIR_CACHE:
        database, result, target = build_pair(name, _SCALE)
        queries = [target] + mutate_candidates(database, result, [target], limit=6)
        _PAIR_CACHE[name] = (database, result, queries)
    return _PAIR_CACHE[name]


def _mutated_value(rng: random.Random, relation, column_index: int, current):
    """A type-correct replacement value drawn from the column or perturbed."""
    column = [t.values[column_index] for t in relation.tuples]
    candidates = [v for v in column if v is not None]
    if candidates and rng.random() < 0.6:
        return rng.choice(candidates)
    if isinstance(current, bool):
        return not current
    if isinstance(current, int):
        return current + rng.choice([-7, -1, 1, 13])
    if isinstance(current, float):
        return current * 1.5 + rng.choice([-1.0, 0.5, 2.0])
    if isinstance(current, str):
        return current + "_x"
    return rng.choice(candidates) if candidates else current


def random_delta(
    database: Database, rng: random.Random, operations: int = 8
) -> tuple[Database, TupleDelta]:
    """Apply a seeded-random edit script to a copy of *database*, recording it.

    The mix includes plain attribute updates, no-op updates (recorded but
    changing nothing), join/FK-column rewrites (any column can be hit),
    deletions of rows with foreign-key fanout, and insertions cloned from
    existing rows so FK values stay joinable.
    """
    derived = database.copy()
    delta = TupleDelta()
    tables = list(derived.table_names)
    for _ in range(operations):
        table = rng.choice(tables)
        relation = derived.relation(table)
        if not len(relation):
            continue
        kind = rng.choice(["update", "update", "update", "noop", "insert", "delete"])
        if kind == "delete":
            victim = rng.choice(relation.tuples)
            relation.delete(victim.tuple_id)
            delta.record_delete(table, victim.tuple_id)
        elif kind == "insert":
            source = rng.choice(relation.tuples)
            values = list(source.values)
            column_index = rng.randrange(len(values))
            values[column_index] = _mutated_value(rng, relation, column_index, values[column_index])
            try:
                inserted = relation.insert(values)
            except Exception:
                inserted = relation.insert(list(source.values))
            delta.record_insert(table, inserted.tuple_id, inserted.values)
        else:
            victim = rng.choice(relation.tuples)
            values = list(victim.values)
            if kind == "update":
                column_index = rng.randrange(len(values))
                replacement = _mutated_value(rng, relation, column_index, values[column_index])
                try:
                    relation.replace_tuple(
                        victim.tuple_id,
                        values[:column_index] + [replacement] + values[column_index + 1 :],
                    )
                except Exception:
                    relation.replace_tuple(victim.tuple_id, values)
            else:
                relation.replace_tuple(victim.tuple_id, values)  # recorded no-op
            delta.record_update(table, victim.tuple_id, relation.tuple_by_id(victim.tuple_id).values)
    return derived, delta


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("name", _PAPER_WORKLOADS)
def test_apply_delta_matches_cold_rebuild_on_paper_workloads(name, seed):
    database, _, queries = _workload_pair(name)
    joined = full_join(database)
    evaluate_batch(queries, joined, database)  # warm the term masks that derive() shares

    derived_db, delta = random_delta(database, random.Random(seed))
    derived = joined.apply_delta(delta, database)
    cold = full_join(derived_db)

    # Joined rows agree with the cold rebuild as bags.
    assert derived.relation.bag_equal(cold.relation), f"{name}/seed {seed}: joined rows differ"
    assert len(derived) == len(cold)

    # The join index is consistent with the provenance it was derived from.
    for position, row_provenance in enumerate(derived.provenance):
        for table, tuple_id in row_provenance.items():
            assert position in derived.joined_positions_of(table, tuple_id)
            assert derived.fanout_of(table, tuple_id) >= 1

    # The copy-on-write columnar view is bit-identical to a fresh build.
    view = derived.columnar()
    fresh = ColumnarView(derived.relation)
    assert view.row_count == fresh.row_count == len(derived)
    for attribute in fresh.names:
        assert list(view.column(attribute)) == list(fresh.column(attribute)), (
            f"{name}/seed {seed}: column {attribute} differs from fresh build"
        )
    for query in queries:
        assert view.predicate_mask(query.predicate) == fresh.predicate_mask(query.predicate), (
            f"{name}/seed {seed}: patched mask differs for {query}"
        )


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("name", _PAPER_WORKLOADS)
def test_delta_evaluation_matches_cold_and_reference(name, seed):
    database, _, queries = _workload_pair(name)
    joined = full_join(database)
    evaluate_batch(queries, joined, database)

    derived_db, delta = random_delta(database, random.Random(seed))
    derived = joined.apply_delta(delta, database)
    cold = full_join(derived_db)

    derived_batch = evaluate_batch(queries, derived, derived_db)
    cold_batch = evaluate_batch(queries, cold, derived_db)
    for query, derived_result, cold_result, derived_fp, cold_fp in zip(
        queries,
        derived_batch.results,
        cold_batch.results,
        derived_batch.fingerprints,
        cold_batch.fingerprints,
    ):
        assert derived_result.bag_equal(cold_result), f"{name}/seed {seed}: {query}"
        assert derived_fp == cold_fp, f"{name}/seed {seed}: fingerprint mismatch for {query}"
        reference = evaluate_on_join_reference(query, cold, derived_db)
        assert derived_result.bag_equal(reference)
        single = evaluate_on_join(query, derived, derived_db)
        assert single.bag_equal(reference)


@pytest.mark.parametrize("name", _PAPER_WORKLOADS)
def test_join_cache_derive_serves_derived_database(name):
    database, _, queries = _workload_pair(name)
    cache = JoinCache()
    referenced = sorted({table for query in queries for table in query.tables})
    cache.join_for(database, referenced).columnar()
    cache.evaluate_batch(queries, database)  # warm base masks

    derived_db, delta = random_delta(database, random.Random(7))
    JOIN_STATS.reset()
    cache.derive(database, delta, derived_db, referenced)
    assert JOIN_STATS.full_joins == 0, "derive must not rebuild the join cold"
    assert JOIN_STATS.delta_applies == 1

    through_cache = cache.evaluate_batch(queries, derived_db)
    cold_batch = JoinCache().evaluate_batch(queries, derived_db)
    for derived_fp, cold_fp in zip(through_cache.fingerprints, cold_batch.fingerprints):
        assert derived_fp == cold_fp


class TestDeltaErrorSemantics:
    """Patched masks must preserve the interpreter's short-circuit error rules."""

    def _erroring_query(self):
        # Second term raises on every string value it actually reaches.
        return SPJQuery(
            ["Emp"],
            ["Emp.ename"],
            DNFPredicate(
                (
                    Conjunct(
                        (
                            Term("Emp.salary", ComparisonOp.GT, 1000),  # false everywhere
                            Term("Emp.ename", ComparisonOp.LT, 10),  # would raise
                        )
                    ),
                )
            ),
        )

    def test_unreachable_error_stays_suppressed_after_patch(self, two_table_db):
        joined = full_join(two_table_db)
        query = self._erroring_query()
        evaluate_batch([query], joined, two_table_db)  # caches both term masks

        derived_db = two_table_db.copy()
        delta = TupleDelta()
        derived_db.relation("Emp").update_value(1, "salary", 58)  # Bo: still < 1000
        delta.record_update("Emp", 1, derived_db.relation("Emp").tuple_by_id(1).values)
        derived = joined.apply_delta(delta, two_table_db)

        reference = evaluate_on_join_reference(query, full_join(derived_db), derived_db)
        assert evaluate_on_join(query, derived, derived_db).bag_equal(reference)

    def test_error_surfaces_when_patched_row_reaches_term(self, two_table_db):
        joined = full_join(two_table_db)
        query = self._erroring_query()
        evaluate_batch([query], joined, two_table_db)

        derived_db = two_table_db.copy()
        delta = TupleDelta()
        derived_db.relation("Emp").update_value(0, "salary", 2000)  # Ann now passes term 1
        delta.record_update("Emp", 0, derived_db.relation("Emp").tuple_by_id(0).values)
        derived = joined.apply_delta(delta, two_table_db)

        with pytest.raises(EvaluationError):
            evaluate_on_join_reference(query, full_join(derived_db), derived_db)
        with pytest.raises(EvaluationError):
            evaluate_on_join(query, derived, derived_db)

    def test_error_clears_when_erroring_rows_removed(self, two_table_db):
        joined = full_join(two_table_db)
        query = SPJQuery(
            ["Emp"],
            ["Emp.eid"],
            DNFPredicate.from_terms([Term("Emp.senior", ComparisonOp.LT, "x")]),
        )
        view = joined.columnar()
        with pytest.raises(EvaluationError):
            view.predicate_mask(query.predicate)  # bools vs str: raises somewhere

        # Delete every Emp whose senior flag is a bool; only Ed (None) stays.
        derived_db = two_table_db.copy()
        delta = TupleDelta()
        for tuple_id in (0, 1, 2, 3):
            derived_db.relation("Emp").delete(tuple_id)
            delta.record_delete("Emp", tuple_id)
        derived = joined.apply_delta(delta, two_table_db)

        reference = evaluate_on_join_reference(query, full_join(derived_db), derived_db)
        assert evaluate_on_join(query, derived, derived_db).bag_equal(reference)


class TestColumnSharing:
    """Update-only deltas must share untouched state with the base instance."""

    def test_untouched_columns_and_masks_are_shared(self, two_table_db):
        joined = full_join(two_table_db)
        base_view = joined.columnar()
        salary_term = Term("Emp.salary", ComparisonOp.GT, 60)
        budget_term = Term("Dept.budget", ComparisonOp.GE, 80)
        base_view.term_mask(salary_term)
        base_view.term_mask(budget_term)

        derived_db = two_table_db.copy()
        delta = TupleDelta()
        derived_db.relation("Emp").update_value(3, "salary", 99)
        delta.record_update("Emp", 3, derived_db.relation("Emp").tuple_by_id(3).values)
        derived = joined.apply_delta(delta, two_table_db)
        derived_view = derived.columnar()

        # The untouched Dept.budget column (and its mask) is shared by
        # reference; the patched Emp.salary column is a fresh object.
        assert derived_view.column("Dept.budget") is base_view.column("Dept.budget")
        assert derived_view.column("Emp.salary") is not base_view.column("Emp.salary")
        assert derived_view.term_mask(budget_term) == base_view.term_mask(budget_term)
        assert derived_view.term_mask(salary_term) != base_view.term_mask(salary_term)
        # Provenance and join index are shared wholesale on the update-only path.
        assert derived.provenance is joined.provenance

    def test_update_only_contract_of_class_pairs(self):
        from repro.core.modification import ClassPair
        from repro.core.tuple_class import TupleClass

        pair = ClassPair(TupleClass((0,)), TupleClass((1,)))
        assert pair.is_update_only  # the contract JoinCache.derive relies on
