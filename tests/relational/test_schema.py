"""Unit tests for schemas, keys and the foreign-key join graph."""

import pytest

from repro.exceptions import SchemaError
from repro.relational.schema import (
    Attribute,
    DatabaseSchema,
    ForeignKey,
    TableSchema,
    qualify,
    split_qualified,
)
from repro.relational.types import AttributeType


def _table(name, columns, pk=None):
    return TableSchema(name, [Attribute(c, AttributeType.INTEGER) for c in columns], primary_key=pk)


class TestQualify:
    def test_qualify_and_split(self):
        assert qualify("T", "a") == "T.a"
        assert split_qualified("T.a") == ("T", "a")
        assert split_qualified("a") == (None, "a")


class TestAttribute:
    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Attribute("", AttributeType.INTEGER)

    def test_rejects_bad_type(self):
        with pytest.raises(SchemaError):
            Attribute("a", "integer")  # type: ignore[arg-type]

    def test_renamed_keeps_type(self):
        attribute = Attribute("a", AttributeType.FLOAT, nullable=False)
        renamed = attribute.renamed("b")
        assert renamed.name == "b"
        assert renamed.type is AttributeType.FLOAT
        assert renamed.nullable is False


class TestTableSchema:
    def test_basic_accessors(self):
        table = _table("T", ["a", "b", "c"], pk=["a"])
        assert table.arity == 3
        assert table.attribute_names == ("a", "b", "c")
        assert table.index_of("b") == 1
        assert table.has_attribute("c")
        assert not table.has_attribute("z")
        assert table.qualified_names() == ("T.a", "T.b", "T.c")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            _table("T", ["a", "a"])

    def test_unknown_primary_key_rejected(self):
        with pytest.raises(SchemaError):
            _table("T", ["a"], pk=["z"])

    def test_missing_attribute_raises(self):
        table = _table("T", ["a"])
        with pytest.raises(SchemaError):
            table.attribute("z")
        with pytest.raises(SchemaError):
            table.index_of("z")

    def test_empty_table_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("T", [])

    def test_equality_and_hash(self):
        assert _table("T", ["a", "b"]) == _table("T", ["a", "b"])
        assert hash(_table("T", ["a"])) == hash(_table("T", ["a"]))
        assert _table("T", ["a"]) != _table("T", ["b"])


class TestForeignKey:
    def test_mismatched_columns_rejected(self):
        with pytest.raises(SchemaError):
            ForeignKey("A", ("x", "y"), "B", ("z",))

    def test_empty_columns_rejected(self):
        with pytest.raises(SchemaError):
            ForeignKey("A", (), "B", ())

    def test_name_and_pairs(self):
        fk = ForeignKey("A", ("x",), "B", ("y",))
        assert "A(x)->B(y)" == fk.name
        assert fk.column_pairs() == (("x", "y"),)


class TestDatabaseSchema:
    def _schema(self):
        return DatabaseSchema(
            [_table("A", ["id", "b_id"], pk=["id"]), _table("B", ["id"], pk=["id"]),
             _table("C", ["id"], pk=["id"])],
            [ForeignKey("A", ("b_id",), "B", ("id",))],
        )

    def test_duplicate_table_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseSchema([_table("A", ["x"]), _table("A", ["y"])])

    def test_foreign_key_validation(self):
        with pytest.raises(SchemaError):
            DatabaseSchema([_table("A", ["x"])], [ForeignKey("A", ("x",), "Z", ("y",))])
        with pytest.raises(SchemaError):
            DatabaseSchema(
                [_table("A", ["x"]), _table("B", ["y"])],
                [ForeignKey("A", ("missing",), "B", ("y",))],
            )

    def test_lookups(self):
        schema = self._schema()
        assert schema.table_names == ("A", "B", "C")
        assert schema.has_table("A") and not schema.has_table("Z")
        with pytest.raises(SchemaError):
            schema.table("Z")
        assert len(schema.foreign_keys_of("A")) == 1
        assert len(schema.foreign_keys_of("C")) == 0
        assert len(schema.foreign_keys_between("A", "B")) == 1

    def test_resolve_attribute(self):
        schema = self._schema()
        assert schema.resolve_attribute("A.b_id") == ("A", "b_id")
        assert schema.resolve_attribute("b_id") == ("A", "b_id")
        with pytest.raises(SchemaError):
            schema.resolve_attribute("id")  # ambiguous across tables
        with pytest.raises(SchemaError):
            schema.resolve_attribute("missing")

    def test_join_connectivity(self):
        schema = self._schema()
        assert schema.is_join_connected(["A", "B"])
        assert not schema.is_join_connected(["A", "C"])
        assert schema.is_join_connected(["A"])
        assert not schema.is_join_connected([])

    def test_spanning_foreign_keys(self):
        schema = self._schema()
        assert len(schema.spanning_foreign_keys(["A", "B"])) == 1
        assert schema.spanning_foreign_keys(["A"]) == ()
        with pytest.raises(SchemaError):
            schema.spanning_foreign_keys(["A", "C"])

    def test_join_graph_shape(self):
        graph = self._schema().join_graph()
        assert set(graph.nodes) == {"A", "B", "C"}
        assert graph.number_of_edges() == 1
