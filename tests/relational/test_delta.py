"""Unit tests for the Δ(D, R_i) delta presentation."""

from repro.relational.delta import database_delta, result_delta
from repro.relational.relation import Relation


class TestDatabaseDelta:
    def test_no_changes(self, two_table_db):
        delta = database_delta(two_table_db, two_table_db.copy())
        assert delta.cost == 0
        assert delta.modified_relation_count == 0
        assert delta.describe() == ["(no database changes)"]

    def test_single_modification(self, two_table_db):
        modified = two_table_db.copy()
        modified.relation("Emp").update_value(1, "salary", 77)
        delta = database_delta(two_table_db, modified)
        assert delta.cost == 1
        assert delta.modified_relation_count == 1
        assert delta.modified_tuple_count == 1
        assert any("salary" in line for line in delta.describe())

    def test_multi_relation_modification(self, two_table_db):
        modified = two_table_db.copy()
        modified.relation("Emp").update_value(0, "salary", 1)
        modified.relation("Dept").update_value(0, "budget", 2)
        delta = database_delta(two_table_db, modified)
        assert delta.modified_relation_count == 2
        assert delta.modified_tuple_count == 2
        assert delta.cost == 2

    def test_pretty_is_multiline_text(self, two_table_db):
        modified = two_table_db.copy()
        modified.relation("Emp").update_value(0, "salary", 1)
        assert "salary" in database_delta(two_table_db, modified).pretty()


class TestResultDelta:
    def test_unchanged_result(self):
        result = Relation.from_rows("R", ["name"], [["a"], ["b"]])
        delta = result_delta(result, result.copy())
        assert delta.cost == 0
        assert delta.describe() == ["(result unchanged)"]

    def test_added_row(self):
        original = Relation.from_rows("R", ["name"], [["a"]])
        candidate = Relation.from_rows("R", ["name"], [["a"], ["b"]])
        delta = result_delta(original, candidate)
        assert delta.cost == 1
        assert any("insert" in line for line in delta.describe())

    def test_removed_row(self):
        original = Relation.from_rows("R", ["name"], [["a"], ["b"]])
        candidate = Relation.from_rows("R", ["name"], [["a"]])
        delta = result_delta(original, candidate)
        assert delta.cost == 1
        assert any("delete" in line for line in delta.describe())

    def test_modified_wide_row(self):
        original = Relation.from_rows("R", ["x", "y", "z"], [[1, 2, 3]])
        candidate = Relation.from_rows("R", ["x", "y", "z"], [[1, 9, 3]])
        assert result_delta(original, candidate).cost == 1
