"""Unit tests for the Δ(D, R_i) delta presentation and the TupleDelta record."""

import pytest

from repro.exceptions import SchemaError
from repro.relational.delta import (
    TupleDelta,
    database_delta,
    delta_from_edit_script,
    result_delta,
)
from repro.relational.edit import min_edit_script
from repro.relational.relation import Relation


class TestDatabaseDelta:
    def test_no_changes(self, two_table_db):
        delta = database_delta(two_table_db, two_table_db.copy())
        assert delta.cost == 0
        assert delta.modified_relation_count == 0
        assert delta.describe() == ["(no database changes)"]

    def test_single_modification(self, two_table_db):
        modified = two_table_db.copy()
        modified.relation("Emp").update_value(1, "salary", 77)
        delta = database_delta(two_table_db, modified)
        assert delta.cost == 1
        assert delta.modified_relation_count == 1
        assert delta.modified_tuple_count == 1
        assert any("salary" in line for line in delta.describe())

    def test_multi_relation_modification(self, two_table_db):
        modified = two_table_db.copy()
        modified.relation("Emp").update_value(0, "salary", 1)
        modified.relation("Dept").update_value(0, "budget", 2)
        delta = database_delta(two_table_db, modified)
        assert delta.modified_relation_count == 2
        assert delta.modified_tuple_count == 2
        assert delta.cost == 2

    def test_pretty_is_multiline_text(self, two_table_db):
        modified = two_table_db.copy()
        modified.relation("Emp").update_value(0, "salary", 1)
        assert "salary" in database_delta(two_table_db, modified).pretty()


class TestResultDelta:
    def test_unchanged_result(self):
        result = Relation.from_rows("R", ["name"], [["a"], ["b"]])
        delta = result_delta(result, result.copy())
        assert delta.cost == 0
        assert delta.describe() == ["(result unchanged)"]

    def test_added_row(self):
        original = Relation.from_rows("R", ["name"], [["a"]])
        candidate = Relation.from_rows("R", ["name"], [["a"], ["b"]])
        delta = result_delta(original, candidate)
        assert delta.cost == 1
        assert any("insert" in line for line in delta.describe())

    def test_removed_row(self):
        original = Relation.from_rows("R", ["name"], [["a"], ["b"]])
        candidate = Relation.from_rows("R", ["name"], [["a"]])
        delta = result_delta(original, candidate)
        assert delta.cost == 1
        assert any("delete" in line for line in delta.describe())

    def test_modified_wide_row(self):
        original = Relation.from_rows("R", ["x", "y", "z"], [[1, 2, 3]])
        candidate = Relation.from_rows("R", ["x", "y", "z"], [[1, 9, 3]])
        assert result_delta(original, candidate).cost == 1


class TestTupleDelta:
    def test_empty_delta(self):
        delta = TupleDelta()
        assert delta.is_empty
        assert delta.is_update_only
        assert delta.op_count == 0
        assert delta.relations == ()

    def test_recording_and_access(self):
        delta = TupleDelta()
        delta.record_update("Emp", 2, (2, "Bo", 2, 58, False))
        delta.record_delete("Dept", 0)
        delta.record_insert("Emp", 9, (9, "New", 1, 10, True))
        assert delta.relations == ("Dept", "Emp")
        assert not delta.is_update_only
        assert delta.op_count == 3
        assert delta.updates_for("Emp") == {2: (2, "Bo", 2, 58, False)}
        assert delta.deletes_for("Dept") == frozenset({0})
        assert delta.inserts_for("Emp") == {9: (9, "New", 1, 10, True)}
        kinds = {kind for kind, *_ in delta.operations()}
        assert kinds == {"insert", "delete", "update"}

    def test_coalescing_rules(self):
        delta = TupleDelta()
        delta.record_insert("T", 5, (1,))
        delta.record_update("T", 5, (2,))  # update of an insert folds in
        assert delta.inserts_for("T") == {5: (2,)}
        assert delta.updates_for("T") == {}
        delta.record_delete("T", 5)  # delete of an insert cancels it
        assert delta.is_empty
        delta.record_update("T", 3, (7,))
        delta.record_update("T", 3, (8,))  # later update replaces earlier
        assert delta.updates_for("T") == {3: (8,)}
        delta.record_delete("T", 3)  # delete of an update becomes a delete
        assert delta.updates_for("T") == {}
        assert delta.deletes_for("T") == frozenset({3})

    def test_between_and_apply_to_roundtrip(self, two_table_db):
        derived = two_table_db.copy()
        derived.relation("Emp").update_value(1, "salary", 58)
        derived.relation("Emp").delete(3)
        derived.relation("Emp").insert([6, "Fay", 1, 120, True])
        derived.relation("Dept").update_value(0, "budget", 150)

        delta = TupleDelta.between(two_table_db, derived)
        assert delta.updates_for("Emp") and delta.deletes_for("Emp") == frozenset({3})
        assert not delta.is_update_only

        replayed = delta.apply_to(two_table_db.copy())
        for name in two_table_db.table_names:
            assert replayed.relation(name).bag_equal(derived.relation(name))
        # ids replayed identically, so diffing again yields an empty delta
        assert TupleDelta.between(derived, replayed).is_empty

    def test_between_ignores_noop_copies(self, two_table_db):
        assert TupleDelta.between(two_table_db, two_table_db.copy()).is_empty

    def test_apply_to_rejects_misaligned_base(self, two_table_db):
        delta = TupleDelta()
        delta.record_insert("Emp", 99, (7, "Gil", 1, 50, False))
        with pytest.raises(SchemaError):
            delta.apply_to(two_table_db.copy())


class TestDeltaFromEditScript:
    def test_modifications_grouped_per_tuple_and_resolved_to_ids(self, two_table_db):
        base = two_table_db.relation("Emp")
        target = base.copy()
        target.update_value(0, "salary", 95)
        target.update_value(0, "senior", False)  # two cells of one tuple
        # minEdit represents replacing Bo with Fay as one multi-cell MODIFY
        # (cost = arity, cheaper than delete + insert at 2x arity).
        target.delete(1)
        target.insert([6, "Fay", 1, 120, True])

        script = min_edit_script(base, target)
        delta = delta_from_edit_script(base, script)
        assert set(delta.updates_for("Emp")) == {0, 1}
        assert delta.updates_for("Emp")[0] == (1, "Ann", 1, 95, False)
        assert delta.updates_for("Emp")[1] == (6, "Fay", 1, 120, True)

        # Replaying the resolved delta reproduces the script's target relation.
        replayed = delta.apply_to(two_table_db.copy())
        assert replayed.relation("Emp").bag_equal(target)

    def test_pure_insert_and_delete_resolved(self, two_table_db):
        base = two_table_db.relation("Emp")
        target = base.copy()
        target.delete(1)  # drop Bo entirely (no replacement row)

        delta = delta_from_edit_script(base, min_edit_script(base, target))
        assert delta.deletes_for("Emp") == frozenset({1})
        assert delta.apply_to(two_table_db.copy()).relation("Emp").bag_equal(target)

        grown = base.copy()
        grown.insert([6, "Fay", 1, 120, True])
        delta = delta_from_edit_script(base, min_edit_script(base, grown))
        assert list(delta.inserts_for("Emp").values()) == [(6, "Fay", 1, 120, True)]
        assert delta.apply_to(two_table_db.copy()).relation("Emp").bag_equal(grown)

    def test_duplicate_rows_modified_identically_stay_distinct(self):
        # Bag semantics: two identical rows both change the same way. The
        # script emits two identical MODIFY runs; they must resolve to two
        # distinct tuple updates, not be collapsed into one.
        base = Relation.from_rows("T", ["a", "b"], [[1, "A"], [1, "A"], [2, "B"]])
        target = Relation.from_rows("T", ["a", "b"], [[1, "Z"], [1, "Z"], [2, "B"]])
        script = min_edit_script(base, target)
        assert len(script.row_changes()) == 2

        delta = delta_from_edit_script(base, script)
        assert len(delta.updates_for("T")) == 2
        replayed = base.copy()
        for tuple_id, values in delta.updates_for("T").items():
            replayed.replace_tuple(tuple_id, values)
        assert replayed.bag_equal(target)

    def test_unmatched_row_raises(self, two_table_db):
        base = two_table_db.relation("Emp")
        other = Relation.from_rows(
            "Emp", list(base.schema.attribute_names), [[9, "Zed", 1, 1, False]]
        )
        script = min_edit_script(other, other.copy())
        # Craft a script op whose source row does not exist in ``base``.
        from repro.relational.edit import EditKind, EditOperation, EditScript

        bogus = EditScript(
            (EditOperation(kind=EditKind.DELETE, relation="Emp", source_row=(9, "Zed", 1, 1, False)),)
        )
        with pytest.raises(SchemaError):
            delta_from_edit_script(base, bogus)
