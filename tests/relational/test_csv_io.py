"""Unit tests for CSV import/export."""

import pytest

from repro.exceptions import SchemaError
from repro.relational.csv_io import (
    database_from_csv_directory,
    database_to_csv_directory,
    parse_csv_value,
    relation_from_csv_text,
    relation_to_csv_text,
)
from repro.relational.schema import ForeignKey


class TestParseCsvValue:
    def test_null_forms(self):
        assert parse_csv_value("") is None
        assert parse_csv_value("NULL") is None
        assert parse_csv_value("  null ") is None

    def test_booleans(self):
        assert parse_csv_value("true") is True
        assert parse_csv_value("False") is False

    def test_numbers(self):
        assert parse_csv_value("42") == 42
        assert parse_csv_value("-3.5") == -3.5

    def test_strings(self):
        assert parse_csv_value("hello world") == "hello world"
        assert parse_csv_value("12abc") == "12abc"


class TestRelationRoundTrip:
    def test_text_round_trip(self):
        relation = relation_from_csv_text("T", "a,b,c\n1,x,2.5\n2,y,\n")
        assert relation.rows() == [(1, "x", 2.5), (2, "y", None)]
        text = relation_to_csv_text(relation)
        again = relation_from_csv_text("T", text)
        assert again.bag_equal(relation)

    def test_header_only(self):
        relation = relation_from_csv_text("T", "a,b\n")
        assert len(relation) == 0
        assert relation.schema.attribute_names == ("a", "b")

    def test_empty_text_rejected(self):
        with pytest.raises(SchemaError):
            relation_from_csv_text("T", "")

    def test_boolean_round_trip(self):
        relation = relation_from_csv_text("T", "flag\ntrue\nfalse\n")
        assert relation.column("flag") == [True, False]
        assert "true" in relation_to_csv_text(relation)


class TestDatabaseRoundTrip:
    def test_directory_round_trip(self, two_table_db, tmp_path):
        database_to_csv_directory(two_table_db, tmp_path)
        loaded = database_from_csv_directory(
            tmp_path,
            foreign_keys=[ForeignKey("Emp", ("did",), "Dept", ("did",))],
            primary_keys={"Dept": ["did"], "Emp": ["eid"]},
        )
        assert set(loaded.table_names) == {"Dept", "Emp"}
        for name in loaded.table_names:
            assert loaded.relation(name).bag_equal(two_table_db.relation(name))

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(SchemaError):
            database_from_csv_directory(tmp_path)
