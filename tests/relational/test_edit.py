"""Unit tests for the Section 3 edit model (minEdit and edit scripts)."""

import pytest

from repro.relational.edit import (
    EditKind,
    min_edit_database,
    min_edit_relation,
    min_edit_script,
    modified_relation_names,
    tuple_distance,
)
from repro.relational.relation import Relation


def _rel(rows, columns=("a", "b", "c")):
    return Relation.from_rows("T", list(columns), rows)


class TestTupleDistance:
    def test_identical_rows(self):
        assert tuple_distance((1, 2, 3), (1, 2, 3)) == 0

    def test_counts_differences(self):
        assert tuple_distance((1, 2, 3), (1, 9, 9)) == 2

    def test_int_float_equivalence(self):
        assert tuple_distance((1, 2.0), (1.0, 2)) == 0

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            tuple_distance((1,), (1, 2))


class TestMinEditRelation:
    def test_identical_relations_cost_zero(self):
        left = _rel([[1, 2, 3], [4, 5, 6]])
        assert min_edit_relation(left, left.copy()) == 0

    def test_single_value_modification_costs_one(self):
        source = _rel([[1, 2, 3], [4, 5, 6]])
        target = _rel([[1, 2, 3], [4, 9, 6]])
        assert min_edit_relation(source, target) == 1

    def test_insert_costs_arity(self):
        source = _rel([[1, 2, 3]])
        target = _rel([[1, 2, 3], [4, 5, 6]])
        assert min_edit_relation(source, target) == 3

    def test_delete_costs_arity(self):
        source = _rel([[1, 2, 3], [4, 5, 6]])
        target = _rel([[1, 2, 3]])
        assert min_edit_relation(source, target) == 3

    def test_prefers_modification_over_delete_insert(self):
        source = _rel([[1, 2, 3]])
        target = _rel([[1, 2, 9]])
        assert min_edit_relation(source, target) == 1

    def test_prefers_delete_insert_when_nothing_matches(self):
        source = _rel([[1]], columns=("a",))
        target = _rel([[9]], columns=("a",))
        # one-column relations: modify (cost 1) beats delete+insert (cost 2)
        assert min_edit_relation(source, target) == 1

    def test_symmetric_cost(self):
        source = _rel([[1, 2, 3], [4, 5, 6], [7, 8, 9]])
        target = _rel([[1, 2, 0], [4, 5, 6]])
        assert min_edit_relation(source, target) == min_edit_relation(target, source)

    def test_duplicate_rows_handled(self):
        source = _rel([[1, 2, 3], [1, 2, 3]])
        target = _rel([[1, 2, 3], [1, 2, 4]])
        assert min_edit_relation(source, target) == 1

    def test_assignment_finds_optimal_matching(self):
        # Greedy nearest-row matching would pair the first rows badly; the
        # Hungarian assignment must find the cost-2 solution.
        source = _rel([[1, 1, 1], [5, 5, 5]])
        target = _rel([[5, 5, 6], [1, 1, 2]])
        assert min_edit_relation(source, target) == 2

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            min_edit_script(_rel([[1, 2, 3]]), _rel([[1]], columns=("a",)))

    def test_empty_relations(self):
        assert min_edit_relation(_rel([]), _rel([])) == 0
        assert min_edit_relation(_rel([]), _rel([[1, 2, 3]])) == 3


class TestEditScript:
    def test_script_operations_describe_changes(self):
        source = _rel([[1, 2, 3], [4, 5, 6]])
        target = _rel([[1, 2, 9], [7, 8, 9]])
        script = min_edit_script(source, target)
        assert script.cost == min_edit_relation(source, target)
        assert any(op.kind is EditKind.MODIFY for op in script.operations)
        assert all(isinstance(line, str) and line for line in script.describe())

    def test_modification_count(self):
        source = _rel([[1, 2, 3]])
        target = _rel([[9, 2, 9]])
        script = min_edit_script(source, target)
        assert script.modification_count == 2
        assert len(script) == 2

    def test_script_cost_matches_min_edit(self):
        source = _rel([[1, 2, 3], [4, 5, 6], [7, 8, 9]])
        target = _rel([[1, 2, 3], [4, 0, 0]])
        assert min_edit_script(source, target).cost == min_edit_relation(source, target)


class TestDatabaseEdit:
    def test_modified_relation_names(self, two_table_db):
        modified = two_table_db.copy()
        modified.relation("Emp").update_value(0, "salary", 10)
        assert modified_relation_names(two_table_db, modified) == ("Emp",)

    def test_min_edit_database_sums_changes(self, two_table_db):
        modified = two_table_db.copy()
        modified.relation("Emp").update_value(0, "salary", 10)
        modified.relation("Dept").update_value(1, "budget", 81)
        assert min_edit_database(two_table_db, modified) == 2

    def test_unchanged_database_cost_zero(self, two_table_db):
        assert min_edit_database(two_table_db, two_table_db.copy()) == 0
