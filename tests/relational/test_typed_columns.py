"""Typed compact column storage: differential and structural coverage.

The typed columns (`IntColumn`/`FloatColumn`/`StringColumn`/`BoolColumn`)
must be observationally identical to the boxed object-tuple path — same term
masks, same error masks, same error *messages* — while storing values in
narrow buffers with a boxed side table for anything the buffer cannot hold
(NULLs, huge integers, strings outside the dictionary). These tests pin:

* the differential contract (`ColumnarView` vs `ColumnarViewReference`) over
  a grid of operators and adversarial constants (NaN, ±2^63, 2^53±1, strings
  on numeric columns);
* the side-table regime: exact big integers beyond int64, derive patches
  escaping a narrowed buffer, strings appended outside the dictionary;
* engagement of the acceleration structures (zone maps, sorted term index)
  via `COLUMNAR_STATS`, and their agreement with the plain scan;
* copy-on-write identity sharing and pickling (lazy structures dropped).
"""

from __future__ import annotations

import math
import pickle

import pytest

from repro.relational.columnar import (
    COLUMNAR_STATS,
    BoolColumn,
    ColumnarView,
    ColumnarViewReference,
    FloatColumn,
    IntColumn,
    StringColumn,
    TypedColumn,
    build_typed_column,
    mask_positions,
)
from repro.relational.evaluator import JoinCache
from repro.relational.predicates import ComparisonOp, Term
from repro.relational.relation import Relation
from repro.relational.types import AttributeType

_SCALAR_OPS = [
    ComparisonOp.EQ,
    ComparisonOp.NE,
    ComparisonOp.LT,
    ComparisonOp.LE,
    ComparisonOp.GT,
    ComparisonOp.GE,
]


def _entry_signature(view, term):
    """(truth mask, error mask, error message) — the full observable state."""
    mask, error_mask, error = view._term_entry(term)
    return (mask, error_mask, None if error is None else str(error))


def _assert_views_agree(relation, terms):
    typed = ColumnarView(relation)
    reference = ColumnarViewReference(relation)
    for term in terms:
        assert _entry_signature(typed, term) == _entry_signature(reference, term), term
    # Cell access must agree too (side-table values come back exact).
    for name in typed.names:
        typed_column = typed.column(name)
        reference_column = reference.column(name)
        assert len(typed_column) == len(reference_column)
        for i in range(len(typed_column)):
            t, r = typed_column[i], reference_column[i]
            assert t == r and type(t) is type(r), (name, i, t, r)
    return typed, reference


def _terms_on(attribute, constants):
    terms = [Term(attribute, op, c) for op in _SCALAR_OPS for c in constants]
    terms.append(Term(attribute, ComparisonOp.IN, list(constants)[:3]))
    terms.append(Term(attribute, ComparisonOp.NOT_IN, list(constants)[:3]))
    return terms


# ------------------------------------------------------------- differential
class TestTypedDifferential:
    def test_int_column_with_overflow_side_table(self):
        values = [0, 1, -3, 7, 2**53, 2**53 + 1, 2**31, -(2**31), 55, 56, 57, 58, 59, 60]
        values += [None, 2**63, -(2**64)]  # NULL + two beyond-int64 specials
        relation = Relation.from_rows("T", ["v"], [[v] for v in values])
        constants = [0, 1, 7, 2**53, 2**53 + 1, 2**63, -(2**64), 1.5, 0.0, "IT", True, math.nan]
        typed, _ = _assert_views_agree(relation, _terms_on("v", constants))
        column = typed.column("v")
        assert isinstance(column, IntColumn)
        assert column.special_count == 3
        assert column[15] == 2**63  # exact, not a float round-trip
        assert column[16] == -(2**64)

    def test_two_pow_53_neighbours_stay_distinct(self):
        relation = Relation.from_rows("T", ["v"], [[2**53], [2**53 + 1], [2**53 - 1], [0]])
        typed = ColumnarView(relation)
        eq = Term("v", ComparisonOp.EQ, 2**53 + 1)
        assert mask_positions(typed.term_mask(eq)) == [1]
        # The float 2.0**53 equals the int 2**53 exactly — and only it.
        eq_float = Term("v", ComparisonOp.EQ, 2.0**53)
        assert mask_positions(typed.term_mask(eq_float)) == [0]

    def test_float_column_with_nulls(self):
        values = [0.0, -1.5, 3.25, 1e300, -0.0, 2.5, 100.25, 8.0, None, None]
        relation = Relation.from_rows("T", ["v"], [[v] for v in values])
        constants = [0.0, -1.5, 1e300, 3, "x", math.nan, math.inf, True]
        typed, _ = _assert_views_agree(relation, _terms_on("v", constants))
        assert isinstance(typed.column("v"), FloatColumn)
        assert typed.column("v").special_count == 2

    def test_string_column_dictionary_comparisons(self):
        values = ["IT", "Sales", "", "zz", "IT", "Service", "Ann", "Bo", None]
        relation = Relation.from_rows("T", ["v"], [[v] for v in values])
        constants = ["IT", "", "M", "zzz", "Aa", 5, 1.5, True, math.nan]
        typed, _ = _assert_views_agree(relation, _terms_on("v", constants))
        column = typed.column("v")
        assert isinstance(column, StringColumn)
        # The code dictionary is sorted, so code order is lexicographic order.
        assert list(column.dictionary) == sorted(set(v for v in values if v is not None))

    def test_bool_column_broadcast(self):
        values = [True, False, True, None, False, True]
        relation = Relation.from_rows("T", ["v"], [[v] for v in values])
        constants = [True, False, 0, 1, 0.5, "x"]
        typed, _ = _assert_views_agree(relation, _terms_on("v", constants))
        column = typed.column("v")
        assert isinstance(column, BoolColumn)
        assert mask_positions(column.truth_mask) == [0, 2, 5]

    def test_error_messages_match_interpreter_exactly(self, two_table_db):
        joined_cache = JoinCache()
        joined = joined_cache.join_for(two_table_db, ("Dept", "Emp"))
        typed = ColumnarView(joined.relation)
        reference = ColumnarViewReference(joined.relation)
        term = Term("Emp.salary", ComparisonOp.LT, "high")
        assert _entry_signature(typed, term) == _entry_signature(reference, term)
        _, error_mask, message = _entry_signature(typed, term)
        assert error_mask == typed.all_rows_mask
        assert message == "cannot compare 90 < 'high'"  # first row in row order


# --------------------------------------------------------------- structures
class TestAccelerationStructures:
    def _large_int_relation(self, rows=20_000):
        # Mostly-sorted data over several zone blocks: a selective ordering
        # constant leaves one boundary block, below the quarter-of-rows
        # threshold that escalates to the sorted index.
        return Relation.from_rows("T", ["v"], [[i * 3 + (i % 7)] for i in range(rows)])

    def test_zone_maps_engage_on_ordering_terms(self):
        relation = self._large_int_relation()
        typed = ColumnarView(relation)
        reference = ColumnarViewReference(relation)
        COLUMNAR_STATS.reset()
        term = Term("v", ComparisonOp.LT, 5000)
        assert typed.term_mask(term) == reference.term_mask(term)
        stats = COLUMNAR_STATS.snapshot()
        assert stats["zone_builds"] == 1
        assert stats["zone_block_fills"] + stats["zone_block_skips"] > 0
        # A second ordering term reuses the built zones.
        term2 = Term("v", ComparisonOp.GE, 20000)
        assert typed.term_mask(term2) == reference.term_mask(term2)
        assert COLUMNAR_STATS.zone_builds == 1

    def test_sorted_index_engages_on_equality(self):
        relation = self._large_int_relation()
        typed = ColumnarView(relation)
        reference = ColumnarViewReference(relation)
        COLUMNAR_STATS.reset()
        term = Term("v", ComparisonOp.EQ, 3 * 4000 + 4000 % 7)
        assert typed.term_mask(term) == reference.term_mask(term)
        assert COLUMNAR_STATS.index_builds == 1
        assert COLUMNAR_STATS.index_probes >= 1
        # Warm probes reuse the index.
        term2 = Term("v", ComparisonOp.EQ, -1)
        assert typed.term_mask(term2) == reference.term_mask(term2) == 0
        assert COLUMNAR_STATS.index_builds == 1

    def test_typed_masks_do_not_fall_back(self):
        relation = self._large_int_relation(1000)
        typed = ColumnarView(relation)
        COLUMNAR_STATS.reset()
        for op in _SCALAR_OPS:
            typed.term_mask(Term("v", op, 1500))
        assert COLUMNAR_STATS.typed_term_masks == len(_SCALAR_OPS)
        assert COLUMNAR_STATS.fallback_term_scans == 0


# --------------------------------------------------------------------- build
class TestBuildTypedColumn:
    def test_narrow_widths(self):
        assert build_typed_column(AttributeType.INTEGER, [0, 100, -100]).kind == "int8"
        assert build_typed_column(AttributeType.INTEGER, [0, 1000]).kind == "int16"
        assert build_typed_column(AttributeType.INTEGER, [0, 2**20]).kind == "int32"
        assert build_typed_column(AttributeType.INTEGER, [0, 2**40]).kind == "int64"
        assert build_typed_column(AttributeType.FLOAT, [0.5]).kind == "float64"

    def test_special_heavy_columns_stay_boxed(self):
        # More than a quarter NULLs → the side table would dominate.
        assert build_typed_column(AttributeType.INTEGER, [1, None, None, 4]) is None
        assert build_typed_column(AttributeType.INTEGER, []) is None
        column = build_typed_column(AttributeType.INTEGER, [1, 2, 3, 4, 5, 6, 7, None])
        assert column is not None and column.special_count == 1

    def test_beyond_int64_values_are_specials(self):
        column = build_typed_column(
            AttributeType.INTEGER, [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 2**63]
        )
        assert column.special_count == 1
        assert column[11] == 2**63


# ------------------------------------------------------------------- derive
class TestTypedDerive:
    def _view(self):
        rows = [[i, float(i) / 2, f"s{i % 5}", i % 2 == 0] for i in range(40)]
        relation = Relation.from_rows("T", ["i", "f", "s", "b"], rows)
        return relation, ColumnarView(relation)

    def test_untouched_columns_shared_by_reference(self):
        _, view = self._view()
        derived = view.derive({3: {0: 999}}, [], [])
        assert derived.column("f") is view.column("f")
        assert derived.column("s") is view.column("s")
        assert derived.column("i") is not view.column("i")
        assert derived.column("i")[3] == 999

    def test_derive_escapes_to_side_table(self):
        _, view = self._view()
        base_int = view.column("i")
        assert isinstance(base_int, IntColumn) and base_int.kind == "int8"
        derived = view.derive(
            {5: {0: 2**70, 2: "unseen-string"}}, [0], [[-7, 0.25, "s1", None]]
        )
        # Patch beyond the narrow int8 width lands in the side table, exact;
        # row 0 was removed so base position 5 is now 4, append is last.
        patched_int = derived.column("i")
        assert patched_int[4] == 2**70
        assert patched_int[-1] == -7
        patched_str = derived.column("s")
        assert patched_str[4] == "unseen-string"
        assert isinstance(patched_str, StringColumn)
        assert "unseen-string" not in patched_str.dictionary  # side table, not dict
        patched_bool = derived.column("b")
        assert patched_bool[-1] is None
        # The derived view must agree with a cold reference of the same rows.
        rows = [tuple(derived.column(name)[i] for name in derived.names) for i in range(len(patched_int))]
        rebuilt = ColumnarViewReference(Relation.from_rows("T", ["i", "f", "s", "b"], rows))
        for term in _terms_on("i", [0, -7, 2**70, 1.5]):
            assert _entry_signature(derived, term) == _entry_signature(rebuilt, term)

    def test_derived_masks_match_cold_masks(self):
        _, view = self._view()
        term = Term("i", ComparisonOp.GE, 10)
        warm = view.term_mask(term)
        derived = view.derive({12: {0: 3}}, [39], [[100, 0.0, "s0", True]])
        derived_mask = derived.term_mask(term)
        fresh = ColumnarView(
            Relation.from_rows(
                "T",
                ["i", "f", "s", "b"],
                [
                    tuple(derived.column(n)[i] for n in derived.names)
                    for i in range(derived.row_count)
                ],
            )
        )
        assert derived_mask == fresh.term_mask(term)
        assert warm == view.term_mask(term)  # base view untouched


# ----------------------------------------------------------------- pickling
class TestTypedPickling:
    def test_roundtrip_drops_lazy_structures(self):
        relation = Relation.from_rows("T", ["v"], [[i] for i in range(600)])
        view = ColumnarView(relation)
        term = Term("v", ComparisonOp.EQ, 5)
        mask = view.term_mask(term)  # builds the sorted index
        column = view.column("v")
        assert isinstance(column, TypedColumn)
        restored = pickle.loads(pickle.dumps(view))
        restored_column = restored.column("v")
        assert restored_column._order is None  # lazy index not shipped
        assert restored_column._zones is None
        assert restored.cached_term_count == 0  # mask cache dropped
        assert restored.term_mask(term) == mask
        assert list(restored_column) == list(column)

    def test_snapshot_column_kinds_survive(self):
        values = [1, 2, None, 2**63, 5, 6, 7, 8, 9, 10, 11, 12]
        relation = Relation.from_rows("T", ["v"], [[v] for v in values])
        view = ColumnarView(relation)
        restored = pickle.loads(pickle.dumps(view))
        assert restored.column("v").kind == view.column("v").kind
        assert restored.column("v")[3] == 2**63


# ------------------------------------------------------------------- memory
class TestMemoryReports:
    def test_typed_view_is_smaller_than_object_view(self):
        rows = [[i, float(i), f"name{i % 8}", i % 3 == 0] for i in range(2000)]
        relation = Relation.from_rows("T", ["i", "f", "s", "b"], rows)
        typed_report = ColumnarView(relation).memory_report()
        object_report = ColumnarViewReference(relation).memory_report()
        assert typed_report["row_count"] == object_report["row_count"] == 2000
        assert typed_report["total_bytes"] * 4 <= object_report["total_bytes"]
        kinds = {info["kind"] for info in typed_report["columns"].values()}
        assert kinds == {"int16", "float64", "dict-string", "bitmap-bool"}

    def test_join_cache_memory_report(self, two_table_db):
        cache = JoinCache()
        joined = cache.join_for(two_table_db, ("Dept", "Emp"))
        assert joined.columnar_memory_report() is None  # never forces a build
        empty = cache.memory_report()
        assert empty["view_count"] == 0 and empty["bytes_per_joined_row"] is None
        joined.columnar()
        report = cache.memory_report()
        assert report["view_count"] == 1
        assert report["joined_rows"] == len(joined)
        assert report["views"][0]["signature"] == ["Dept", "Emp"]
        assert report["total_bytes"] > 0
        assert report["bytes_per_joined_row"] == pytest.approx(
            report["total_bytes"] / len(joined)
        )
