"""Unit tests for database instances."""

import pytest

from repro.exceptions import SchemaError
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema, ForeignKey


class TestDatabaseConstruction:
    def test_from_tables(self, two_table_db):
        assert set(two_table_db.table_names) == {"Dept", "Emp"}
        assert len(two_table_db.relation("Emp")) == 5
        assert two_table_db.total_tuples() == 8

    def test_missing_relations_created_empty(self, two_table_db):
        schema = two_table_db.schema
        database = Database(schema)
        assert len(database.relation("Emp")) == 0

    def test_relation_not_in_schema_rejected(self, two_table_db):
        extra = Relation.from_rows("Extra", ["x"], [[1]])
        with pytest.raises(SchemaError):
            Database(two_table_db.schema, {"Extra": extra})

    def test_relation_schema_mismatch_rejected(self, two_table_db):
        wrong = Relation.from_rows("Emp", ["only_one_column"], [[1]])
        with pytest.raises(SchemaError):
            Database(two_table_db.schema, {"Emp": wrong})


class TestDatabaseAccess:
    def test_getitem_and_contains(self, two_table_db):
        assert two_table_db["Dept"] is two_table_db.relation("Dept")
        assert "Dept" in two_table_db
        assert "Nope" not in two_table_db
        with pytest.raises(SchemaError):
            two_table_db.relation("Nope")

    def test_iteration(self, two_table_db):
        assert {relation.name for relation in two_table_db} == {"Dept", "Emp"}

    def test_pretty_contains_tables(self, two_table_db):
        text = two_table_db.pretty()
        assert "Dept" in text and "Emp" in text


class TestDatabaseCopy:
    def test_copy_isolates_data(self, two_table_db):
        clone = two_table_db.copy()
        clone.relation("Emp").update_value(0, "salary", 999)
        assert two_table_db.relation("Emp").tuple_by_id(0).values[3] == 90
        assert clone.relation("Emp").tuple_by_id(0).values[3] == 999

    def test_copy_shares_schema(self, two_table_db):
        clone = two_table_db.copy()
        assert clone.schema is two_table_db.schema
