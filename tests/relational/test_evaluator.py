"""Unit tests for SPJ/SPJU evaluation, result schemas and the join cache."""

import pytest

from repro.exceptions import SchemaError, UnsupportedQueryError
from repro.relational.database import Database
from repro.relational.evaluator import (
    JoinCache,
    evaluate,
    evaluate_on_join,
    result_fingerprint,
    result_schema,
    results_equal,
)
from repro.relational.join import foreign_key_join, full_join
from repro.relational.predicates import ComparisonOp, Conjunct, DNFPredicate, Term
from repro.relational.query import SPJQuery, SPJUQuery


class TestSingleTableEvaluation:
    def test_selection_and_projection(self, two_table_db, salary_query):
        result = evaluate(salary_query, two_table_db)
        assert sorted(row[0] for row in result.rows()) == ["Ann", "Cy", "Ed"]
        assert result.schema.attribute_names == ("Emp.ename",)

    def test_true_predicate_selects_all(self, two_table_db):
        query = SPJQuery(["Emp"], ["Emp.eid"])
        assert len(evaluate(query, two_table_db)) == 5

    def test_null_values_never_selected(self, two_table_db):
        query = SPJQuery(
            ["Emp"], ["Emp.ename"],
            DNFPredicate.from_terms([Term("Emp.senior", ComparisonOp.EQ, True)]),
        )
        assert sorted(r[0] for r in evaluate(query, two_table_db).rows()) == ["Ann", "Cy"]

    def test_bag_semantics_preserves_duplicates(self, two_table_db):
        query = SPJQuery(["Dept"], ["Dept.budget"])
        database = two_table_db.copy()
        database.relation("Dept").insert([4, "Extra", 100])
        result = evaluate(query, database)
        assert sorted(r[0] for r in result.rows()) == [60, 80, 100, 100]

    def test_distinct_removes_duplicates(self, two_table_db):
        database = two_table_db.copy()
        database.relation("Dept").insert([4, "Extra", 100])
        query = SPJQuery(["Dept"], ["Dept.budget"], distinct=True)
        assert len(evaluate(query, database)) == 3


class TestJoinEvaluation:
    def test_join_query(self, two_table_db, join_query):
        result = evaluate(join_query, two_table_db)
        names = sorted(row[0] for row in result.rows())
        assert names == ["Ann", "Bo", "Cy", "Ed"]

    def test_disjunctive_predicate(self, two_table_db):
        predicate = DNFPredicate(
            (
                Conjunct((Term("Dept.dname", ComparisonOp.EQ, "Service"),)),
                Conjunct((Term("Emp.salary", ComparisonOp.GE, 90),)),
            )
        )
        query = SPJQuery(["Emp", "Dept"], ["Emp.ename"], predicate)
        assert sorted(r[0] for r in evaluate(query, two_table_db).rows()) == ["Ann", "Di"]

    def test_evaluate_on_superset_join(self, two_table_db, salary_query):
        joined = full_join(two_table_db)
        result = evaluate_on_join(salary_query, joined, two_table_db)
        assert sorted(r[0] for r in result.rows()) == ["Ann", "Cy", "Ed"]

    def test_evaluate_on_join_missing_table(self, two_table_db, join_query):
        joined = foreign_key_join(two_table_db, ["Emp"])
        with pytest.raises(UnsupportedQueryError):
            evaluate_on_join(join_query, joined, two_table_db)


class TestQueryValidation:
    def test_unknown_projection_column(self, two_table_db):
        query = SPJQuery(["Emp"], ["Emp.nope"])
        with pytest.raises(SchemaError):
            evaluate(query, two_table_db)

    def test_unknown_selection_column(self, two_table_db):
        query = SPJQuery(
            ["Emp"], ["Emp.ename"],
            DNFPredicate.from_terms([Term("Emp.nope", ComparisonOp.EQ, 1)]),
        )
        with pytest.raises(SchemaError):
            evaluate(query, two_table_db)

    def test_disconnected_join_rejected(self):
        database = Database.from_tables({"A": (["x"], [[1]]), "B": (["y"], [[1]])})
        query = SPJQuery(["A", "B"], ["A.x"])
        with pytest.raises(UnsupportedQueryError):
            evaluate(query, database)


class TestResultHelpers:
    def test_result_schema_types(self, two_table_db, join_query):
        schema = result_schema(join_query, two_table_db)
        assert schema.attribute("Emp.ename").type.value == "string"

    def test_results_equal_modes(self, two_table_db):
        query = SPJQuery(["Dept"], ["Dept.budget"])
        left = evaluate(query, two_table_db)
        right = evaluate(query, two_table_db)
        assert results_equal(left, right)
        assert results_equal(left, right, set_semantics=True)

    def test_result_fingerprint_distinguishes_multiplicity(self, two_table_db):
        database = two_table_db.copy()
        query = SPJQuery(["Dept"], ["Dept.budget"])
        before = result_fingerprint(evaluate(query, database))
        database.relation("Dept").insert([4, "Extra", 100])
        after = result_fingerprint(evaluate(query, database))
        assert before != after

    def test_result_fingerprint_set_semantics(self, two_table_db):
        database = two_table_db.copy()
        query = SPJQuery(["Dept"], ["Dept.budget"])
        before = result_fingerprint(evaluate(query, database), set_semantics=True)
        database.relation("Dept").insert([4, "Extra", 100])
        after = result_fingerprint(evaluate(query, database), set_semantics=True)
        assert before == after  # 100 already existed


class TestUnionQueries:
    def test_union_all_concatenates(self, two_table_db):
        branch = SPJQuery(["Dept"], ["Dept.dname"])
        union = SPJUQuery([branch, branch])
        assert len(evaluate(union, two_table_db)) == 6

    def test_union_distinct(self, two_table_db):
        branch = SPJQuery(["Dept"], ["Dept.dname"])
        union = SPJUQuery([branch, branch], distinct=True)
        assert len(evaluate(union, two_table_db)) == 3

    def test_union_arity_mismatch_rejected(self, two_table_db):
        with pytest.raises(UnsupportedQueryError):
            SPJUQuery(
                [SPJQuery(["Dept"], ["Dept.dname"]), SPJQuery(["Dept"], ["Dept.dname", "Dept.budget"])]
            )


class TestJoinCache:
    def test_cache_reuses_join(self, two_table_db, join_query, salary_query):
        cache = JoinCache()
        first = cache.join_for(two_table_db, join_query.tables)
        second = cache.join_for(two_table_db, reversed(join_query.tables))
        assert first is second
        result = cache.evaluate(join_query, two_table_db)
        assert len(result) == 4
        cache.clear()
        assert cache.join_for(two_table_db, join_query.tables) is not first
