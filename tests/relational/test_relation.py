"""Unit tests for tuples and bag-semantics relations."""

import pytest

from repro.exceptions import SchemaError, TypeMismatchError
from repro.relational.relation import Relation, Tuple


class TestTuple:
    def test_replace_keeps_id(self):
        row = Tuple([1, 2, 3], tuple_id=7)
        updated = row.replace(1, 9)
        assert updated.values == (1, 9, 3)
        assert updated.tuple_id == 7
        assert row.values == (1, 2, 3)  # original untouched

    def test_equality_ignores_id_and_int_float(self):
        assert Tuple([1, "a"], 1) == Tuple([1.0, "a"], 99)
        assert Tuple([1], 1) != Tuple([2], 1)

    def test_hash_consistent_with_equality(self):
        assert hash(Tuple([1, "a"])) == hash(Tuple([1.0, "a"]))

    def test_project_and_iteration(self):
        row = Tuple([10, 20, 30])
        assert row.project([2, 0]) == (30, 10)
        assert list(row) == [10, 20, 30]
        assert row[1] == 20
        assert len(row) == 3


class TestRelationConstruction:
    def test_from_rows_infers_types(self):
        relation = Relation.from_rows("T", ["a", "b"], [[1, "x"], [2, "y"]])
        assert relation.schema.attribute("a").type.value == "integer"
        assert relation.schema.attribute("b").type.value == "string"
        assert len(relation) == 2

    def test_from_rows_rejects_ragged_rows(self):
        with pytest.raises(SchemaError):
            Relation.from_rows("T", ["a", "b"], [[1]])

    def test_from_dicts(self):
        relation = Relation.from_dicts("T", [{"a": 1, "b": "x"}, {"a": 2, "b": None}])
        assert relation.rows() == [(1, "x"), (2, None)]

    def test_from_dicts_requires_rows_or_columns(self):
        with pytest.raises(SchemaError):
            Relation.from_dicts("T", [])

    def test_insert_type_checked(self):
        relation = Relation.from_rows("T", ["a"], [[1]])
        with pytest.raises(TypeMismatchError):
            relation.insert(["not an int"])

    def test_insert_mapping(self):
        relation = Relation.from_rows("T", ["a", "b"], [[1, 2]])
        relation.insert({"b": 4, "a": 3})
        assert relation.rows()[-1] == (3, 4)

    def test_copy_is_deep(self):
        relation = Relation.from_rows("T", ["a"], [[1], [2]])
        clone = relation.copy()
        clone.update_value(0, "a", 99)
        assert relation.rows() == [(1,), (2,)]
        assert clone.rows() == [(99,), (2,)]

    def test_empty_like(self):
        relation = Relation.from_rows("T", ["a"], [[1]])
        assert len(relation.empty_like()) == 0


class TestRelationModification:
    def test_update_value(self):
        relation = Relation.from_rows("T", ["a", "b"], [[1, 2], [3, 4]])
        relation.update_value(1, "b", 9)
        assert relation.tuple_by_id(1).values == (3, 9)

    def test_update_unknown_tuple(self):
        relation = Relation.from_rows("T", ["a"], [[1]])
        with pytest.raises(SchemaError):
            relation.update_value(5, "a", 2)

    def test_delete(self):
        relation = Relation.from_rows("T", ["a"], [[1], [2]])
        removed = relation.delete(0)
        assert removed.values == (1,)
        assert len(relation) == 1
        with pytest.raises(SchemaError):
            relation.delete(0)

    def test_replace_tuple(self):
        relation = Relation.from_rows("T", ["a", "b"], [[1, 2]])
        relation.replace_tuple(0, [7, 8])
        assert relation.tuple_by_id(0).values == (7, 8)
        with pytest.raises(SchemaError):
            relation.replace_tuple(0, [1])

    def test_tuple_ids_are_stable(self):
        relation = Relation.from_rows("T", ["a"], [[1], [2], [3]])
        relation.delete(1)
        inserted = relation.insert([4])
        assert inserted.tuple_id == 3  # ids are never reused


class TestRelationAccessors:
    def test_column_and_active_domain(self):
        relation = Relation.from_rows("T", ["a", "b"], [[1, "x"], [2, "x"], [1, None]])
        assert relation.column("a") == [1, 2, 1]
        assert relation.active_domain("a") == [1, 2]
        assert relation.active_domain("b") == ["x"]

    def test_value_of(self):
        relation = Relation.from_rows("T", ["a", "b"], [[1, "x"]])
        assert relation.value_of(relation.tuples[0], "b") == "x"

    def test_to_dicts(self):
        relation = Relation.from_rows("T", ["a"], [[1]])
        assert relation.to_dicts() == [{"a": 1}]

    def test_select(self):
        relation = Relation.from_rows("T", ["a"], [[1], [2], [3]])
        selected = relation.select(lambda t: t.values[0] > 1)
        assert selected.rows() == [(2,), (3,)]
        assert len(relation) == 3

    def test_contains(self):
        relation = Relation.from_rows("T", ["a", "b"], [[1, "x"]])
        assert [1, "x"] in relation
        assert [1.0, "x"] in relation
        assert [2, "x"] not in relation

    def test_pretty_truncates(self):
        relation = Relation.from_rows("T", ["a"], [[i] for i in range(30)])
        text = relation.pretty(max_rows=5)
        assert "more rows" in text
        assert text.startswith("T")


class TestBagAndSetSemantics:
    def test_bag_equal_respects_duplicates(self):
        left = Relation.from_rows("T", ["a"], [[1], [1], [2]])
        right = Relation.from_rows("T", ["a"], [[1], [2], [1]])
        other = Relation.from_rows("T", ["a"], [[1], [2]])
        assert left.bag_equal(right)
        assert not left.bag_equal(other)

    def test_set_equal_ignores_duplicates(self):
        left = Relation.from_rows("T", ["a"], [[1], [1], [2]])
        other = Relation.from_rows("T", ["a"], [[1], [2]])
        assert left.set_equal(other)

    def test_int_float_rows_compare_equal(self):
        left = Relation.from_rows("T", ["a"], [[1]])
        right = Relation.from_rows("T", ["a"], [[1.0]])
        assert left.bag_equal(right)
