"""Unit tests for the SPJ SQL parser."""

import pytest

from repro.exceptions import SQLSyntaxError
from repro.relational.evaluator import evaluate
from repro.relational.predicates import ComparisonOp
from repro.sql.parser import parse_query


class TestBasicParsing:
    def test_simple_selection(self, two_table_db):
        query = parse_query("SELECT ename FROM Emp WHERE salary > 60", two_table_db.schema)
        assert query.tables == ("Emp",)
        assert query.projection == ("Emp.ename",)
        assert query.predicate.terms()[0].op is ComparisonOp.GT
        assert len(evaluate(query, two_table_db)) == 3

    def test_distinct(self, two_table_db):
        query = parse_query("SELECT DISTINCT did FROM Emp", two_table_db.schema)
        assert query.distinct
        assert len(evaluate(query, two_table_db)) == 3

    def test_star_expansion_requires_schema(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT * FROM Emp")

    def test_star_expansion(self, two_table_db):
        query = parse_query("SELECT * FROM Emp", two_table_db.schema)
        assert len(query.projection) == 5

    def test_trailing_semicolon_and_comment(self, two_table_db):
        query = parse_query("SELECT ename FROM Emp; -- done", two_table_db.schema)
        assert query.projection == ("Emp.ename",)

    def test_trailing_garbage_rejected(self, two_table_db):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT ename FROM Emp garbage garbage", two_table_db.schema)


class TestPredicates:
    def test_and_or_precedence(self, two_table_db):
        query = parse_query(
            "SELECT ename FROM Emp WHERE salary > 60 AND senior = TRUE OR salary < 45",
            two_table_db.schema,
        )
        # DNF: (salary>60 AND senior) OR (salary<45)
        assert len(query.predicate.conjuncts) == 2

    def test_parentheses_distribute(self, two_table_db):
        query = parse_query(
            "SELECT ename FROM Emp WHERE senior = TRUE AND (salary > 80 OR salary < 50)",
            two_table_db.schema,
        )
        assert len(query.predicate.conjuncts) == 2
        assert all(len(c.terms) == 2 for c in query.predicate.conjuncts)

    def test_in_and_not_in(self, two_table_db):
        query = parse_query(
            "SELECT ename FROM Emp WHERE did IN (1, 3) AND ename NOT IN ('Zz')",
            two_table_db.schema,
        )
        ops = {t.op for t in query.predicate.terms()}
        assert ComparisonOp.IN in ops and ComparisonOp.NOT_IN in ops
        assert sorted(r[0] for r in evaluate(query, two_table_db).rows()) == ["Ann", "Cy", "Di"]

    def test_literal_types(self, two_table_db):
        query = parse_query(
            "SELECT ename FROM Emp WHERE salary >= 60.5 AND senior = TRUE",
            two_table_db.schema,
        )
        constants = [t.constant for t in query.predicate.terms()]
        assert 60.5 in constants and True in constants

    def test_unsupported_operator_for_columns(self, two_table_db):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT ename FROM Emp WHERE salary < did + 1", two_table_db.schema)


class TestJoins:
    def test_explicit_inner_join(self, two_table_db):
        query = parse_query(
            "SELECT Emp.ename, Dept.dname FROM Emp INNER JOIN Dept ON Emp.did = Dept.did "
            "WHERE Dept.budget >= 80",
            two_table_db.schema,
        )
        assert set(query.tables) == {"Emp", "Dept"}
        assert len(evaluate(query, two_table_db)) == 4

    def test_join_keyword_without_inner(self, two_table_db):
        query = parse_query(
            "SELECT Emp.ename FROM Emp JOIN Dept ON Emp.did = Dept.did",
            two_table_db.schema,
        )
        assert len(evaluate(query, two_table_db)) == 5

    def test_comma_join_with_where_condition(self, two_table_db):
        query = parse_query(
            "SELECT Emp.ename FROM Emp, Dept WHERE Emp.did = Dept.did AND Dept.dname = 'IT'",
            two_table_db.schema,
        )
        assert sorted(r[0] for r in evaluate(query, two_table_db).rows()) == ["Ann", "Cy"]

    def test_non_equality_join_condition_rejected(self, two_table_db):
        with pytest.raises(SQLSyntaxError):
            parse_query(
                "SELECT Emp.ename FROM Emp INNER JOIN Dept ON Emp.did < Dept.did",
                two_table_db.schema,
            )


class TestColumnResolution:
    def test_unqualified_column_resolved(self, two_table_db):
        query = parse_query(
            "SELECT ename FROM Emp INNER JOIN Dept ON Emp.did = Dept.did WHERE budget > 70",
            two_table_db.schema,
        )
        assert query.predicate.terms()[0].attribute == "Dept.budget"

    def test_ambiguous_column_rejected(self, two_table_db):
        with pytest.raises(SQLSyntaxError):
            parse_query(
                "SELECT did FROM Emp INNER JOIN Dept ON Emp.did = Dept.did",
                two_table_db.schema,
            )

    def test_unknown_column_rejected(self, two_table_db):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT nope FROM Emp", two_table_db.schema)

    def test_multi_table_unqualified_without_schema_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT a FROM T1, T2")
