"""Unit tests for the SQL-pushdown compiler, mirror and round programs."""

from __future__ import annotations

import pytest

from repro.core.config import BACKEND_CHOICES, QFEConfig, backend_name
from repro.core.execution_backend import (
    ProcessPoolBackend,
    SerialBackend,
    SqlPushdownBackend,
    create_backend,
)
from repro.relational.database import Database
from repro.relational.delta import TupleDelta
from repro.relational.evaluator import evaluate
from repro.relational.predicates import ComparisonOp, DNFPredicate, Term
from repro.relational.query import SPJQuery
from repro.relational.types import AttributeType
from repro.sql.pushdown import (
    PushdownExecutionError,
    PushdownUnsupportedError,
    SqliteMirror,
    compile_round,
    compile_term,
)

BIG = 2**53


def _db() -> Database:
    return Database.from_tables(
        {"T": (["i", "f", "s"], [[1, 1.5, "a"], [2, 2.5, "b"], [3, None, "a"]])}
    )


def _count(mirror, table="T") -> int:
    return mirror._connection.execute(f'SELECT COUNT(*) FROM "{table}"').fetchone()[0]


class TestCompileTerm:
    def test_huge_int_constants_stay_exact(self):
        sql = compile_term(Term("T.i", ComparisonOp.EQ, BIG + 1), AttributeType.INTEGER)
        assert str(BIG + 1) in sql

    def test_int_beyond_64_bits_is_refused(self):
        for constant in (2**63, -(2**63) - 1):
            with pytest.raises(PushdownUnsupportedError):
                compile_term(Term("T.i", ComparisonOp.EQ, constant), AttributeType.INTEGER)
            with pytest.raises(PushdownUnsupportedError):
                compile_term(
                    Term("T.i", ComparisonOp.IN, (1, constant)), AttributeType.INTEGER
                )

    def test_bool_constant_compiles_against_numeric_columns(self):
        sql = compile_term(Term("T.i", ComparisonOp.EQ, True), AttributeType.INTEGER)
        assert "TRUE" in sql or "1" in sql

    def test_cross_type_equality_folds_to_false(self):
        assert compile_term(Term("T.i", ComparisonOp.EQ, "1"), AttributeType.INTEGER) == "0"
        assert compile_term(Term("T.s", ComparisonOp.EQ, 1), AttributeType.STRING) == "0"

    def test_cross_type_ordering_is_refused(self):
        with pytest.raises(PushdownUnsupportedError):
            compile_term(Term("T.s", ComparisonOp.LT, 1), AttributeType.STRING)


class TestMirror:
    def test_rejects_reserved_column_name(self):
        database = Database.from_tables({"T": (["_qfe_id"], [[1]])})
        with pytest.raises(PushdownUnsupportedError):
            SqliteMirror(database)

    def test_attempt_rolls_back_between_attempts(self):
        with SqliteMirror(_db()) as mirror:
            delta = TupleDelta()
            delta.record_delete("T", 0)
            delta.record_insert("T", 100, (9, 9.0, "z"))
            with mirror.attempt(delta) as cursor:
                rows = cursor.execute('SELECT COUNT(*) FROM "T"').fetchone()[0]
                assert rows == 3  # one delete, one insert
                present = {
                    r[0] for r in cursor.execute('SELECT "_qfe_id" FROM "T"')
                }
                assert present == {1, 2, 100}
            # Outside the SAVEPOINT the base state is back, byte for byte.
            assert _count(mirror) == 3
            base_ids = {
                r[0] for r in mirror._connection.execute('SELECT "_qfe_id" FROM "T"')
            }
            assert base_ids == {0, 1, 2}

    def test_attempt_rolls_back_even_when_the_body_raises(self):
        with SqliteMirror(_db()) as mirror:
            delta = TupleDelta()
            delta.record_delete("T", 0)
            with pytest.raises(PushdownExecutionError):
                with mirror.attempt(delta) as cursor:
                    cursor.execute("SELECT definitely_not_a_column FROM T")
            assert _count(mirror) == 3

    def test_update_rewrites_in_place_by_tuple_id(self):
        with SqliteMirror(_db()) as mirror:
            delta = TupleDelta()
            delta.record_update("T", 1, (42, 0.5, "q"))
            with mirror.attempt(delta) as cursor:
                row = cursor.execute(
                    'SELECT "i", "f", "s" FROM "T" WHERE "_qfe_id" = 1'
                ).fetchone()
                assert row == (42, 0.5, "q")

    def test_oversized_delta_integer_fails_the_attempt_not_the_mirror(self):
        with SqliteMirror(_db()) as mirror:
            delta = TupleDelta()
            delta.record_insert("T", 100, (2**63, 0.0, "z"))
            with pytest.raises(PushdownExecutionError):
                with mirror.attempt(delta):
                    pass
            # The mirror survives and the base is intact for the next attempt.
            assert _count(mirror) == 3


class TestRoundProgram:
    def _queries(self):
        return [
            SPJQuery(
                ["T"], ["T.i"],
                DNFPredicate.from_terms([Term("T.f", ComparisonOp.GT, 1.0)]),
            ),
            SPJQuery(
                ["T"], ["T.i"],
                DNFPredicate.from_terms([Term("T.s", ComparisonOp.EQ, "a")]),
            ),
            SPJQuery(
                ["T"], ["T.s"],
                DNFPredicate.from_terms([Term("T.i", ComparisonOp.GE, 1)]),
                distinct=True,
            ),
        ]

    def test_queries_sharing_a_signature_share_one_statement(self):
        program = compile_round(self._queries(), _db())
        assert len(program.statements) == 1
        assert program.query_count == 3

    def test_fingerprint_equality_matches_bag_equality(self):
        database = _db()
        queries = self._queries()
        program = compile_round(queries, database)
        with SqliteMirror(database) as mirror:
            with mirror.attempt(TupleDelta()) as cursor:
                fingerprints = program.fingerprints(cursor)
        results = [evaluate(q, database) for q in queries]
        for a in range(len(queries)):
            for b in range(len(queries)):
                same_rows = results[a].bag_equal(results[b])
                assert (fingerprints[a] == fingerprints[b]) == same_rows, (a, b)

    def test_distinct_query_fingerprints_collapse_duplicates(self):
        database = _db()
        plain = SPJQuery(["T"], ["T.s"])
        distinct = SPJQuery(["T"], ["T.s"], distinct=True)
        program = compile_round([plain, distinct], database)
        with SqliteMirror(database) as mirror:
            with mirror.attempt(TupleDelta()) as cursor:
                fp_plain, fp_distinct = program.fingerprints(cursor)
        assert fp_plain != fp_distinct  # "a" appears twice vs once
        assert dict(fp_distinct)[("a",)] == 1

    def test_uncompilable_predicate_refuses_the_whole_round(self):
        bad = SPJQuery(
            ["T"], ["T.i"],
            DNFPredicate.from_terms([Term("T.s", ComparisonOp.LT, 5)]),
        )
        with pytest.raises(PushdownUnsupportedError):
            compile_round([bad], _db())


class TestBackendFactory:
    def test_each_name_maps_to_its_backend(self):
        assert isinstance(create_backend(0, "serial"), SerialBackend)
        assert isinstance(create_backend(0, "sql"), SqlPushdownBackend)
        pool = create_backend(0, "process")
        try:
            assert isinstance(pool, ProcessPoolBackend)
        finally:
            pool.close()

    def test_auto_preserves_the_historical_worker_rule(self):
        assert isinstance(create_backend(0, "auto"), SerialBackend)
        assert isinstance(create_backend(None, "auto"), SerialBackend)
        pool = create_backend(3, "auto")
        try:
            assert isinstance(pool, ProcessPoolBackend)
        finally:
            pool.close()

    def test_unknown_name_is_rejected_with_the_choices(self):
        with pytest.raises(ValueError, match="serial"):
            create_backend(0, "bogus")
        with pytest.raises(ValueError):
            backend_name("SQLite")
        assert backend_name(" SQL ") == "sql"
        assert set(BACKEND_CHOICES) == {"auto", "serial", "process", "sql", "warm"}

    def test_config_validates_backend_at_construction(self):
        assert QFEConfig(backend="sql").backend == "sql"
        with pytest.raises(ValueError, match="backend"):
            QFEConfig(backend="bogus")

    def test_backends_are_context_managers(self):
        with create_backend(0, "sql") as backend:
            assert backend.name == "sql-pushdown"
