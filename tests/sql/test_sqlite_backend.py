"""Unit tests for the SQLite cross-validation backend."""

import pytest

from repro.exceptions import EvaluationError
from repro.relational.evaluator import evaluate
from repro.relational.predicates import ComparisonOp, DNFPredicate, Term
from repro.relational.query import SPJQuery, SPJUQuery
from repro.sql.sqlite_backend import SQLiteBackend, cross_check
from repro.workloads import scientific_queries


class TestSQLiteBackend:
    def test_execute_simple_query(self, two_table_db, salary_query):
        with SQLiteBackend(two_table_db) as backend:
            result = backend.execute(salary_query)
        assert sorted(r[0] for r in result.rows()) == ["Ann", "Cy", "Ed"]

    def test_execute_join_query(self, two_table_db, join_query):
        with SQLiteBackend(two_table_db) as backend:
            result = backend.execute(join_query)
        assert len(result) == 4

    def test_boolean_round_trip(self, two_table_db):
        query = SPJQuery(
            ["Emp"], ["Emp.senior"],
            DNFPredicate.from_terms([Term("Emp.senior", ComparisonOp.EQ, True)]),
        )
        with SQLiteBackend(two_table_db) as backend:
            values = {row[0] for row in backend.execute(query).rows()}
        assert values == {True}

    def test_union_execution(self, two_table_db):
        branch = SPJQuery(["Dept"], ["Dept.dname"])
        union = SPJUQuery([branch, branch])
        with SQLiteBackend(two_table_db) as backend:
            assert len(backend.execute(union)) == 6

    def test_invalid_sql_raises(self, two_table_db):
        with SQLiteBackend(two_table_db) as backend:
            with pytest.raises(EvaluationError):
                backend.execute_sql("SELECT definitely_not_a_column FROM Emp")

    def test_raw_sql(self, two_table_db):
        with SQLiteBackend(two_table_db) as backend:
            rows = backend.execute_sql('SELECT COUNT(*) FROM "Emp"')
        assert rows == [(5,)]


class TestCrossCheck:
    def test_cross_check_agrees_on_fixtures(self, two_table_db, salary_query, join_query):
        assert cross_check(salary_query, two_table_db)
        assert cross_check(join_query, two_table_db)

    def test_cross_check_workload_queries(self, scientific_db):
        # One mirror connection for the whole run, released deterministically.
        with SQLiteBackend(scientific_db) as backend:
            for query in scientific_queries().values():
                assert cross_check(query, scientific_db, backend=backend)

    def test_our_evaluator_matches_sqlite_with_nulls(self, two_table_db):
        query = SPJQuery(
            ["Emp"], ["Emp.ename"],
            DNFPredicate.from_terms([Term("Emp.senior", ComparisonOp.EQ, False)]),
        )
        ours = evaluate(query, two_table_db)
        with SQLiteBackend(two_table_db) as backend:
            theirs = backend.execute(query)
        assert ours.bag_equal(theirs)
