"""Unit tests for SQL rendering (and parse → render → parse round trips)."""

from repro.relational.predicates import ComparisonOp, Conjunct, DNFPredicate, Term
from repro.relational.query import SPJQuery, SPJUQuery
from repro.sql.parser import parse_query
from repro.sql.render import render_predicate, render_query, render_union, render_value


class TestRenderValue:
    def test_literals(self):
        assert render_value(None) == "NULL"
        assert render_value(True) == "TRUE"
        assert render_value(False) == "FALSE"
        assert render_value(3) == "3"
        assert render_value(3.5) == "3.5"
        assert render_value("o'clock") == "'o''clock'"

    def test_floats_render_with_round_trip_precision(self):
        # Regression: "{:g}" kept 6 significant digits, so 0.1234567 rendered
        # as 0.123457 and the SQL disagreed with the in-memory evaluator.
        for value in (0.1234567, 1.0000001, 123456.789012345, 1e-7, -2.5e300):
            assert float(render_value(value)) == value, value
        assert render_value(0.1234567) == "0.1234567"

    def test_large_integers_render_exactly(self):
        assert render_value(2**53 + 1) == str(2**53 + 1)

    def test_infinities_render_as_sqlite_overflow_literals(self):
        assert render_value(float("inf")) == "9e999"
        assert render_value(float("-inf")) == "-9e999"


class TestFloatPrecisionOracleAgreement:
    """The rendered SQL must select exactly what the evaluator selects."""

    def _database(self):
        from repro.relational.database import Database

        rows = [[i, v] for i, v in enumerate(
            [0.1234567, 0.123457, 0.12345670000000001, 1.0000001, 1.0,
             123456.789012345, 123456.789012, 1e-7, 0.0]
        )]
        return Database.from_tables({"T": (["id", "x"], rows)})

    def test_equality_and_threshold_constants_agree_with_sqlite(self):
        from repro.relational.evaluator import evaluate
        from repro.sql.sqlite_backend import SQLiteBackend

        database = self._database()
        constants = [0.1234567, 0.12345670000000001, 1.0000001, 123456.789012345, 1e-7]
        ops = [ComparisonOp.EQ, ComparisonOp.NE, ComparisonOp.LT, ComparisonOp.GE]
        with SQLiteBackend(database) as backend:
            for constant in constants:
                for op in ops:
                    query = SPJQuery(
                        ["T"], ["T.id"], DNFPredicate.from_terms([Term("T.x", op, constant)])
                    )
                    ours = evaluate(query, database)
                    theirs = backend.execute(query)
                    assert ours.bag_equal(theirs), (op, constant, render_query(query))


class TestRenderPredicate:
    def test_true_predicate(self):
        assert render_predicate(DNFPredicate.true()) == "1 = 1"

    def test_conjunction(self):
        predicate = DNFPredicate.from_terms(
            [Term("T.a", ComparisonOp.GT, 1), Term("T.b", ComparisonOp.EQ, "x")]
        )
        text = render_predicate(predicate)
        assert '"T"."a" > 1' in text and "AND" in text

    def test_disjunction_parenthesized(self):
        predicate = DNFPredicate(
            (
                Conjunct((Term("T.a", ComparisonOp.EQ, 1),)),
                Conjunct((Term("T.a", ComparisonOp.EQ, 2),)),
            )
        )
        text = render_predicate(predicate)
        assert text.count("(") == 2 and "OR" in text

    def test_membership(self):
        text = render_predicate(
            DNFPredicate.from_terms([Term("T.a", ComparisonOp.NOT_IN, ("x", "y"))])
        )
        assert "NOT IN ('x', 'y')" in text

    def test_inequality_uses_sql_spelling(self):
        text = render_predicate(DNFPredicate.from_terms([Term("T.a", ComparisonOp.NE, 1)]))
        assert "<>" in text


class TestRenderQuery:
    def test_single_table(self, salary_query):
        sql = render_query(salary_query)
        assert sql.splitlines()[0] == 'SELECT "Emp"."ename"'
        assert 'FROM "Emp"' in sql
        assert 'WHERE "Emp"."salary" > 60' in sql

    def test_distinct(self):
        sql = render_query(SPJQuery(["T"], ["T.a"], distinct=True))
        assert sql.startswith("SELECT DISTINCT")

    def test_join_rendered_with_schema(self, two_table_db, join_query):
        sql = render_query(join_query, two_table_db.schema)
        assert "INNER JOIN" in sql
        assert '"Emp"."did" = "Dept"."did"' in sql

    def test_no_where_clause_for_true_predicate(self):
        sql = render_query(SPJQuery(["T"], ["T.a"]))
        assert "WHERE" not in sql

    def test_union_rendering(self):
        branch = SPJQuery(["T"], ["T.a"])
        assert "UNION ALL" in render_union(SPJUQuery([branch, branch]))
        assert "UNION ALL" not in render_union(SPJUQuery([branch, branch], distinct=True))


class TestRoundTrip:
    def test_parse_render_parse_fixed_point(self, two_table_db):
        sql = (
            "SELECT Emp.ename, Dept.dname FROM Emp INNER JOIN Dept ON Emp.did = Dept.did "
            "WHERE Emp.salary > 50 AND Dept.budget <= 100"
        )
        first = parse_query(sql, two_table_db.schema)
        rendered = render_query(first, two_table_db.schema)
        second = parse_query(rendered, two_table_db.schema)
        assert first == second

    def test_round_trip_with_disjunction(self, two_table_db):
        sql = "SELECT ename FROM Emp WHERE salary > 80 OR (senior = TRUE AND salary < 75)"
        first = parse_query(sql, two_table_db.schema)
        second = parse_query(render_query(first, two_table_db.schema), two_table_db.schema)
        assert first == second

    def test_round_trip_membership(self, two_table_db):
        sql = "SELECT ename FROM Emp WHERE did IN (1, 2)"
        first = parse_query(sql, two_table_db.schema)
        second = parse_query(render_query(first, two_table_db.schema), two_table_db.schema)
        assert first == second
