"""Unit tests for the SQL tokenizer."""

import pytest

from repro.exceptions import SQLSyntaxError
from repro.sql.tokenizer import tokenize


class TestTokenizer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("SELECT name FROM Employee")
        assert [t.kind for t in tokens] == ["IDENT"] * 4
        assert tokens[0].upper == "SELECT"

    def test_qualified_identifier_uses_dot_token(self):
        kinds = [t.kind for t in tokenize("T.a")]
        assert kinds == ["IDENT", "DOT", "IDENT"]

    def test_quoted_identifier(self):
        tokens = tokenize('"weird name"')
        assert tokens[0].kind == "IDENT"
        assert tokens[0].text == "weird name"

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(SQLSyntaxError):
            tokenize('"oops')

    def test_string_literal_with_escape(self):
        tokens = tokenize("'it''s fine'")
        assert tokens[0].kind == "STRING"
        assert tokens[0].text == "it's fine"

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_numbers(self):
        tokens = tokenize("42 -3.5 1e3")
        assert [t.kind for t in tokens] == ["NUMBER", "NUMBER", "NUMBER"]

    def test_operators(self):
        texts = [t.text for t in tokenize("a <= 1 AND b <> 2 OR c != 3 AND d >= e")]
        assert "<=" in texts and "<>" in texts and "!=" in texts and ">=" in texts

    def test_punctuation(self):
        kinds = [t.kind for t in tokenize("(a, b);*")]
        assert kinds == ["LPAREN", "IDENT", "COMMA", "IDENT", "RPAREN", "SEMI", "STAR"]

    def test_line_comments_skipped(self):
        tokens = tokenize("SELECT a -- comment here\nFROM t")
        assert [t.upper for t in tokens] == ["SELECT", "A", "FROM", "T"]

    def test_unknown_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT @")

    def test_positions_recorded(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3
