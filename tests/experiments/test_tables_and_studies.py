"""Integration tests for the Section 7 table/studies regeneration (tiny scale).

These tests check the *structure* and the paper-shape invariants of every
regenerated table; the benchmark suite regenerates them at a larger scale.
"""

import pytest

#: Regenerates every paper table/study — excluded from tier-1 (-m slow).
pytestmark = pytest.mark.slow

from repro.experiments import studies, tables
from repro.experiments.report import ExperimentTable

_SCALE = 0.03


@pytest.fixture(scope="module")
def table1_result():
    return tables.table1(_SCALE)


class TestTable1:
    def test_two_tables_returned(self, table1_result):
        assert len(table1_result) == 2
        assert all(isinstance(t, ExperimentTable) for t in table1_result)

    def test_columns_match_paper(self, table1_result):
        assert "dbCost" in table1_result[0].columns
        assert "# of skyline pairs" in table1_result[0].columns

    def test_candidate_counts_decrease(self, table1_result):
        for table in table1_result:
            counts = table.column("# of queries")
            assert counts == sorted(counts, reverse=True)

    def test_subset_counts_at_least_two(self, table1_result):
        for table in table1_result:
            assert all(k >= 2 for k in table.column("# of query subsets"))

    def test_renders(self, table1_result):
        for table in table1_result:
            assert "Iteration" in table.render()


class TestTable2:
    def test_structure_and_shape(self):
        table = tables.table2(_SCALE, betas=(1, 3), workloads=("Q5",))
        assert table.column("Query") == ["Q5"]
        row = table.as_dicts()[0]
        # β has little effect on iterations (the paper's finding): allow a
        # difference of at most 2 rounds between the extremes.
        assert abs(row["iters β=1"] - row["iters β=3"]) <= 2


class TestTable3:
    def test_delta_sweep(self):
        result = tables.table3(_SCALE, deltas=(0.05, 0.2), workloads=("Q2",))
        assert len(result) == 1
        table = result[0]
        assert table.column("δ (s)") == [0.05, 0.2]
        assert all(iterations >= 1 for iterations in table.column("# of iterations"))


class TestTable4:
    def test_alg4_times_recorded(self):
        table = tables.table4(_SCALE)
        assert set(table.column("Query")) <= {"Q1", "Q2"}
        assert all(t >= 0 for t in table.column("Alg. 4 time (ms)"))
        assert all(sp >= 1 for sp in table.column("# of skyline pairs"))


class TestTable5:
    def test_runtime_grows_with_sp(self):
        table = tables.table5(_SCALE, pair_counts=(10, 40))
        sizes = table.column("# of skyline pairs")
        times = table.column("Exec. time (s)")
        assert sizes == sorted(sizes)
        assert times[-1] >= times[0] * 0.5  # larger |SP| is never dramatically faster
        assert all(k >= 2 for k in table.column("chosen k"))


class TestTable6:
    def test_iterations_grow_with_candidates(self):
        table = tables.table6(_SCALE, candidate_counts=(5, 15))
        candidates = table.column("# of candidate queries")
        iterations = table.column("# of iterations")
        assert candidates[0] < candidates[-1]
        assert iterations[-1] >= iterations[0]


class TestTable7:
    def test_breakdown_sums(self):
        table = tables.table7(_SCALE, candidate_counts=(5, 10))
        for row in table.as_dicts():
            assert row["Total"] == pytest.approx(
                row["Algorithm 3"] + row["Algorithm 4"] + row["Modify DB"], rel=0.05, abs=0.01
            )


class TestStudies:
    def test_initial_pair_size_study(self):
        table = studies.initial_pair_size_study(_SCALE, fractions=(0.5, 1.0))
        assert len(table.rows) == 2
        sizes = table.column("DB tuples")
        assert sizes[0] <= sizes[1]

    def test_entropy_study(self):
        table = studies.entropy_study(_SCALE, distinct_fractions=(1.0, 0.4))
        distinct = table.column("# distinct values")
        assert distinct[0] >= distinct[1]

    def test_user_study_shape(self):
        table = studies.user_study(0.02, participants=1)
        rows = table.as_dicts()
        # 3 targets x 1 participant x 2 approaches
        assert len(rows) == 6
        assert all(row["Identified"] for row in rows)
        approaches = {row["Approach"] for row in rows}
        assert approaches == {"QFE", "max-subsets"}
        # user time dominates machine time, as in the paper
        assert all(row["User time (s)"] >= row["Machine time (s)"] for row in rows)
