"""Unit tests for the experiment table rendering."""

import pytest

from repro.experiments.report import ExperimentTable, format_value, render_tables


class TestFormatValue:
    def test_none_and_bool(self):
        assert format_value(None) == "-"
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_float_precision(self):
        assert format_value(0.0) == "0"
        assert format_value(123.456) == "123"
        assert format_value(3.14159) == "3.14"
        assert format_value(0.01234) == "0.0123"

    def test_strings_and_ints(self):
        assert format_value(7) == "7"
        assert format_value("abc") == "abc"


class TestExperimentTable:
    def test_add_row_validates_width(self):
        table = ExperimentTable("T", ["a", "b"])
        table.add_row(1, 2)
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_as_dicts_and_column(self):
        table = ExperimentTable("T", ["a", "b"])
        table.add_row(1, "x")
        table.add_row(2, "y")
        assert table.as_dicts() == [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        assert table.column("b") == ["x", "y"]

    def test_render_contains_all_cells(self):
        table = ExperimentTable("Title", ["col1", "col2"], caption="cap")
        table.add_row(10, "value")
        table.notes.append("a note")
        text = table.render()
        assert "Title" in text and "cap" in text
        assert "col1" in text and "value" in text
        assert "note: a note" in text

    def test_render_tables_joins_blocks(self):
        first = ExperimentTable("A", ["x"])
        second = ExperimentTable("B", ["y"])
        combined = render_tables([first, second])
        assert "A" in combined and "B" in combined
        assert "\n\n" in combined
