"""Tests for the qfe-experiments command-line interface."""

import pytest

from repro.experiments.cli import build_parser, main


class TestCLI:
    def test_list_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table1" in output and "user-study" in output
        assert "scenarios" in output

    def test_parser_rejects_unknown_experiment(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["not-an-experiment"])

    def test_workers_flag_parses(self):
        args = build_parser().parse_args(["table1", "--workers", "4"])
        assert args.workers == 4
        # Omitted flag defers to each session's config instead of forcing
        # serial — QFEConfig(workers=...) must stay effective.
        assert build_parser().parse_args(["table1"]).workers is None

    def test_negative_workers_is_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table1", "--workers", "-2"])
        assert excinfo.value.code == 2
        assert "--workers" in capsys.readouterr().err

    def test_backend_flag_parses_and_validates(self, capsys):
        assert build_parser().parse_args(["table1", "--backend", "sql"]).backend == "sql"
        # Omitted flag defers to each session's config (backend="auto").
        assert build_parser().parse_args(["table1"]).backend is None
        with pytest.raises(SystemExit) as excinfo:
            main(["table1", "--backend", "mysql"])
        assert excinfo.value.code == 2
        assert "serial" in capsys.readouterr().err

    def test_backend_default_is_installed_for_the_run_and_restored(self, monkeypatch, capsys):
        from repro.experiments import cli as experiments_cli
        from repro.experiments import runner

        observed = {}

        def stub(scale):
            observed["backend"] = runner._DEFAULT_BACKEND
            return []

        monkeypatch.setitem(experiments_cli._EXPERIMENTS, "table1", stub)
        previous = runner.set_default_backend(None)
        try:
            assert main(["table1", "--backend", "sql"]) == 0
            capsys.readouterr()
            assert observed["backend"] == "sql"
            assert runner._DEFAULT_BACKEND is None
        finally:
            runner.set_default_backend(previous)

    def test_workers_default_is_installed_for_the_run_and_restored(self, monkeypatch, capsys):
        from repro.experiments import cli as experiments_cli
        from repro.experiments import runner

        observed = {}

        def stub(scale):
            observed["workers"] = runner._DEFAULT_WORKERS
            return []

        monkeypatch.setitem(experiments_cli._EXPERIMENTS, "table1", stub)
        previous = runner.set_default_workers(None)
        try:
            assert main(["table1", "--workers", "3"]) == 0
            capsys.readouterr()
            assert observed["workers"] == 3
            # main() must restore the previous process-wide default.
            assert runner._DEFAULT_WORKERS is None
        finally:
            runner.set_default_workers(previous)

    def test_transcript_out_collects_every_session(self, monkeypatch, tmp_path, capsys):
        import json

        from repro.experiments import cli as experiments_cli
        from repro.experiments import runner
        from repro.workloads import build_pair

        def stub(scale):
            # A real (tiny) session so the sink records a genuine transcript.
            database, result, target = build_pair("Q2", 0.03)
            runner.run_session(
                database, result, target, candidate_count=6, feedback="worst",
                workload_name="Q2", scale=0.03,
            )
            return []

        monkeypatch.setitem(experiments_cli._EXPERIMENTS, "table1", stub)
        out = tmp_path / "transcripts.json"
        assert main(["table1", "--transcript-out", str(out)]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert len(payload) == 1
        entry = payload[0]
        assert entry["workload"] == "Q2"
        assert entry["transcript"]["iterations"]
        assert "execution_seconds" in entry["transcript"]["iterations"][0]
        # The sink is restored after the run: later sessions are not recorded.
        assert runner._TRANSCRIPT_SINK is None

    def test_scenarios_flags_parse(self):
        args = build_parser().parse_args(
            ["scenarios", "--seed", "7", "--scales", "0.1,0.5,1.0",
             "--scenarios", "mixed,chain", "--bench-out", "none"]
        )
        assert args.seed == 7
        assert args.scales == "0.1,0.5,1.0"
        assert args.scenarios == "mixed,chain"

    def test_scenarios_rejects_bad_scales(self, capsys):
        for bad in ("abc", "-0.5", "0", "nan", "inf", ""):
            with pytest.raises(SystemExit):
                main(["scenarios", "--scales", bad])

    def test_scenarios_rejects_unknown_preset_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["scenarios", "--scenarios", "mxied", "--scales", "0.05",
                  "--workers", "0", "--bench-out", "none"])
        assert "unknown scenario" in str(excinfo.value)

    def test_scenarios_runs_a_tiny_sweep(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_scenarios.json"
        assert main(
            ["scenarios", "--seed", "3", "--scales", "0.05",
             "--scenarios", "chain", "--workers", "0",
             "--candidates", "5", "--bench-out", str(bench)]
        ) == 0
        out = capsys.readouterr().out
        assert "Scenario scale sweep" in out
        assert "chain" in out
        import json

        payload = json.loads(bench.read_text())
        assert payload["scenarios"]["chain"]["trajectory"][0]["scale"] == 0.05

    @pytest.mark.slow
    def test_run_single_table_to_stdout(self, capsys):
        assert main(["table5", "--scale", "0.03"]) == 0
        output = capsys.readouterr().out
        assert "Table 5" in output

    @pytest.mark.slow
    def test_run_table_to_file(self, tmp_path, capsys):
        output_file = tmp_path / "out.txt"
        assert main(["table7", "--scale", "0.03", "--output", str(output_file)]) == 0
        assert "Table 7" in output_file.read_text()
        assert capsys.readouterr().out == ""
