"""Tests for the qfe-experiments command-line interface."""

import pytest

from repro.experiments.cli import build_parser, main


class TestCLI:
    def test_list_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table1" in output and "user-study" in output

    def test_parser_rejects_unknown_experiment(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["not-an-experiment"])

    @pytest.mark.slow
    def test_run_single_table_to_stdout(self, capsys):
        assert main(["table5", "--scale", "0.03"]) == 0
        output = capsys.readouterr().out
        assert "Table 5" in output

    @pytest.mark.slow
    def test_run_table_to_file(self, tmp_path, capsys):
        output_file = tmp_path / "out.txt"
        assert main(["table7", "--scale", "0.03", "--output", str(output_file)]) == 0
        assert "Table 7" in output_file.read_text()
        assert capsys.readouterr().out == ""
