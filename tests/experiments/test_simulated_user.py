"""Unit tests for simulated users and the response-time model."""

from repro.core.feedback import NONE_OF_THE_ABOVE, OracleSelector
from repro.core.partitioner import partition_queries
from repro.core.feedback import build_feedback_round
from repro.core.session import QFESession
from repro.experiments.simulated_user import (
    NoisyOracleSelector,
    ResponseTimeModel,
    simulated_oracle_user,
    simulated_worst_case_user,
)


def _round(employee_db, employee_result, employee_candidates):
    modified = employee_db.copy()
    modified.relation("Employee").update_value(1, "salary", 3900)
    partition = partition_queries(employee_candidates, modified)
    return build_feedback_round(1, employee_db, employee_result, modified, partition), partition


class TestResponseTimeModel:
    def test_bounds_respected(self, employee_db, employee_result, employee_candidates):
        round_, _ = _round(employee_db, employee_result, employee_candidates)
        model = ResponseTimeModel()
        assert model.minimum <= model.response_seconds(round_) <= model.maximum

    def test_more_changes_take_longer(self, employee_db, employee_result, employee_candidates):
        round_, _ = _round(employee_db, employee_result, employee_candidates)
        slow = ResponseTimeModel(per_db_edit=10.0)
        fast = ResponseTimeModel(per_db_edit=0.1)
        assert slow.response_seconds(round_) >= fast.response_seconds(round_)


class TestSimulatedUser:
    def test_oracle_user_records_times(self, employee_db, employee_result, employee_candidates):
        target = employee_candidates[1]
        user = simulated_oracle_user(target)
        session = QFESession(employee_db, employee_result, candidates=employee_candidates)
        outcome = session.run(user)
        assert outcome.converged and outcome.identified_query == target
        assert user.rounds_seen == outcome.iteration_count
        assert len(user.response_times) == outcome.iteration_count
        assert user.total_response_seconds >= 2.0 * outcome.iteration_count

    def test_worst_case_user(self, employee_db, employee_result, employee_candidates):
        user = simulated_worst_case_user()
        session = QFESession(employee_db, employee_result, candidates=employee_candidates)
        outcome = session.run(user)
        assert outcome.converged
        assert user.rounds_seen >= 1


class TestNoisyOracle:
    def test_error_rate_validation(self, employee_candidates):
        import pytest

        with pytest.raises(ValueError):
            NoisyOracleSelector(employee_candidates[0], error_rate=1.5)

    def test_zero_error_rate_behaves_like_oracle(self, employee_db, employee_result,
                                                 employee_candidates):
        round_, partition = _round(employee_db, employee_result, employee_candidates)
        target = employee_candidates[1]
        noisy = NoisyOracleSelector(target, error_rate=0.0)
        assert noisy.select(round_, partition) == OracleSelector(target).select(round_, partition)
        assert noisy.errors_made == 0

    def test_always_erring_oracle_rejects(self, employee_db, employee_result, employee_candidates):
        round_, partition = _round(employee_db, employee_result, employee_candidates)
        noisy = NoisyOracleSelector(employee_candidates[1], error_rate=0.999999, seed=3)
        assert noisy.select(round_, partition) == NONE_OF_THE_ABOVE
        assert noisy.errors_made == 1
