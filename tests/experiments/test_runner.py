"""Tests for the experiment runner."""

import pytest

from repro.core.config import QFEConfig
from repro.experiments.runner import prepare_candidates, run_session, run_workload
from repro.qbo.config import QBOConfig
from repro.workloads import build_pair

_FAST_QBO = QBOConfig(threshold_variants=1, max_terms_per_conjunct=2, max_candidates=12)
_FAST_CONFIG = QFEConfig(delta_seconds=0.2)


class TestPrepareCandidates:
    def test_target_always_included(self, employee_db, employee_result):
        from repro.datasets import employee as employee_dataset

        candidates, elapsed = prepare_candidates(
            employee_db, employee_result, employee_dataset.TARGET_QUERY, qbo_config=_FAST_QBO
        )
        assert any(c == employee_dataset.TARGET_QUERY for c in candidates)
        assert elapsed >= 0

    def test_candidate_count_truncation(self, employee_db, employee_result):
        from repro.datasets import employee as employee_dataset

        candidates, _ = prepare_candidates(
            employee_db, employee_result, employee_dataset.TARGET_QUERY,
            qbo_config=_FAST_QBO, candidate_count=3,
        )
        assert len(candidates) == 3
        assert any(c == employee_dataset.TARGET_QUERY for c in candidates)

    def test_candidate_count_expansion(self, employee_db, employee_result):
        from repro.datasets import employee as employee_dataset

        candidates, _ = prepare_candidates(
            employee_db, employee_result, employee_dataset.TARGET_QUERY,
            qbo_config=_FAST_QBO, candidate_count=15,
        )
        assert 12 <= len(candidates) <= 15


class TestRunSession:
    def test_run_with_explicit_candidates(self, employee_db, employee_result, employee_candidates):
        from repro.datasets import employee as employee_dataset

        run = run_session(
            employee_db, employee_result, employee_dataset.TARGET_QUERY,
            candidates=employee_candidates, feedback="oracle", config=_FAST_CONFIG,
        )
        assert run.session.converged
        assert run.candidate_count == 3
        assert run.iteration_count >= 1
        assert run.execution_seconds >= 0

    def test_unknown_feedback_mode_rejected(self, employee_db, employee_result,
                                            employee_candidates):
        from repro.datasets import employee as employee_dataset

        with pytest.raises(ValueError):
            run_session(
                employee_db, employee_result, employee_dataset.TARGET_QUERY,
                candidates=employee_candidates, feedback="nonsense",  # type: ignore[arg-type]
            )

    @pytest.mark.slow
    def test_run_workload_oracle(self):
        run = run_workload(
            "Q5", scale=0.03, config=_FAST_CONFIG, qbo_config=_FAST_QBO, feedback="oracle"
        )
        assert run.workload == "Q5"
        assert run.session.converged
        assert run.session.identified_query is not None

    @pytest.mark.slow
    def test_run_workload_worst_case(self):
        run = run_workload(
            "Q3", scale=0.03, config=_FAST_CONFIG, qbo_config=_FAST_QBO, feedback="worst"
        )
        assert run.iteration_count >= 1
        assert run.session.converged or run.session.exhausted
