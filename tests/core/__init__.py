"""Test package (gives duplicate basenames like test_properties.py unique module paths)."""
