"""Unit and integration tests for the QFE session loop (Algorithm 1)."""

import pytest

from repro.core.config import QFEConfig
from repro.core.feedback import NONE_OF_THE_ABOVE, OracleSelector, ScriptedSelector, WorstCaseSelector
from repro.core.session import QFESession
from repro.exceptions import FeedbackError, QFESessionError
from repro.relational.evaluator import evaluate


class TestSessionWithProvidedCandidates:
    def test_oracle_identifies_each_candidate(self, employee_db, employee_result,
                                               employee_candidates):
        for target in employee_candidates:
            session = QFESession(employee_db, employee_result, candidates=employee_candidates)
            outcome = session.run(OracleSelector(target))
            assert outcome.converged
            assert outcome.identified_query == target

    def test_worst_case_converges(self, employee_db, employee_result, employee_candidates):
        session = QFESession(employee_db, employee_result, candidates=employee_candidates)
        outcome = session.run(WorstCaseSelector())
        assert outcome.converged
        assert outcome.identified_query in employee_candidates

    def test_iteration_records_are_complete(self, employee_db, employee_result,
                                            employee_candidates):
        session = QFESession(employee_db, employee_result, candidates=employee_candidates)
        outcome = session.run(WorstCaseSelector())
        assert outcome.iteration_count >= 1
        previous_candidates = len(employee_candidates)
        for record in outcome.iterations:
            assert record.candidate_count <= previous_candidates
            assert record.subset_count >= 2
            assert record.remaining_candidates < record.candidate_count
            assert record.db_cost >= 1
            assert record.result_cost >= 0
            assert record.avg_result_cost == pytest.approx(
                record.result_cost / record.subset_count
            )
            previous_candidates = record.remaining_candidates
        assert outcome.total_modification_cost == pytest.approx(
            outcome.total_db_cost + outcome.total_result_cost
        )

    def test_candidate_counts_shrink_monotonically(self, employee_db, employee_result,
                                                   employee_candidates):
        session = QFESession(employee_db, employee_result, candidates=employee_candidates)
        outcome = session.run(WorstCaseSelector())
        counts = [record.candidate_count for record in outcome.iterations]
        assert counts == sorted(counts, reverse=True)

    def test_rounds_are_exposed(self, employee_db, employee_result, employee_candidates):
        session = QFESession(employee_db, employee_result, candidates=employee_candidates)
        session.run(WorstCaseSelector())
        assert session.last_rounds
        assert session.last_rounds[0].iteration == 1

    def test_empty_candidates_rejected(self, employee_db, employee_result):
        session = QFESession(employee_db, employee_result, candidates=[])
        with pytest.raises(QFESessionError):
            session.run(WorstCaseSelector())

    def test_invalid_choice_rejected(self, employee_db, employee_result, employee_candidates):
        session = QFESession(employee_db, employee_result, candidates=employee_candidates)
        with pytest.raises(FeedbackError):
            session.run(ScriptedSelector([5, 5, 5, 5]))

    def test_max_iterations_bound(self, employee_db, employee_result, employee_candidates):
        session = QFESession(
            employee_db, employee_result, candidates=employee_candidates,
            config=QFEConfig(max_iterations=1),
        )
        outcome = session.run(WorstCaseSelector())
        assert outcome.iteration_count <= 1


class TestSessionWithGeneratedCandidates:
    def test_example_1_1_with_generator(self, employee_db, employee_result):
        from repro.datasets import employee as employee_dataset
        from repro.qbo import QBOConfig

        session = QFESession(
            employee_db, employee_result,
            qbo_config=QBOConfig(threshold_variants=2),
        )
        outcome = session.run(OracleSelector(employee_dataset.TARGET_QUERY))
        assert outcome.initial_candidate_count > 3
        assert outcome.query_generation_seconds > 0
        assert outcome.converged or outcome.exhausted
        if outcome.converged:
            # the identified query must at least be equivalent to the target on D
            produced = evaluate(outcome.identified_query, employee_db)
            assert produced.bag_equal(employee_result)

    def test_none_of_the_above_triggers_replenishment(self, employee_db, employee_result,
                                                      employee_candidates):
        # Reject everything once, then answer like the worst-case user.
        class RejectOnceSelector:
            def __init__(self):
                self.rejected = False
                self.fallback = WorstCaseSelector()

            def select(self, round_, partition):
                if not self.rejected:
                    self.rejected = True
                    return NONE_OF_THE_ABOVE
                return self.fallback.select(round_, partition)

        session = QFESession(employee_db, employee_result, candidates=employee_candidates)
        outcome = session.run(RejectOnceSelector())
        # replenishment added constant-mutated variants, so the session either
        # converges or ends with an explicit exhausted flag — never an error
        assert outcome.converged or outcome.exhausted
        assert outcome.initial_candidate_count == 3
