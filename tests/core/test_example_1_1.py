"""End-to-end replay of the paper's Example 1.1.

The example: database D (four employees), result R = {Bob, Darren}, three
candidate queries — gender = 'M' (Q1), salary > 4000 (Q2), dept = 'IT' (Q3).
The paper walks through two feedback rounds that first separate Q2 from
{Q1, Q3} by lowering Bob's salary, then separate Q1 from Q3 by moving Bob out
of the IT department. These tests verify that our implementation reproduces
the *logic* of that walk-through: every candidate is identifiable, the
first-round database change is a small modification of the original data, and
the interaction needs at most two rounds for this candidate set.
"""

import pytest

from repro.core import OracleSelector, QFEConfig, QFESession, WorstCaseSelector
from repro.datasets import employee
from repro.relational.evaluator import evaluate


@pytest.fixture()
def example():
    database, result, target = employee.example_pair()
    return database, result, employee.candidate_trio(), target


class TestExample11:
    def test_initial_pair_is_consistent(self, example):
        database, result, candidates, target = example
        for query in candidates:
            assert evaluate(query, database).bag_equal(result)

    def test_each_candidate_identifiable_within_two_rounds(self, example):
        database, result, candidates, _ = example
        for target in candidates:
            session = QFESession(database, result, candidates=candidates)
            outcome = session.run(OracleSelector(target))
            assert outcome.converged
            assert outcome.identified_query == target
            assert outcome.iteration_count <= 2

    def test_worst_case_needs_at_most_two_rounds(self, example):
        database, result, candidates, _ = example
        session = QFESession(database, result, candidates=candidates)
        outcome = session.run(WorstCaseSelector())
        assert outcome.converged
        assert outcome.iteration_count <= 2

    def test_first_round_modifies_employee_table_only(self, example):
        database, result, candidates, target = example
        session = QFESession(database, result, candidates=candidates)
        session.run(OracleSelector(target))
        first_round = session.last_rounds[0]
        assert [d.relation_name for d in first_round.database_delta.relation_deltas] == ["Employee"]
        # a handful of attribute modifications, never a wholesale rewrite
        assert 1 <= first_round.database_delta.cost <= 4

    def test_presented_results_stay_close_to_original(self, example):
        database, result, candidates, target = example
        session = QFESession(database, result, candidates=candidates)
        session.run(OracleSelector(target))
        for round_ in session.last_rounds:
            for option in round_.options:
                assert option.delta.cost <= 2  # at most a couple of one-column rows change

    def test_target_query_result_unchanged_by_identification(self, example):
        database, result, candidates, target = example
        session = QFESession(database, result, candidates=candidates)
        outcome = session.run(OracleSelector(target))
        assert evaluate(outcome.identified_query, database).bag_equal(result)
