"""Unit tests for class pairs and the pair-set simulator."""

import pytest

from repro.core.modification import ClassPair, PairSetSimulator, simulate_pair_set
from repro.core.tuple_class import TupleClassSpace
from repro.relational.join import full_join
from repro.relational.predicates import ComparisonOp, DNFPredicate, Term
from repro.relational.query import SPJQuery


@pytest.fixture()
def employee_space(employee_db, employee_candidates):
    return TupleClassSpace(full_join(employee_db), employee_candidates)


def _all_single_pairs(space):
    pairs = []
    for source in space.source_tuple_classes():
        for destination in space.destination_classes(source, 1):
            pairs.append(ClassPair(source, destination))
    return pairs


class TestClassPair:
    def test_edit_cost(self, employee_space):
        pair = _all_single_pairs(employee_space)[0]
        assert pair.edit_cost == 1
        assert len(pair.changed_slots()) == 1


class TestSimulatePairSet:
    def test_single_pair_at_most_four_groups(self, employee_space):
        """Lemma 5.1: one tuple modification partitions QC into at most 4 subsets."""
        for pair in _all_single_pairs(employee_space):
            effect = simulate_pair_set(employee_space, [pair], result_arity=1)
            assert 1 <= effect.group_count <= 4

    def test_n_pairs_at_most_4_to_n_groups(self, employee_space):
        pairs = _all_single_pairs(employee_space)[:2]
        effect = simulate_pair_set(employee_space, pairs, result_arity=1)
        assert effect.group_count <= 4 ** len(pairs)

    def test_group_sizes_sum_to_query_count(self, employee_space, employee_candidates):
        for pair in _all_single_pairs(employee_space)[:10]:
            effect = simulate_pair_set(employee_space, [pair], result_arity=1)
            assert sum(effect.group_sizes) == len(employee_candidates)

    def test_min_edit_is_sum_of_pair_costs(self, employee_space):
        pairs = _all_single_pairs(employee_space)[:3]
        effect = simulate_pair_set(employee_space, pairs, result_arity=1)
        assert effect.min_edit == sum(p.edit_cost for p in pairs)

    def test_single_group_balance_is_infinite(self, employee_db):
        # With a single candidate, any modification leaves one group.
        query = SPJQuery(
            ["Employee"], ["Employee.name"],
            DNFPredicate.from_terms([Term("Employee.gender", ComparisonOp.EQ, "M")]),
        )
        space = TupleClassSpace(full_join(employee_db), [query])
        pair = _all_single_pairs(space)[0]
        effect = simulate_pair_set(space, [pair], result_arity=1)
        assert effect.group_count == 1
        assert effect.balance == float("inf")
        assert not effect.partitions_queries

    def test_balanced_split_scores_lower(self, employee_space):
        effects = [
            simulate_pair_set(employee_space, [pair], result_arity=1)
            for pair in _all_single_pairs(employee_space)
        ]
        split = [e for e in effects if e.group_count >= 2]
        assert split, "expected at least one distinguishing single-pair modification"
        perfectly_balanced = [e for e in split if max(e.group_sizes) - min(e.group_sizes) <= 1]
        skewed = [e for e in split if max(e.group_sizes) - min(e.group_sizes) > 1]
        if perfectly_balanced and skewed:
            assert min(e.balance for e in perfectly_balanced) <= min(e.balance for e in skewed)

    def test_modified_tables_derived_from_attributes(self, employee_space):
        pair = _all_single_pairs(employee_space)[0]
        effect = simulate_pair_set(employee_space, [pair], result_arity=1)
        assert effect.modified_tables == ("Employee",)
        assert all(a.startswith("Employee.") for a in effect.modified_attributes)


class TestPairSetSimulator:
    def test_simulator_matches_one_off_simulation(self, employee_space):
        simulator = PairSetSimulator(employee_space, result_arity=1)
        for pair in _all_single_pairs(employee_space)[:8]:
            via_simulator = simulator.effect([pair])
            one_off = simulate_pair_set(employee_space, [pair], result_arity=1)
            assert via_simulator.group_sizes == one_off.group_sizes
            assert via_simulator.balance == one_off.balance
            assert via_simulator.estimated_result_cost == one_off.estimated_result_cost

    def test_simulator_caches_pairs(self, employee_space):
        simulator = PairSetSimulator(employee_space, result_arity=1)
        pair = _all_single_pairs(employee_space)[0]
        simulator.effect([pair])
        assert pair in simulator._pair_cache
        simulator.effect([pair])  # second call hits the cache
        assert len(simulator._pair_cache) == 1
