"""Edge-case coverage for Algorithm 3 (skyline_stc_dtc_pairs).

Three regimes beyond the happy path: a degenerate tuple-class space with no
selection attributes, candidate sets no modification can split (a single
surviving group everywhere), and determinism of the returned skyline under
shuffled candidate order — the property the parallel round planner's
bit-identical merge relies on.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import QFEConfig
from repro.core.skyline import skyline_stc_dtc_pairs
from repro.core.tuple_class import TupleClassSpace
from repro.relational.join import full_join
from repro.relational.predicates import ComparisonOp, DNFPredicate, Term
from repro.relational.query import SPJQuery


def _emp_query(*terms: Term) -> SPJQuery:
    return SPJQuery(["Emp"], ["Emp.ename"], DNFPredicate.from_terms(list(terms)))


@pytest.fixture()
def joined(two_table_db):
    return full_join(two_table_db)


class TestEmptyTupleClassSpace:
    def test_predicate_free_candidates_yield_no_pairs(self, two_table_db, joined):
        # No selection predicates anywhere: the tuple-class space has zero
        # attributes, a single (empty) tuple class, and nothing to enumerate.
        queries = [
            SPJQuery(["Emp"], ["Emp.ename"]),
            SPJQuery(["Emp"], ["Emp.ename"], distinct=True),
        ]
        space = TupleClassSpace(joined, queries)
        assert space.attribute_count == 0
        skyline = skyline_stc_dtc_pairs(space, QFEConfig(), result_arity=1)
        assert skyline.pairs == []
        assert skyline.pair_count == 0
        assert skyline.enumerated_pairs == 0
        assert not skyline.truncated_by_time
        assert not skyline.truncated_by_cap
        assert skyline.most_balanced_binary_x is None

    def test_empty_join_still_enumerates_nothing_useful(self, two_table_db):
        empty = two_table_db.copy()
        for name in list(empty.table_names):
            relation = empty.relation(name)
            for t in list(relation.tuples):
                relation.delete(t.tuple_id)
        joined = full_join(empty)
        queries = [
            _emp_query(Term("Emp.salary", ComparisonOp.GT, 60)),
            _emp_query(Term("Emp.salary", ComparisonOp.GT, 50)),
        ]
        space = TupleClassSpace(joined, queries)
        # No rows means no source tuple classes, hence no candidate pairs.
        skyline = skyline_stc_dtc_pairs(space, QFEConfig(), result_arity=1)
        assert skyline.pairs == []
        assert skyline.enumerated_pairs == 0


class TestSingleSurvivingGroup:
    def test_identical_candidates_cannot_be_split(self, joined):
        # Both candidates carry the *same* predicate: every modification
        # leaves them in one result-equivalence group, every balance is
        # +inf, and the skyline keeps nothing.
        term = Term("Emp.salary", ComparisonOp.GT, 60)
        queries = [_emp_query(term), _emp_query(term)]
        space = TupleClassSpace(joined, queries)
        assert space.attribute_count == 1
        skyline = skyline_stc_dtc_pairs(space, QFEConfig(), result_arity=1)
        assert skyline.pairs == []
        assert skyline.enumerated_pairs > 0
        assert all(balance == float("inf") for balance in skyline.pair_balances.values())


class TestTieBreakingDeterminism:
    def _queries(self):
        return [
            _emp_query(Term("Emp.salary", ComparisonOp.GT, 60)),
            _emp_query(Term("Emp.salary", ComparisonOp.GT, 50)),
            _emp_query(Term("Emp.salary", ComparisonOp.LE, 80)),
            _emp_query(
                Term("Emp.salary", ComparisonOp.GT, 60),
                Term("Emp.senior", ComparisonOp.EQ, True),
            ),
        ]

    def test_skyline_is_invariant_under_candidate_order(self, joined):
        config = QFEConfig()
        queries = self._queries()
        base_space = TupleClassSpace(joined, queries)
        base = skyline_stc_dtc_pairs(base_space, config, result_arity=1)
        assert base.pairs, "fixture should produce a non-empty skyline"
        rng = random.Random(7)
        for _ in range(5):
            shuffled = list(queries)
            rng.shuffle(shuffled)
            space = TupleClassSpace(joined, shuffled)
            skyline = skyline_stc_dtc_pairs(space, config, result_arity=1)
            # The pair *set*, its order, and the per-pair balances are all
            # invariant: enumeration iterates sorted tuple classes and the
            # balance of a pair depends on the candidate set, not its order.
            assert skyline.pairs == base.pairs
            assert skyline.pair_balances == base.pair_balances
            assert skyline.enumerated_pairs == base.enumerated_pairs

    def test_fallback_order_is_deterministic(self, joined):
        config = QFEConfig()
        space = TupleClassSpace(joined, self._queries())
        first = skyline_stc_dtc_pairs(space, config, result_arity=1)
        second = skyline_stc_dtc_pairs(space, config, result_arity=1)
        assert first.singles_ordered_by_balance() == second.singles_ordered_by_balance()
        ordered = first.singles_ordered_by_balance()
        balances = [first.pair_balances[p] for p in ordered]
        assert balances == sorted(balances)
