"""Unit tests for QFEConfig and the alternative cost objective."""

import pytest

from repro.core.alternative_cost import max_partitions_score
from repro.core.config import IterationEstimator, QFEConfig
from repro.core.cost_model import cost_of_effect
from repro.core.modification import simulate_pair_set, ClassPair
from repro.core.tuple_class import TupleClassSpace
from repro.relational.join import full_join


class TestQFEConfig:
    def test_defaults_match_paper(self):
        config = QFEConfig()
        assert config.beta == 1.0
        assert config.delta_seconds == 1.0
        assert config.iteration_estimator is IterationEstimator.REFINED

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"beta": -1},
            {"delta_seconds": 0},
            {"max_iterations": 0},
            {"max_skyline_pairs": 0},
            {"max_subset_size": 0},
            {"growth_pool_size": 0},
            {"max_sets_per_level": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            QFEConfig(**kwargs)

    def test_with_overrides(self):
        config = QFEConfig().with_overrides(beta=3.0, delta_seconds=0.5)
        assert config.beta == 3.0
        assert config.delta_seconds == 0.5
        assert config.max_iterations == QFEConfig().max_iterations

    def test_frozen(self):
        with pytest.raises(Exception):
            QFEConfig().beta = 2.0  # type: ignore[misc]


class TestMaxPartitionsScore:
    def test_prefers_more_groups(self, employee_db, employee_candidates):
        space = TupleClassSpace(full_join(employee_db), employee_candidates)
        effects = []
        for source in space.source_tuple_classes():
            for destination in space.destination_classes(source, 1):
                effects.append(simulate_pair_set(space, [ClassPair(source, destination)],
                                                 result_arity=1))
        split = [e for e in effects if e.partitions_queries]
        assert split
        config = QFEConfig()
        scored = sorted(split, key=lambda e: max_partitions_score(e, cost_of_effect(e, config)))
        assert scored[0].group_count == max(e.group_count for e in split)

    def test_tie_break_by_largest_group(self, employee_db, employee_candidates):
        space = TupleClassSpace(full_join(employee_db), employee_candidates)
        effects = []
        for source in space.source_tuple_classes():
            for destination in space.destination_classes(source, 1):
                effects.append(simulate_pair_set(space, [ClassPair(source, destination)],
                                                 result_arity=1))
        config = QFEConfig()
        same_group_count = [e for e in effects if e.group_count == 2]
        if len(same_group_count) >= 2:
            ranked = sorted(
                same_group_count,
                key=lambda e: max_partitions_score(e, cost_of_effect(e, config)),
            )
            assert max(ranked[0].group_sizes) <= max(ranked[-1].group_sizes)
