"""Unit tests for the Section 3 cost model and iteration estimators."""

import math

import pytest

from repro.core.config import IterationEstimator, QFEConfig
from repro.core.cost_model import (
    balance_score,
    cost_of_effect,
    estimate_iterations,
    estimate_iterations_naive,
    estimate_iterations_refined,
)
from repro.core.modification import ClassPair, simulate_pair_set
from repro.core.tuple_class import TupleClassSpace
from repro.relational.join import full_join


class TestBalanceScore:
    def test_single_group_is_infinite(self):
        assert balance_score([5]) == float("inf")
        assert balance_score([]) == float("inf")

    def test_perfectly_balanced_is_zero(self):
        assert balance_score([3, 3]) == 0.0
        assert balance_score([2, 2, 2]) == 0.0

    def test_more_balanced_scores_lower(self):
        assert balance_score([3, 3]) < balance_score([5, 1])
        assert balance_score([2, 2, 2]) < balance_score([4, 1, 1])

    def test_definition_sigma_over_k(self):
        sizes = [4, 2]
        sigma = math.sqrt(((4 - 3) ** 2 + (2 - 3) ** 2) / 2)
        assert balance_score(sizes) == pytest.approx(sigma / 2)


class TestIterationEstimators:
    def test_naive_is_log2_of_largest(self):
        assert estimate_iterations_naive([8, 3]) == pytest.approx(3.0)
        assert estimate_iterations_naive([1, 1]) == 0.0

    def test_refined_matches_paper_structure(self):
        # largest = 9, x = 2: N1 = floor(9/2) - 1 = 3, remaining = 9 - 6 = 3,
        # N2 = ceil(log2 3) = 2 -> N = 5
        assert estimate_iterations_refined([9, 2], 2) == 5.0

    def test_refined_falls_back_without_binary_partition(self):
        assert estimate_iterations_refined([8, 3], None) == estimate_iterations_naive([8, 3])
        assert estimate_iterations_refined([8, 3], 0) == estimate_iterations_naive([8, 3])

    def test_refined_never_below_zero(self):
        assert estimate_iterations_refined([1], 1) == 0.0

    def test_refined_at_least_naive_for_small_x(self):
        # With x = 1 (the worst useful binary partition), the refined estimate
        # must not be smaller than the optimistic naive estimate.
        for largest in (4, 9, 16, 33):
            assert estimate_iterations_refined([largest, 1], 1) >= estimate_iterations_naive(
                [largest, 1]
            )

    def test_dispatch_respects_config(self):
        naive = QFEConfig(iteration_estimator=IterationEstimator.NAIVE)
        refined = QFEConfig(iteration_estimator=IterationEstimator.REFINED)
        assert estimate_iterations([9, 2], naive, most_balanced_binary_x=2) == pytest.approx(
            estimate_iterations_naive([9, 2])
        )
        assert estimate_iterations([9, 2], refined, most_balanced_binary_x=2) == 5.0


class TestCostOfEffect:
    def _effect(self, employee_db, employee_candidates, pair_count=1):
        space = TupleClassSpace(full_join(employee_db), employee_candidates)
        pairs = []
        for source in space.source_tuple_classes():
            for destination in space.destination_classes(source, 1):
                pairs.append(ClassPair(source, destination))
                if len(pairs) == pair_count:
                    return space, simulate_pair_set(space, pairs, result_arity=1)
        raise AssertionError("not enough pairs")

    def test_cost_components(self, employee_db, employee_candidates):
        _, effect = self._effect(employee_db, employee_candidates)
        cost = cost_of_effect(effect, QFEConfig())
        assert cost.db_cost == effect.min_edit + 1.0 * len(effect.modified_tables)
        assert cost.result_cost == effect.estimated_result_cost
        assert cost.current_cost == cost.db_cost + cost.result_cost
        assert cost.total == cost.current_cost + cost.residual_cost
        assert cost.residual_cost >= 0

    def test_beta_scales_db_cost(self, employee_db, employee_candidates):
        _, effect = self._effect(employee_db, employee_candidates)
        low = cost_of_effect(effect, QFEConfig(beta=1.0))
        high = cost_of_effect(effect, QFEConfig(beta=5.0))
        assert high.db_cost == low.db_cost + 4.0 * len(effect.modified_tables)

    def test_zero_iterations_means_zero_residual(self, employee_db, employee_candidates):
        space, effect = self._effect(employee_db, employee_candidates)
        if max(effect.group_sizes) <= 1:
            cost = cost_of_effect(effect, QFEConfig())
            assert cost.residual_cost == 0.0

    def test_residual_grows_with_estimated_iterations(self, employee_db, employee_candidates):
        _, effect = self._effect(employee_db, employee_candidates)
        naive = cost_of_effect(
            effect, QFEConfig(iteration_estimator=IterationEstimator.NAIVE)
        )
        assert naive.residual_cost == pytest.approx(
            naive.estimated_iterations
            * (effect.min_edit / max(len(effect.pairs), 1) + 1.0
               + 2.0 * effect.estimated_result_cost / max(effect.group_count, 1))
        )
