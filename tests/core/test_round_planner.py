"""Unit tests for the RoundPlanner and its execution backends.

The serial backend is the differential oracle: the process-pool backend must
produce bit-identical attempt outcomes for any worker count and sharding, and
its workers must never perform a full join (the delta-only worker protocol).
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.config import QFEConfig
from repro.core.database_generator import DatabaseGenerator
from repro.core.execution_backend import (
    ProcessPoolBackend,
    SerialBackend,
    attempt_seed,
    create_backend,
    required_signatures,
    shard_attempts,
)
from repro.core.modification import ClassPair
from repro.core.round_planner import RoundPlanner, candidate_pair_attempts
from repro.core.tuple_class import TupleClass
from repro.exceptions import DatabaseGenerationError
from repro.relational.evaluator import BaseSnapshot, JoinCache
from repro.relational.join import JOIN_STATS


def _outcome_key(outcomes):
    return [
        (o.attempt_index, o.pairs, o.applied, o.distinguishes, o.signature,
         o.group_sizes, o.modification_count, o.modified_tuple_count,
         o.modified_relation_count, o.db_cost)
        for o in outcomes
    ]


@pytest.fixture(scope="module")
def process_backend():
    backend = ProcessPoolBackend(2)
    yield backend
    backend.close()


# ----------------------------------------------------------------- sharding
class TestSharding:
    def _attempts(self, count):
        return [
            (ClassPair(TupleClass((i,)), TupleClass((i + 1,))),) for i in range(count)
        ]

    def test_units_are_contiguous_and_cover_all_attempts(self):
        attempts = self._attempts(10)
        units = shard_attempts(attempts, 3)
        assert [len(u) for u in units] == [4, 3, 3]
        flattened = [a for unit in units for a in unit.attempts]
        assert flattened == attempts
        assert [u.start for u in units] == [0, 4, 7]

    def test_unit_count_is_clamped(self):
        attempts = self._attempts(2)
        assert len(shard_attempts(attempts, 8)) == 2
        assert len(shard_attempts(attempts, 0)) == 1
        assert shard_attempts([], 4) == []

    def test_units_pickle(self):
        unit = shard_attempts(self._attempts(3), 1)[0]
        assert pickle.loads(pickle.dumps(unit)) == unit

    def test_attempt_seed_is_deterministic_and_sharding_invariant(self):
        # The seed depends only on (round token, absolute attempt index) —
        # never on the work-unit layout — so a stochastic scorer seeded from
        # it behaves identically at any worker count.
        assert attempt_seed("round-1", 5) == attempt_seed("round-1", 5)
        assert attempt_seed("round-1", 5) != attempt_seed("round-1", 6)
        assert attempt_seed("round-1", 5) != attempt_seed("round-2", 5)


# ----------------------------------------------------------------- snapshots
class TestBaseSnapshot:
    def test_restore_serves_joins_without_full_joins(self, employee_db):
        cache = JoinCache()
        signature = tuple(employee_db.table_names)
        snapshot = BaseSnapshot.capture(employee_db, [signature], join_cache=cache)
        restored = BaseSnapshot.from_bytes(snapshot.to_bytes())
        JOIN_STATS.reset()
        database, seeded = restored.restore()
        joined = seeded.join_for(database, signature)
        assert JOIN_STATS.full_joins == 0
        assert len(joined) == len(cache.join_for(employee_db, signature))

    def test_covers(self, employee_db):
        signature = tuple(employee_db.table_names)
        snapshot = BaseSnapshot.capture(employee_db, [signature])
        assert snapshot.covers([signature])
        assert not snapshot.covers([signature + ("Missing",)])


# ------------------------------------------------------------------ planning
class TestRoundPlanner:
    def test_plan_round_matches_database_generator(
        self, employee_db, employee_result, employee_candidates
    ):
        planner = RoundPlanner(QFEConfig())
        generation = planner.plan_round(employee_db, employee_result, employee_candidates)
        reference = DatabaseGenerator(QFEConfig()).generate(
            employee_db, employee_result, employee_candidates
        )
        assert generation.chosen_pairs == reference.chosen_pairs
        assert generation.fallback_attempts == reference.fallback_attempts
        assert [g.query_indexes for g in generation.partition.groups] == [
            g.query_indexes for g in reference.partition.groups
        ]
        for ours, theirs in zip(generation.partition.groups, reference.partition.groups):
            assert ours.result.bag_equal(theirs.result)

    def test_prepare_round_attempt_sequence(
        self, employee_db, employee_result, employee_candidates
    ):
        planner = RoundPlanner(QFEConfig())
        plan = planner.prepare_round(employee_db, employee_result, employee_candidates)
        assert plan.attempts[0] == tuple(plan.selection.chosen_pairs)
        singles = plan.skyline.singles_ordered_by_balance()
        expected_tail = [(p,) for p in singles if (p,) != plan.selection.chosen_pairs]
        assert list(plan.attempts[1:]) == expected_tail

    def test_too_few_candidates_raise(self, employee_db, employee_result, employee_candidates):
        with pytest.raises(DatabaseGenerationError):
            RoundPlanner(QFEConfig()).plan_round(
                employee_db, employee_result, employee_candidates[:1]
            )

    def test_candidate_pair_attempts_cap_and_order(
        self, employee_db, employee_result, employee_candidates
    ):
        planner = RoundPlanner(QFEConfig())
        plan = planner.prepare_round(employee_db, employee_result, employee_candidates)
        full = candidate_pair_attempts(plan.space)
        capped = candidate_pair_attempts(plan.space, max_pairs=3)
        assert len(capped) == 3
        assert full[:3] == capped
        assert all(len(attempt) == 1 for attempt in full)
        # Enumeration order is ascending edit cost, Algorithm 3's order.
        costs = [attempt[0].edit_cost for attempt in full]
        assert costs == sorted(costs)

    def test_serial_stop_at_first_stops_at_winner(
        self, employee_db, employee_result, employee_candidates
    ):
        planner = RoundPlanner(QFEConfig())
        plan = planner.prepare_round(employee_db, employee_result, employee_candidates)
        outcomes = planner.execute(plan, stop_at_first=True)
        assert outcomes[-1].applied and outcomes[-1].distinguishes
        assert all(
            not (o.applied and o.distinguishes) for o in outcomes[:-1]
        )

    def test_serial_winner_materialization_is_reused_not_rebuilt(
        self, employee_db, employee_result, employee_candidates
    ):
        planner = RoundPlanner(QFEConfig())
        plan = planner.prepare_round(employee_db, employee_result, employee_candidates)
        store: dict = {}
        outcomes = planner.execute(plan, stop_at_first=True, winner_store=store)
        winner = outcomes[-1]
        # The in-process backend deposits the winning materialization so
        # plan_round never builds the winner twice; the derived cache entry
        # stays registered for the finalize partition.
        assert store["attempt_index"] == winner.attempt_index
        assert tuple(store["materialization"].delta.relations)
        assert planner.join_cache.derived_link_count >= 1

    def test_serial_backend_rewarms_after_base_invalidation(
        self, employee_result, employee_candidates
    ):
        from repro.datasets import employee

        database = employee.build_database()
        planner = RoundPlanner(QFEConfig())
        plan = planner.prepare_round(database, employee_result, employee_candidates)
        planner.execute(plan, stop_at_first=False)
        referenced = plan.context.referenced
        assert planner.join_cache.columnar_for(database, referenced).cached_term_count > 0
        # In-place mutation + the documented invalidate contract: the cache
        # rebuilds a cold join, and the serial backend must warm it again
        # rather than trusting its stale guard.
        planner.join_cache.invalidate(database)
        plan = planner.prepare_round(database, employee_result, employee_candidates)
        planner.execute(plan, stop_at_first=False)
        assert planner.join_cache.columnar_for(database, referenced).cached_term_count > 0


# ------------------------------------------------------------------ backends
class TestBackends:
    def test_create_backend_mapping(self):
        assert isinstance(create_backend(None), SerialBackend)
        assert isinstance(create_backend(0), SerialBackend)
        assert isinstance(create_backend(1), SerialBackend)
        pool = create_backend(2)
        assert isinstance(pool, ProcessPoolBackend)
        assert pool.workers == 2
        pool.close()

    def test_process_pool_requires_two_workers(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(1)

    def test_parallel_outcomes_match_serial_with_zero_worker_joins(
        self, employee_db, employee_result, employee_candidates, process_backend
    ):
        planner = RoundPlanner(QFEConfig())
        plan = planner.prepare_round(employee_db, employee_result, employee_candidates)
        serial = planner.execute(plan, stop_at_first=False)
        parallel = planner.execute(plan, stop_at_first=False, backend=process_backend)
        assert _outcome_key(parallel) == _outcome_key(serial)
        assert all(o.full_joins == 0 for o in parallel)
        assert all(o.full_joins == 0 for o in serial)

    def test_parallel_sweep_matches_serial(
        self, employee_db, employee_result, employee_candidates, process_backend
    ):
        planner = RoundPlanner(QFEConfig())
        plan = planner.prepare_round(employee_db, employee_result, employee_candidates)
        sweep = candidate_pair_attempts(plan.space, max_pairs=12)
        serial = planner.execute(plan, attempts=sweep, stop_at_first=False)
        parallel = planner.execute(
            plan, attempts=sweep, stop_at_first=False, backend=process_backend
        )
        assert _outcome_key(parallel) == _outcome_key(serial)
        assert all(o.full_joins == 0 for o in parallel)

    def test_stop_at_first_parallel_finds_the_serial_winner(
        self, employee_db, employee_result, employee_candidates, process_backend
    ):
        planner = RoundPlanner(QFEConfig())
        plan = planner.prepare_round(employee_db, employee_result, employee_candidates)
        serial = planner.execute(plan, stop_at_first=True)
        parallel = planner.execute(plan, stop_at_first=True, backend=process_backend)

        def winner(outcomes):
            return next(
                (o.attempt_index, o.pairs, o.signature)
                for o in outcomes
                if o.applied and o.distinguishes
            )

        assert winner(parallel) == winner(serial)

    def test_generator_with_workers_matches_serial_generation(
        self, employee_db, employee_result, employee_candidates
    ):
        serial = DatabaseGenerator(QFEConfig()).generate(
            employee_db, employee_result, employee_candidates
        )
        generator = DatabaseGenerator(QFEConfig(), workers=2)
        assert generator.backend.name == "process-pool"
        try:
            parallel = generator.generate(employee_db, employee_result, employee_candidates)
        finally:
            generator.close()
        assert parallel.chosen_pairs == serial.chosen_pairs
        assert parallel.fallback_attempts == serial.fallback_attempts
        assert [g.query_indexes for g in parallel.partition.groups] == [
            g.query_indexes for g in serial.partition.groups
        ]
        for ours, theirs in zip(parallel.partition.groups, serial.partition.groups):
            assert ours.result.bag_equal(theirs.result)

    def test_backend_survives_close_and_reuse(
        self, employee_db, employee_result, employee_candidates
    ):
        backend = ProcessPoolBackend(2)
        planner = RoundPlanner(QFEConfig(), backend=backend)
        plan = planner.prepare_round(employee_db, employee_result, employee_candidates)
        first = planner.execute(plan, stop_at_first=False)
        planner.close()
        second = planner.execute(plan, stop_at_first=False)
        planner.close()
        assert _outcome_key(first) == _outcome_key(second)

    def test_round_context_requires_covered_signatures(
        self, employee_db, employee_result, employee_candidates
    ):
        planner = RoundPlanner(QFEConfig())
        plan = planner.prepare_round(employee_db, employee_result, employee_candidates)
        signatures = required_signatures(plan.context)
        snapshot = planner._snapshot_for(employee_db, signatures)
        assert snapshot.covers(signatures)
        # Same base, same signatures: the memoized snapshot is reused.
        assert planner._snapshot_for(employee_db, signatures) is snapshot

    def test_snapshot_is_recaptured_after_base_invalidation(
        self, employee_result, employee_candidates
    ):
        from repro.datasets import employee

        database = employee.build_database()
        planner = RoundPlanner(QFEConfig())
        plan = planner.prepare_round(database, employee_result, employee_candidates)
        signatures = required_signatures(plan.context)
        first = planner._snapshot_for(database, signatures)
        # Honouring the cache contract for in-place mutation of a live base:
        # invalidate() rebuilds the joins, so the memoized snapshot's joins
        # are stale and the next request must capture a fresh one.
        planner.join_cache.invalidate(database)
        second = planner._snapshot_for(database, signatures)
        assert second is not first
        assert planner._snapshot_for(database, signatures) is second

    def test_pool_rebroadcasts_after_in_place_base_mutation(
        self, employee_result, employee_candidates
    ):
        from repro.datasets import employee

        database = employee.build_database()
        backend = ProcessPoolBackend(2)
        planner = RoundPlanner(QFEConfig(), backend=backend)
        try:
            plan = planner.prepare_round(database, employee_result, employee_candidates)
            planner.execute(plan, stop_at_first=False)
            # Mutate the base in place and honour the cache contract.
            relation = database.relation("Employee")
            victim = relation.tuples[0]
            salary = relation.value_of(victim, "salary")
            # A large jump so the tuple crosses selection thresholds: a pool
            # still holding the stale snapshot would visibly diverge.
            relation.update_value(victim.tuple_id, "salary", salary + 5000)
            planner.join_cache.invalidate(database)
            plan = planner.prepare_round(database, employee_result, employee_candidates)
            serial = planner.execute(plan, stop_at_first=False, backend=SerialBackend())
            parallel = planner.execute(plan, stop_at_first=False)
            # The pool was re-seeded with the post-mutation snapshot: its
            # outcomes match a fresh serial evaluation, not the stale state.
            assert _outcome_key(parallel) == _outcome_key(serial)
            assert all(o.full_joins == 0 for o in parallel)
        finally:
            planner.close()
