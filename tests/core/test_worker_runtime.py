"""Unit tests for the warm persistent worker runtime (protocol pieces).

Everything here runs driver-side without spinning up worker processes: the
cost model's unit sizing, the in-place snapshot advance (the O(|Δ|)
round-advance contract), shared-memory snapshot export/attach, content-hashed
round bodies, and the backend's versioned base bookkeeping
(``advance_base``/``release_base``). Full sessions over live pools live in
``tests/integration/test_warm_pool_differential.py``.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.config import QFEConfig
from repro.core.execution_backend import (
    BACKEND_STATS,
    RoundContext,
    context_body_payload,
)
from repro.core.worker_runtime import (
    AttemptCostModel,
    WarmProcessPoolBackend,
    advance_base_in_place,
)
from repro.relational.delta import TupleDelta
from repro.relational.evaluator import BaseSnapshot, JoinCache
from repro.relational.join import JOIN_STATS, foreign_key_join


class TestAttemptCostModel:
    def test_overshards_classically_before_any_observation(self):
        model = AttemptCostModel()
        assert not model.seeded
        # Round 1: workers × 2 units, capped by the attempt count.
        assert model.unit_count(100, workers=2) == 4
        assert model.unit_count(3, workers=2) == 3
        assert model.unit_count(0, workers=2) == 0

    def test_sizes_units_to_the_time_target_after_seeding(self):
        model = AttemptCostModel(target_unit_seconds=0.02)
        model.observe(attempts=10, seconds=0.1)  # 10 ms per attempt
        assert model.seeded
        assert model.attempt_seconds == pytest.approx(0.01)
        # 2 attempts ≈ one 0.02 s unit → 100 attempts land in 50 units.
        assert model.unit_count(100, workers=2) == 50

    def test_unit_count_always_occupies_every_worker(self):
        model = AttemptCostModel(target_unit_seconds=10.0)
        model.observe(attempts=100, seconds=0.001)  # tiny attempts
        # The time target alone would ask for one giant unit; the clamp keeps
        # all workers busy whenever there are enough attempts.
        assert model.unit_count(100, workers=4) == 4
        assert model.unit_count(2, workers=4) == 2

    def test_ewma_folds_new_observations(self):
        model = AttemptCostModel(alpha=0.5)
        model.observe(attempts=1, seconds=0.01)
        model.observe(attempts=1, seconds=0.03)
        assert model.attempt_seconds == pytest.approx(0.02)
        assert model.observations == 2

    def test_rejects_bad_parameters_and_ignores_bad_samples(self):
        with pytest.raises(ValueError):
            AttemptCostModel(alpha=0.0)
        with pytest.raises(ValueError):
            AttemptCostModel(target_unit_seconds=0.0)
        model = AttemptCostModel()
        model.observe(attempts=0, seconds=1.0)
        model.observe(attempts=5, seconds=-1.0)
        assert not model.seeded


def _modifying_delta(database) -> TupleDelta:
    """A one-tuple salary update on the ``Emp`` relation, as a delta."""
    relation = database.relation("Emp")
    target = relation.tuples[0]
    index = relation.schema.index_of("salary")
    values = list(target.values)
    values[index] = (values[index] or 0) + 17
    delta = TupleDelta()
    delta.record_update("Emp", target.tuple_id, values)
    return delta


class TestSnapshotAdvance:
    def test_advance_matches_a_fresh_join_without_rejoining(self, two_table_db):
        database = two_table_db.copy()
        signature = ("Emp", "Dept")
        snapshot = BaseSnapshot.capture(database, [signature])
        delta = _modifying_delta(database)

        # The reference: apply the same change to a copy and re-join cold,
        # using the snapshot's canonical table order for the signature.
        reference_db = database.copy()
        delta.apply_to(reference_db)
        reference = foreign_key_join(reference_db, BaseSnapshot._key(signature))

        joins_before = JOIN_STATS.full_joins
        snapshot.advance(delta)
        assert JOIN_STATS.full_joins == joins_before  # patched, never re-joined
        # The base database advanced *in place*, keeping its identity.
        assert snapshot.database is database
        advanced = snapshot.joins[BaseSnapshot._key(signature)]
        assert advanced.relation.rows() == reference.relation.rows()

    def test_advance_base_in_place_keeps_a_shared_join_cache_current(
        self, two_table_db
    ):
        database = two_table_db.copy()
        signature = ("Emp", "Dept")
        cache = JoinCache()
        snapshot = BaseSnapshot.capture(database, [signature], join_cache=cache)
        delta = _modifying_delta(database)
        advance_base_in_place(snapshot, delta, join_cache=cache)
        # The cache serves the advanced join *object* — identity, not a copy —
        # so snapshot-cache currency checks see the advance as already done.
        joins_before = JOIN_STATS.full_joins
        served = cache.join_for(database, signature)
        assert served is snapshot.joins[BaseSnapshot._key(signature)]
        assert JOIN_STATS.full_joins == joins_before


class TestSharedMemorySnapshot:
    def test_shared_memory_roundtrip_is_value_identical(self, two_table_db):
        database = two_table_db.copy()
        signature = ("Emp", "Dept")
        snapshot = BaseSnapshot.capture(database, [signature])
        handle = snapshot.to_shared_memory()
        try:
            assert handle.manifest["name"]
            restored = BaseSnapshot.from_shared_memory(handle.manifest)
        finally:
            handle.unlink()
        for name in database.table_names:
            assert restored.database.relation(name).rows() == database.relation(
                name
            ).rows()
        key = BaseSnapshot._key(signature)
        assert restored.joins[key].relation.rows() == snapshot.joins[key].relation.rows()


def _context(token: str = "round-1") -> RoundContext:
    from repro.relational.predicates import ComparisonOp, DNFPredicate, Term
    from repro.relational.query import SPJQuery

    query = SPJQuery(
        ["Emp"],
        ["Emp.ename"],
        DNFPredicate.from_terms([Term("Emp.salary", ComparisonOp.GT, 60)]),
    )
    return RoundContext(
        token=token,
        queries=(query,),
        config=QFEConfig(),
        referenced=("Emp",),
        result_name="R",
        result_arity=1,
    )


class TestContentHashedBodies:
    def test_body_hash_ignores_the_round_token(self):
        hash_a, payload_a = context_body_payload(_context("round-1"))
        hash_b, payload_b = context_body_payload(_context("round-2"))
        assert hash_a == hash_b
        assert payload_a == payload_b
        assert len(hash_a) == 64  # sha256 hex

    def test_backend_ships_each_distinct_body_once(self, two_table_db):
        backend = WarmProcessPoolBackend(2)
        try:
            hash_one, payload_one = backend._body_for(_context("round-1"))
            assert payload_one is not None
            # Same body (different token): hash only, no payload re-pickle.
            hash_two, payload_two = backend._body_for(_context("round-2"))
            assert hash_two == hash_one
            assert payload_two is None
            assert BACKEND_STATS.context_skips >= 1
        finally:
            backend.close()


class TestWarmBackendBaseBookkeeping:
    def test_advance_base_requires_an_installed_base(self):
        backend = WarmProcessPoolBackend(2)
        try:
            with pytest.raises(RuntimeError):
                backend.advance_base(TupleDelta())
        finally:
            backend.close()

    def test_advance_base_ships_only_the_delta(self, two_table_db):
        database = two_table_db.copy()
        signature = ("Emp", "Dept")
        snapshot = BaseSnapshot.capture(database, [signature])
        backend = WarmProcessPoolBackend(2)
        try:
            backend._ensure_base(snapshot, [signature])
            version = backend._version
            delta = _modifying_delta(database)
            shipped_before = BACKEND_STATS.bytes_shipped
            backend.advance_base(delta)
            shipped = BACKEND_STATS.bytes_shipped - shipped_before
            assert shipped == len(pickle.dumps(delta, pickle.HIGHEST_PROTOCOL))
            assert shipped < 2_000  # O(|Δ|), nowhere near a snapshot pickle
            assert backend._version == version + 1
        finally:
            backend.close()

    def test_release_base_forgets_only_the_given_database(self, two_table_db):
        database = two_table_db.copy()
        signature = ("Emp", "Dept")
        snapshot = BaseSnapshot.capture(database, [signature])
        backend = WarmProcessPoolBackend(2)
        try:
            backend._ensure_base(snapshot, [signature])
            backend.release_base(two_table_db)  # a different database: no-op
            assert backend._snapshot is snapshot
            backend.release_base(database)
            assert backend._snapshot is None
            with pytest.raises(RuntimeError):
                backend.advance_base(_modifying_delta(database))
        finally:
            backend.close()

    def test_workers_below_two_are_rejected(self):
        with pytest.raises(ValueError):
            WarmProcessPoolBackend(1)
