"""Unit tests for Algorithm 2 (the Database Generator)."""

import pytest

from repro.core.alternative_cost import max_partitions_score
from repro.core.config import QFEConfig
from repro.core.database_generator import DatabaseGenerator
from repro.exceptions import DatabaseGenerationError
from repro.relational.constraints import modification_is_valid
from repro.relational.edit import min_edit_database
from repro.relational.evaluator import evaluate
from repro.relational.predicates import ComparisonOp, DNFPredicate, Term
from repro.relational.query import SPJQuery


class TestDatabaseGenerator:
    def test_generates_distinguishing_database(self, employee_db, employee_result,
                                                employee_candidates):
        generator = DatabaseGenerator(QFEConfig())
        generation = generator.generate(employee_db, employee_result, employee_candidates)
        assert generation.partition.distinguishes
        assert generation.materialization.applied
        assert min_edit_database(employee_db, generation.database) >= 1

    def test_generated_database_is_valid(self, employee_db, employee_result, employee_candidates):
        generation = DatabaseGenerator(QFEConfig()).generate(
            employee_db, employee_result, employee_candidates
        )
        assert modification_is_valid(generation.database)

    def test_partition_covers_all_candidates(self, employee_db, employee_result,
                                              employee_candidates):
        generation = DatabaseGenerator(QFEConfig()).generate(
            employee_db, employee_result, employee_candidates
        )
        total = sum(len(group) for group in generation.partition.groups)
        assert total == len(employee_candidates)

    def test_partition_is_consistent_with_evaluation(self, employee_db, employee_result,
                                                      employee_candidates):
        generation = DatabaseGenerator(QFEConfig()).generate(
            employee_db, employee_result, employee_candidates
        )
        for group in generation.partition.groups:
            for query in group.queries:
                assert evaluate(query, generation.database).bag_equal(group.result)

    def test_timings_recorded(self, employee_db, employee_result, employee_candidates):
        generation = DatabaseGenerator(QFEConfig()).generate(
            employee_db, employee_result, employee_candidates
        )
        assert generation.skyline_seconds >= 0
        assert generation.selection_seconds >= 0
        assert generation.materialize_seconds >= 0
        assert generation.total_seconds == pytest.approx(
            generation.skyline_seconds + generation.selection_seconds
            + generation.materialize_seconds
        )

    def test_single_candidate_rejected(self, employee_db, employee_result, employee_candidates):
        with pytest.raises(DatabaseGenerationError):
            DatabaseGenerator(QFEConfig()).generate(
                employee_db, employee_result, employee_candidates[:1]
            )

    def test_predicate_free_candidates_rejected(self, employee_db, employee_result):
        queries = [
            SPJQuery(["Employee"], ["Employee.name"]),
            SPJQuery(["Employee"], ["Employee.name"], distinct=True),
        ]
        with pytest.raises(DatabaseGenerationError):
            DatabaseGenerator(QFEConfig()).generate(employee_db, employee_result, queries)

    def test_indistinguishable_candidates_raise(self, employee_db, employee_result):
        # Both candidates restrict the primary key, which QFE never modifies.
        queries = [
            SPJQuery(["Employee"], ["Employee.name"],
                     DNFPredicate.from_terms([Term("Employee.Eid", ComparisonOp.GE, 2)])),
            SPJQuery(["Employee"], ["Employee.name"],
                     DNFPredicate.from_terms([Term("Employee.Eid", ComparisonOp.IN, (2, 3, 4))])),
        ]
        with pytest.raises(DatabaseGenerationError):
            DatabaseGenerator(QFEConfig()).generate(employee_db, employee_result, queries)

    def test_alternative_score_generates_more_subsets(self, employee_db, employee_result,
                                                       employee_candidates):
        default_generation = DatabaseGenerator(QFEConfig()).generate(
            employee_db, employee_result, employee_candidates
        )
        alternative_generation = DatabaseGenerator(
            QFEConfig(), score=max_partitions_score
        ).generate(employee_db, employee_result, employee_candidates)
        assert (
            alternative_generation.partition.group_count
            >= default_generation.partition.group_count
        )

    def test_scientific_candidates(self, scientific_db):
        from repro.qbo import QBOConfig, QueryGenerator
        from repro.workloads import scientific_queries

        target = scientific_queries()["Q2"]
        result = evaluate(target, scientific_db, name="R")
        candidates = QueryGenerator(QBOConfig(max_candidates=12)).generate(scientific_db, result)
        generation = DatabaseGenerator(QFEConfig(delta_seconds=0.3)).generate(
            scientific_db, result, candidates
        )
        assert generation.partition.distinguishes
        assert modification_is_valid(generation.database)
