"""Monotonic-clock timing: the session layer must be immune to wall-clock skew.

Session and round durations feed the paper's tables and, since the parallel
round planner, are also summed across process boundaries — so they must come
from the monotonic performance counter, never ``time.time``. These tests pin
both the helper (non-negative even under a backwards-jumping source) and the
session (timings unaffected by a hostile wall clock).
"""

from __future__ import annotations

import time

import pytest

from repro.core import timing
from repro.core.config import QFEConfig
from repro.core.feedback import WorstCaseSelector
from repro.core.session import QFESession
from repro.core.timing import Stopwatch, monotonic_seconds


class TestStopwatch:
    def test_elapsed_is_non_negative_and_grows(self):
        watch = Stopwatch()
        first = watch.elapsed()
        second = watch.elapsed()
        assert 0.0 <= first <= second

    def test_restart_returns_elapsed_and_resets(self):
        watch = Stopwatch()
        elapsed = watch.restart()
        assert elapsed >= 0.0
        assert watch.elapsed() <= elapsed + 1.0  # restarted, not accumulated

    def test_backwards_jumping_clock_is_clamped_to_zero(self, monkeypatch):
        readings = iter([100.0, 40.0])  # the clock "jumps back" 60 seconds
        monkeypatch.setattr(timing, "monotonic_seconds", lambda: next(readings))
        watch = Stopwatch()
        assert watch.elapsed() == 0.0

    def test_monotonic_source_never_goes_backwards(self):
        previous = monotonic_seconds()
        for _ in range(1000):
            current = monotonic_seconds()
            assert current >= previous
            previous = current


class TestSessionTimingUsesMonotonicClock:
    @pytest.fixture()
    def hostile_wall_clock(self, monkeypatch):
        # time.time() runs *backwards*: any timing derived from the wall
        # clock would come out negative. perf_counter is untouched.
        state = {"now": 1_700_000_000.0}

        def backwards() -> float:
            state["now"] -= 3600.0
            return state["now"]

        monkeypatch.setattr(time, "time", backwards)
        return backwards

    def test_session_timings_survive_wall_clock_skew(
        self, hostile_wall_clock, employee_db, employee_result, employee_candidates
    ):
        session = QFESession(
            employee_db, employee_result,
            candidates=employee_candidates, config=QFEConfig(),
        )
        outcome = session.run(WorstCaseSelector())
        assert outcome.iteration_count >= 1
        assert outcome.query_generation_seconds >= 0.0
        for record in outcome.iterations:
            assert record.execution_seconds >= 0.0
            assert record.skyline_seconds >= 0.0
            assert record.selection_seconds >= 0.0
            assert record.materialize_seconds >= 0.0
        assert outcome.total_seconds >= 0.0
        assert outcome.total_seconds == pytest.approx(
            outcome.query_generation_seconds
            + sum(r.execution_seconds for r in outcome.iterations)
        )
