"""Unit tests for Algorithm 4 (Pick-STC-DTC-Subset)."""

import pytest

from repro.core.alternative_cost import max_partitions_score
from repro.core.config import QFEConfig
from repro.core.cost_model import cost_of_effect
from repro.core.modification import simulate_pair_set
from repro.core.skyline import skyline_stc_dtc_pairs
from repro.core.subset_selection import pick_stc_dtc_subset
from repro.core.tuple_class import TupleClassSpace
from repro.relational.join import full_join


@pytest.fixture()
def employee_setup(employee_db, employee_candidates):
    space = TupleClassSpace(full_join(employee_db), employee_candidates)
    skyline = skyline_stc_dtc_pairs(space, QFEConfig(), result_arity=1)
    return space, skyline


class TestPickSubset:
    def test_selects_distinguishing_subset(self, employee_setup):
        space, skyline = employee_setup
        selection = pick_stc_dtc_subset(space, skyline.pairs, QFEConfig(), result_arity=1)
        assert selection.found
        assert selection.chosen_effect.partitions_queries
        assert 1 <= len(selection.chosen_pairs) <= QFEConfig().max_subset_size

    def test_chosen_cost_is_minimal_among_singles(self, employee_setup):
        space, skyline = employee_setup
        config = QFEConfig()
        selection = pick_stc_dtc_subset(space, skyline.pairs, config, result_arity=1)
        single_costs = []
        for pair in skyline.pairs:
            effect = simulate_pair_set(space, [pair], result_arity=1)
            if effect.partitions_queries:
                single_costs.append(cost_of_effect(effect, config).total)
        assert selection.chosen_cost.total <= min(single_costs) + 1e-9

    def test_max_subset_size_respected(self, employee_setup):
        space, skyline = employee_setup
        config = QFEConfig(max_subset_size=1)
        selection = pick_stc_dtc_subset(space, skyline.pairs, config, result_arity=1)
        assert len(selection.chosen_pairs) == 1

    def test_empty_skyline_returns_not_found(self, employee_setup):
        space, _ = employee_setup
        selection = pick_stc_dtc_subset(space, [], QFEConfig(), result_arity=1)
        assert not selection.found
        assert selection.chosen_pairs == ()

    def test_sets_evaluated_counted(self, employee_setup):
        space, skyline = employee_setup
        selection = pick_stc_dtc_subset(space, skyline.pairs, QFEConfig(), result_arity=1)
        assert selection.sets_evaluated >= len(skyline.pairs)
        assert selection.elapsed_seconds >= 0

    def test_alternative_score_prefers_more_subsets(self, employee_setup):
        space, skyline = employee_setup
        config = QFEConfig()
        default_selection = pick_stc_dtc_subset(space, skyline.pairs, config, result_arity=1)
        alternative_selection = pick_stc_dtc_subset(
            space, skyline.pairs, config, result_arity=1, score=max_partitions_score
        )
        assert alternative_selection.found
        assert (
            alternative_selection.chosen_effect.group_count
            >= default_selection.chosen_effect.group_count
        )

    def test_growth_pool_cap(self, employee_setup):
        space, skyline = employee_setup
        config = QFEConfig(growth_pool_size=1, max_sets_per_level=4)
        selection = pick_stc_dtc_subset(space, skyline.pairs, config, result_arity=1)
        assert selection.found
