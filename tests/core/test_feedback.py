"""Unit tests for the Result Feedback presentation and selectors."""

import pytest

from repro.core.feedback import (
    NONE_OF_THE_ABOVE,
    CallbackSelector,
    OracleSelector,
    ScriptedSelector,
    WorstCaseSelector,
    build_feedback_round,
)
from repro.core.partitioner import partition_queries
from repro.exceptions import FeedbackError


@pytest.fixture()
def modified_round(employee_db, employee_result, employee_candidates):
    modified = employee_db.copy()
    modified.relation("Employee").update_value(1, "salary", 3900)
    partition = partition_queries(employee_candidates, modified)
    round_ = build_feedback_round(1, employee_db, employee_result, modified, partition)
    return round_, partition


class TestFeedbackRound:
    def test_round_structure(self, modified_round):
        round_, partition = modified_round
        assert round_.iteration == 1
        assert round_.option_count == partition.group_count
        assert round_.database_delta.cost == 1
        assert sum(option.query_count for option in round_.options) == 3

    def test_option_deltas_reflect_result_changes(self, modified_round):
        round_, _ = modified_round
        costs = sorted(option.delta.cost for option in round_.options)
        # one option keeps the original result (cost 0), the other drops Bob (cost 1)
        assert costs == [0, 1]

    def test_pretty_mentions_changes(self, modified_round):
        round_, _ = modified_round
        text = round_.pretty()
        assert "Iteration 1" in text
        assert "salary" in text
        assert "Result option" in text


class TestSelectors:
    def test_worst_case_picks_largest(self, modified_round):
        round_, partition = modified_round
        choice = WorstCaseSelector().select(round_, partition)
        assert round_.options[choice].query_count == max(o.query_count for o in round_.options)

    def test_oracle_picks_target_group(self, modified_round, employee_candidates):
        round_, partition = modified_round
        target = employee_candidates[1]  # salary > 4000
        choice = OracleSelector(target).select(round_, partition)
        chosen_group = partition.groups[choice]
        assert target in chosen_group.queries

    def test_oracle_rejects_when_no_option_matches(self, employee_db, employee_result,
                                                   employee_candidates):
        # present a partition built from only two candidates; the oracle's
        # target produces a different result on the modified database
        modified = employee_db.copy()
        modified.relation("Employee").update_value(1, "salary", 3900)
        partition = partition_queries(employee_candidates[:1], modified)
        round_ = build_feedback_round(1, employee_db, employee_result, modified, partition)
        target = employee_candidates[1]
        assert OracleSelector(target).select(round_, partition) == NONE_OF_THE_ABOVE

    def test_callback_selector(self, modified_round):
        round_, partition = modified_round
        selector = CallbackSelector(lambda r, p: r.option_count - 1)
        assert selector.select(round_, partition) == round_.option_count - 1

    def test_scripted_selector_replays_choices(self, modified_round):
        round_, partition = modified_round
        selector = ScriptedSelector([1, 0])
        assert selector.select(round_, partition) == 1
        assert selector.select(round_, partition) == 0
        with pytest.raises(FeedbackError):
            selector.select(round_, partition)

    def test_scripted_selector_validates_range(self, modified_round):
        round_, partition = modified_round
        with pytest.raises(FeedbackError):
            ScriptedSelector([99]).select(round_, partition)

    def test_scripted_selector_allows_rejection(self, modified_round):
        round_, partition = modified_round
        assert ScriptedSelector([NONE_OF_THE_ABOVE]).select(round_, partition) == NONE_OF_THE_ABOVE


@pytest.fixture()
def single_group_round(employee_db, employee_result, employee_candidates):
    """A round whose partition has exactly one group (nothing distinguished)."""
    modified = employee_db.copy()
    modified.relation("Employee").update_value(1, "salary", 3900)
    partition = partition_queries(employee_candidates[:1], modified)
    round_ = build_feedback_round(1, employee_db, employee_result, modified, partition)
    assert partition.group_count == 1
    return round_, partition


class TestSingleGroupPartition:
    def test_none_of_the_above_is_valid_on_single_group(self, single_group_round):
        # A user may reject even a one-option round; every selector that can
        # reject must return NONE_OF_THE_ABOVE cleanly rather than exploding
        # on the degenerate partition.
        round_, partition = single_group_round
        assert ScriptedSelector([NONE_OF_THE_ABOVE]).select(round_, partition) == NONE_OF_THE_ABOVE

    def test_oracle_rejects_single_group_when_target_differs(self, single_group_round,
                                                             employee_candidates):
        round_, partition = single_group_round
        target = employee_candidates[1]  # produces a different result on D'
        assert OracleSelector(target).select(round_, partition) == NONE_OF_THE_ABOVE

    def test_worst_case_picks_the_only_option(self, single_group_round):
        round_, partition = single_group_round
        assert WorstCaseSelector().select(round_, partition) == 0


class TestOutOfRangeChoice:
    def test_session_rejects_out_of_range_selector(self, employee_db, employee_result,
                                                   employee_candidates):
        from repro.core.session import QFESession

        # A selector returning one past the last option index: the session
        # must fail with FeedbackError, not IndexError.
        selector = CallbackSelector(lambda round_, partition: round_.option_count)
        session = QFESession(employee_db, employee_result, candidates=employee_candidates)
        with pytest.raises(FeedbackError, match="invalid option index"):
            session.run(selector)

    def test_session_rejects_negative_non_sentinel_choice(self, employee_db, employee_result,
                                                          employee_candidates):
        from repro.core.session import QFESession

        # -2 is neither a valid index nor the NONE_OF_THE_ABOVE sentinel (-1).
        selector = CallbackSelector(lambda round_, partition: -2)
        session = QFESession(employee_db, employee_result, candidates=employee_candidates)
        with pytest.raises(FeedbackError, match="invalid option index"):
            session.run(selector)


class TestEmptyDeltaRound:
    def test_build_feedback_round_on_unmodified_database(self, employee_db, employee_result,
                                                         employee_candidates):
        # D' == D: the delta presentation must degrade to explicit
        # "(no changes)" text, with zero costs, for every option whose result
        # matches the original.
        unmodified = employee_db.copy()
        partition = partition_queries(employee_candidates, unmodified)
        round_ = build_feedback_round(
            1, employee_db, employee_result, unmodified, partition
        )
        assert round_.database_delta.cost == 0
        assert round_.database_delta.modified_relation_count == 0
        assert round_.database_delta.describe() == ["(no database changes)"]
        matching = [o for o in round_.options if o.delta.cost == 0]
        assert matching, "at least one candidate reproduces R on the unmodified D"
        assert matching[0].delta.describe() == ["(result unchanged)"]
        text = round_.pretty()
        assert "(no database changes)" in text
