"""Unit tests for the Result Feedback presentation and selectors."""

import pytest

from repro.core.feedback import (
    NONE_OF_THE_ABOVE,
    CallbackSelector,
    OracleSelector,
    ScriptedSelector,
    WorstCaseSelector,
    build_feedback_round,
)
from repro.core.partitioner import partition_queries
from repro.exceptions import FeedbackError


@pytest.fixture()
def modified_round(employee_db, employee_result, employee_candidates):
    modified = employee_db.copy()
    modified.relation("Employee").update_value(1, "salary", 3900)
    partition = partition_queries(employee_candidates, modified)
    round_ = build_feedback_round(1, employee_db, employee_result, modified, partition)
    return round_, partition


class TestFeedbackRound:
    def test_round_structure(self, modified_round):
        round_, partition = modified_round
        assert round_.iteration == 1
        assert round_.option_count == partition.group_count
        assert round_.database_delta.cost == 1
        assert sum(option.query_count for option in round_.options) == 3

    def test_option_deltas_reflect_result_changes(self, modified_round):
        round_, _ = modified_round
        costs = sorted(option.delta.cost for option in round_.options)
        # one option keeps the original result (cost 0), the other drops Bob (cost 1)
        assert costs == [0, 1]

    def test_pretty_mentions_changes(self, modified_round):
        round_, _ = modified_round
        text = round_.pretty()
        assert "Iteration 1" in text
        assert "salary" in text
        assert "Result option" in text


class TestSelectors:
    def test_worst_case_picks_largest(self, modified_round):
        round_, partition = modified_round
        choice = WorstCaseSelector().select(round_, partition)
        assert round_.options[choice].query_count == max(o.query_count for o in round_.options)

    def test_oracle_picks_target_group(self, modified_round, employee_candidates):
        round_, partition = modified_round
        target = employee_candidates[1]  # salary > 4000
        choice = OracleSelector(target).select(round_, partition)
        chosen_group = partition.groups[choice]
        assert target in chosen_group.queries

    def test_oracle_rejects_when_no_option_matches(self, employee_db, employee_result,
                                                   employee_candidates):
        # present a partition built from only two candidates; the oracle's
        # target produces a different result on the modified database
        modified = employee_db.copy()
        modified.relation("Employee").update_value(1, "salary", 3900)
        partition = partition_queries(employee_candidates[:1], modified)
        round_ = build_feedback_round(1, employee_db, employee_result, modified, partition)
        target = employee_candidates[1]
        assert OracleSelector(target).select(round_, partition) == NONE_OF_THE_ABOVE

    def test_callback_selector(self, modified_round):
        round_, partition = modified_round
        selector = CallbackSelector(lambda r, p: r.option_count - 1)
        assert selector.select(round_, partition) == round_.option_count - 1

    def test_scripted_selector_replays_choices(self, modified_round):
        round_, partition = modified_round
        selector = ScriptedSelector([1, 0])
        assert selector.select(round_, partition) == 1
        assert selector.select(round_, partition) == 0
        with pytest.raises(FeedbackError):
            selector.select(round_, partition)

    def test_scripted_selector_validates_range(self, modified_round):
        round_, partition = modified_round
        with pytest.raises(FeedbackError):
            ScriptedSelector([99]).select(round_, partition)

    def test_scripted_selector_allows_rejection(self, modified_round):
        round_, partition = modified_round
        assert ScriptedSelector([NONE_OF_THE_ABOVE]).select(round_, partition) == NONE_OF_THE_ABOVE
