"""Unit tests for domain partitioning and tuple classes (Section 5.1)."""

from repro.core.tuple_class import DomainPartition, TupleClass, TupleClassSpace
from repro.relational.join import full_join
from repro.relational.predicates import ComparisonOp, Conjunct, DNFPredicate, Term
from repro.relational.query import SPJQuery


def _query(table, projection, terms):
    return SPJQuery([table], projection, DNFPredicate.from_terms(terms))


class TestDomainPartitionNumeric:
    def test_example_5_1_interval_structure(self):
        """Example 5.1: A ≤ 50 and A ∈ (40, 80] partition the A domain into 4 blocks."""
        terms = [
            Term("T.A", ComparisonOp.LE, 50),
            Term("T.A", ComparisonOp.GT, 40),
            Term("T.A", ComparisonOp.LE, 80),
        ]
        partition = DomainPartition("T.A", terms, [10, 45, 60, 90])
        # four signature-distinct regions: <=40, (40,50], (50,80], >80
        assert len(partition) == 4
        assert partition.subset_of_value(10) == partition.subset_of_value(40)
        assert partition.subset_of_value(45) == partition.subset_of_value(41)
        assert partition.subset_of_value(60) != partition.subset_of_value(45)
        assert partition.subset_of_value(90) != partition.subset_of_value(60)

    def test_terms_constant_on_each_block(self):
        terms = [Term("T.A", ComparisonOp.LT, 5), Term("T.A", ComparisonOp.GE, 2)]
        partition = DomainPartition("T.A", terms, [0, 1, 3, 6, 9])
        for subset in partition.subsets:
            for representative in subset.representatives:
                signature = tuple(t.evaluate_value(representative) for t in terms)
                assert signature == subset.signature

    def test_no_terms_single_block(self):
        partition = DomainPartition("T.A", [], [1, 2, 3])
        assert len(partition) == 1

    def test_representatives_prefer_active_domain(self):
        terms = [Term("T.A", ComparisonOp.GT, 10)]
        partition = DomainPartition("T.A", terms, [5, 20])
        above = partition.subset(partition.subset_of_value(20))
        assert above.representative() == 20


class TestDomainPartitionCategorical:
    def test_example_5_2_partition(self):
        """Example 5.2: IN-predicates over {a..g} split the domain by signature."""
        terms = [
            Term("T.A", ComparisonOp.IN, ("b", "c", "e")),
            Term("T.A", ComparisonOp.IN, ("a", "b", "d", "e")),
        ]
        partition = DomainPartition("T.A", terms, list("abcdefg"))
        groups = {}
        for value in "abcdefg":
            groups.setdefault(partition.subset_of_value(value), set()).add(value)
        assert set(map(frozenset, groups.values())) == {
            frozenset({"a", "d"}),
            frozenset({"b", "e"}),
            frozenset({"c"}),
            frozenset({"f", "g"}),
        }

    def test_fresh_block_created_when_needed(self):
        terms = [Term("T.A", ComparisonOp.EQ, "x"), Term("T.A", ComparisonOp.EQ, "y")]
        partition = DomainPartition("T.A", terms, ["x", "y"])
        # there must be a block matching neither equality, even though the
        # active domain only contains matching values
        assert any(not any(s.signature) for s in partition.subsets)
        fresh = next(s for s in partition.subsets if not any(s.signature))
        assert fresh.has_representative


class TestTupleClass:
    def test_edit_distance_counts_differing_slots(self):
        a = TupleClass((0, 1, 2))
        b = TupleClass((0, 2, 3))
        assert a.edit_distance(b) == 2
        assert a.differing_positions(b) == (1, 2)
        assert a.edit_distance(a) == 0


class TestTupleClassSpace:
    def _space(self, db, queries):
        return TupleClassSpace(full_join(db), queries)

    def test_selection_attributes_collected(self, two_table_db):
        queries = [
            _query("Emp", ["Emp.ename"], [Term("Emp.salary", ComparisonOp.GT, 60)]),
            _query("Emp", ["Emp.ename"], [Term("Dept.dname", ComparisonOp.EQ, "IT")]),
        ]
        space = self._space(two_table_db, queries)
        assert set(space.selection_attributes) == {"Emp.salary", "Dept.dname"}
        assert space.attribute_count == 2

    def test_every_row_assigned_to_exactly_one_class(self, two_table_db):
        queries = [_query("Emp", ["Emp.ename"], [Term("Emp.salary", ComparisonOp.GT, 60)])]
        space = self._space(two_table_db, queries)
        total = sum(len(space.rows_in_class(tc)) for tc in space.source_tuple_classes())
        assert total == len(space.joined)

    def test_class_matching_is_consistent_with_row_evaluation(self, two_table_db):
        queries = [
            _query("Emp", ["Emp.ename"], [Term("Emp.salary", ComparisonOp.GT, 60)]),
            _query("Emp", ["Emp.ename"], [Term("Dept.dname", ComparisonOp.EQ, "IT")]),
            SPJQuery(
                ["Emp", "Dept"], ["Emp.ename"],
                DNFPredicate(
                    (
                        Conjunct((Term("Emp.salary", ComparisonOp.LE, 50),)),
                        Conjunct((Term("Dept.budget", ComparisonOp.GE, 100),)),
                    )
                ),
            ),
        ]
        space = self._space(two_table_db, queries)
        rows = space.joined.rows_as_mappings()
        for position, row in enumerate(rows):
            tuple_class = space.class_of_row(position)
            for query_index, query in enumerate(queries):
                expected = query.predicate.evaluate_row(row)
                assert space.matches(query_index, tuple_class) == expected

    def test_destination_classes_edit_distance(self, two_table_db):
        queries = [
            _query("Emp", ["Emp.ename"], [Term("Emp.salary", ComparisonOp.GT, 60)]),
            _query("Emp", ["Emp.ename"], [Term("Dept.dname", ComparisonOp.EQ, "IT")]),
        ]
        space = self._space(two_table_db, queries)
        source = space.source_tuple_classes()[0]
        for destination in space.destination_classes(source, 1):
            assert source.edit_distance(destination) == 1
        for destination in space.destination_classes(source, 2):
            assert source.edit_distance(destination) == 2

    def test_destination_classes_out_of_range(self, two_table_db):
        queries = [_query("Emp", ["Emp.ename"], [Term("Emp.salary", ComparisonOp.GT, 60)])]
        space = self._space(two_table_db, queries)
        source = space.source_tuple_classes()[0]
        assert list(space.destination_classes(source, 0)) == []
        assert list(space.destination_classes(source, 5)) == []

    def test_changed_attributes(self, two_table_db):
        queries = [
            _query("Emp", ["Emp.ename"], [Term("Emp.salary", ComparisonOp.GT, 60)]),
            _query("Emp", ["Emp.ename"], [Term("Dept.dname", ComparisonOp.EQ, "IT")]),
        ]
        space = self._space(two_table_db, queries)
        source = space.source_tuple_classes()[0]
        destination = next(space.destination_classes(source, 1))
        changed = space.changed_attributes(source, destination)
        assert len(changed) == 1
        assert changed[0] in {"Emp.salary", "Dept.dname"}

    def test_max_subsets_per_attribute(self, two_table_db):
        queries = [_query("Emp", ["Emp.ename"], [Term("Emp.salary", ComparisonOp.GT, 60)])]
        space = self._space(two_table_db, queries)
        assert space.max_subsets_per_attribute() >= 2
        empty_space = TupleClassSpace(full_join(two_table_db), [])
        assert empty_space.max_subsets_per_attribute() == 1
