"""Tests for the resumable QFESession state machine (propose/submit/close)."""

import pickle

import pytest

from repro.core.config import QFEConfig
from repro.core.execution_backend import ProcessPoolBackend, SerialBackend
from repro.core.feedback import NONE_OF_THE_ABOVE, OracleSelector, WorstCaseSelector
from repro.core.session import QFESession
from repro.exceptions import FeedbackError, QFESessionError


def _manual_run(session, selector):
    """Drive the state machine by hand, exactly as the service layer does."""
    while True:
        pending = session.propose()
        if pending is None:
            return session.outcome
        choice = selector.select(pending.round, pending.partition)
        session.submit(choice)


def _transcript(session):
    outcome = session.outcome
    return (
        outcome.identified_query,
        outcome.remaining_queries,
        outcome.converged,
        outcome.exhausted,
        [
            (r.iteration, r.candidate_count, r.subset_count, r.chosen_option,
             r.remaining_candidates, r.db_cost, r.result_cost)
            for r in outcome.iterations
        ],
        [
            (round_.iteration, tuple(round_.database_delta.describe()),
             tuple(tuple(o.delta.describe()) for o in round_.options))
            for round_ in session.last_rounds
        ],
    )


class TestProposeSubmit:
    def test_manual_drive_matches_run(self, employee_db, employee_result, employee_candidates):
        blocking = QFESession(employee_db, employee_result, candidates=employee_candidates)
        blocking.run(WorstCaseSelector())

        manual = QFESession(employee_db, employee_result, candidates=employee_candidates)
        outcome = _manual_run(manual, WorstCaseSelector())

        assert outcome.converged
        assert _transcript(manual) == _transcript(blocking)

    def test_propose_is_idempotent_until_submit(self, employee_db, employee_result,
                                                employee_candidates):
        session = QFESession(employee_db, employee_result, candidates=employee_candidates)
        first = session.propose()
        assert first is not None
        assert session.propose() is first
        assert session.status == "awaiting-choice"
        session.submit(0)
        second = session.propose()
        assert second is None or second is not first

    def test_submit_without_pending_round_raises(self, employee_db, employee_result,
                                                 employee_candidates):
        session = QFESession(employee_db, employee_result, candidates=employee_candidates)
        with pytest.raises(QFESessionError):
            session.submit(0)

    def test_invalid_choice_keeps_round_pending(self, employee_db, employee_result,
                                                employee_candidates):
        session = QFESession(employee_db, employee_result, candidates=employee_candidates)
        pending = session.propose()
        with pytest.raises(FeedbackError):
            session.submit(pending.option_count)  # one past the end
        # The round survives the bad request: a valid retry succeeds.
        assert session.pending_round is pending
        step = session.submit(0)
        assert step.status in ("chosen", "converged")

    def test_submit_after_finish_raises(self, employee_db, employee_result,
                                        employee_candidates):
        session = QFESession(employee_db, employee_result, candidates=employee_candidates)
        _manual_run(session, WorstCaseSelector())
        assert session.done
        with pytest.raises(QFESessionError):
            session.submit(0)

    def test_none_of_the_above_replenishes(self, employee_db, employee_result,
                                           employee_candidates):
        session = QFESession(employee_db, employee_result, candidates=employee_candidates)
        before = len(employee_candidates)
        session.propose()
        step = session.submit(NONE_OF_THE_ABOVE)
        assert step.status == "replenished"
        assert step.record is None
        assert not step.done
        assert session.remaining_candidates > before
        # The session keeps going afterwards.
        outcome = _manual_run(session, WorstCaseSelector())
        assert outcome.converged or outcome.exhausted

    def test_status_transitions(self, employee_db, employee_result, employee_candidates):
        session = QFESession(employee_db, employee_result, candidates=employee_candidates)
        assert session.status == "new"
        pending = session.propose()
        assert session.status == "awaiting-choice"
        step = session.submit(0)
        assert session.status in ("active", "converged")
        _manual_run(session, WorstCaseSelector())
        assert session.status == "converged"
        assert session.done

    def test_oracle_identifies_target_via_state_machine(self, employee_db, employee_result,
                                                        employee_candidates):
        target = employee_candidates[1]
        session = QFESession(employee_db, employee_result, candidates=employee_candidates)
        outcome = _manual_run(session, OracleSelector(target))
        assert outcome.converged
        assert outcome.identified_query == target

    def test_run_after_manual_steps_restarts(self, employee_db, employee_result,
                                             employee_candidates):
        session = QFESession(employee_db, employee_result, candidates=employee_candidates)
        session.propose()
        session.submit(0)
        outcome = session.run(WorstCaseSelector())
        assert outcome.converged
        # run() starts from the full initial candidate set, not the partial state
        assert outcome.initial_candidate_count == len(employee_candidates)


class TestStateCapture:
    def test_state_roundtrips_through_pickle_mid_session(self, employee_db, employee_result,
                                                         employee_candidates):
        reference = QFESession(employee_db, employee_result, candidates=employee_candidates)
        _manual_run(reference, WorstCaseSelector())

        session = QFESession(employee_db, employee_result, candidates=employee_candidates)
        selector = WorstCaseSelector()
        while True:
            # Suspend with a round pending, resume in a "new process".
            session.propose()
            state = pickle.loads(pickle.dumps(session.capture_state()))
            session = QFESession.from_state(employee_db, employee_result, state)
            pending = session.propose()
            if pending is None:
                break
            session.submit(selector.select(pending.round, pending.partition))

        assert _transcript(session) == _transcript(reference)

    def test_restored_pending_round_survives(self, employee_db, employee_result,
                                             employee_candidates):
        session = QFESession(employee_db, employee_result, candidates=employee_candidates)
        pending = session.propose()
        state = pickle.loads(pickle.dumps(session.capture_state()))
        restored = QFESession.from_state(employee_db, employee_result, state)
        assert restored.status == "awaiting-choice"
        replayed = restored.propose()
        assert replayed.iteration == pending.iteration
        assert replayed.partition.group_count == pending.partition.group_count
        assert tuple(replayed.round.database_delta.describe()) == tuple(
            pending.round.database_delta.describe()
        )


class TestCloseIdempotence:
    def test_close_twice_and_context_manager(self, employee_db, employee_result,
                                             employee_candidates):
        with QFESession(employee_db, employee_result, candidates=employee_candidates) as session:
            session.run(WorstCaseSelector())
            session.close()
        session.close()  # exiting the with closed once; this is the third call

    def test_session_usable_after_close(self, employee_db, employee_result,
                                        employee_candidates):
        session = QFESession(employee_db, employee_result, candidates=employee_candidates)
        session.run(WorstCaseSelector())
        session.close()
        outcome = session.run(WorstCaseSelector())
        assert outcome.converged

    def test_close_after_mid_session_exception_releases_pool(self, employee_db,
                                                             employee_result,
                                                             employee_candidates):
        class ExplodingSelector:
            def select(self, round_, partition):
                raise RuntimeError("user fell off the internet")

        session = QFESession(
            employee_db, employee_result, candidates=employee_candidates, workers=2
        )
        with pytest.raises(RuntimeError):
            session.run(ExplodingSelector())
        # run() released the pool on the way out; close() again is safe.
        assert session._generator.backend._executor is None
        session.close()
        session.close()

    def test_shared_backend_not_closed_by_run(self, employee_db, employee_result,
                                              employee_candidates):
        backend = ProcessPoolBackend(2)
        try:
            session = QFESession(
                employee_db, employee_result, candidates=employee_candidates,
                backend=backend,
            )
            outcome = session.run(WorstCaseSelector())
            assert outcome.converged
            # The injected pool survives run() and close(): the service owns it.
            assert backend._executor is not None
            session.close()
            assert backend._executor is not None
        finally:
            backend.close()
        assert backend._executor is None

    def test_shared_join_cache_not_cleared_by_close(self, employee_db, employee_result,
                                                    employee_candidates):
        from repro.relational.evaluator import JoinCache

        shared = JoinCache()
        session = QFESession(
            employee_db, employee_result, candidates=employee_candidates,
            join_cache=shared,
        )
        session.run(WorstCaseSelector())
        assert shared.cached_join_count > 0
        session.close()
        assert shared.cached_join_count > 0  # shared caches outlive the session

        owned = QFESession(employee_db, employee_result, candidates=employee_candidates)
        owned.run(WorstCaseSelector())
        assert owned.join_cache.cached_join_count > 0
        owned.close()
        assert owned.join_cache.cached_join_count == 0  # owned cache is released
