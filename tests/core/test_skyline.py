"""Unit tests for Algorithm 3 (Skyline-STC-DTC-Pairs)."""

import pytest

from repro.core.config import QFEConfig
from repro.core.modification import PairSetSimulator, simulate_pair_set
from repro.core.skyline import skyline_stc_dtc_pairs
from repro.core.tuple_class import TupleClassSpace
from repro.relational.join import full_join


@pytest.fixture()
def employee_space(employee_db, employee_candidates):
    return TupleClassSpace(full_join(employee_db), employee_candidates)


class TestSkyline:
    def test_finds_distinguishing_pairs(self, employee_space):
        result = skyline_stc_dtc_pairs(employee_space, QFEConfig(), result_arity=1)
        assert result.pair_count >= 1
        assert result.enumerated_pairs >= result.pair_count
        assert result.elapsed_seconds >= 0

    def test_pairs_have_minimum_balance(self, employee_space):
        result = skyline_stc_dtc_pairs(employee_space, QFEConfig(), result_arity=1)
        best = min(result.pair_balances.values())
        for pair in result.pairs:
            effect = simulate_pair_set(employee_space, [pair], result_arity=1)
            assert effect.balance == pytest.approx(result.pair_balances[pair])
        assert best < float("inf")

    def test_all_returned_pairs_distinguish(self, employee_space):
        result = skyline_stc_dtc_pairs(employee_space, QFEConfig(), result_arity=1)
        for pair in result.pairs:
            effect = simulate_pair_set(employee_space, [pair], result_arity=1)
            assert effect.partitions_queries

    def test_source_and_destination_differ(self, employee_space):
        result = skyline_stc_dtc_pairs(employee_space, QFEConfig(), result_arity=1)
        for pair in result.pairs:
            assert pair.source != pair.destination
            assert pair.edit_cost >= 1

    def test_pair_cap_respected(self, employee_space):
        config = QFEConfig(max_skyline_pairs=2)
        result = skyline_stc_dtc_pairs(employee_space, config, result_arity=1)
        assert result.pair_count <= 2

    def test_time_budget_truncates(self, employee_space):
        config = QFEConfig(delta_seconds=1e-6)
        result = skyline_stc_dtc_pairs(employee_space, config, result_arity=1)
        # With an (effectively) zero budget the enumeration stops early but
        # still returns whatever it found so far without crashing.
        assert result.truncated_by_time or result.pair_count >= 0

    def test_most_balanced_binary_x(self, employee_space, employee_candidates):
        result = skyline_stc_dtc_pairs(employee_space, QFEConfig(), result_arity=1)
        if result.most_balanced_binary_x is not None:
            assert 1 <= result.most_balanced_binary_x <= len(employee_candidates) // 2

    def test_shared_simulator_is_used(self, employee_space):
        simulator = PairSetSimulator(employee_space, result_arity=1)
        skyline_stc_dtc_pairs(employee_space, QFEConfig(), result_arity=1, simulator=simulator)
        assert len(simulator._pair_cache) > 0
