"""Unit tests for materializing class pairs into concrete databases."""

import pytest

from repro.core.config import QFEConfig
from repro.core.materialize import materialize_pairs
from repro.core.modification import ClassPair
from repro.core.skyline import skyline_stc_dtc_pairs
from repro.core.tuple_class import TupleClassSpace
from repro.relational.constraints import modification_is_valid
from repro.relational.edit import min_edit_database
from repro.relational.join import full_join
from repro.relational.predicates import ComparisonOp, DNFPredicate, Term
from repro.relational.query import SPJQuery


@pytest.fixture()
def employee_space(employee_db, employee_candidates):
    return TupleClassSpace(full_join(employee_db), employee_candidates)


def _skyline_pairs(space):
    return skyline_stc_dtc_pairs(space, QFEConfig(), result_arity=1).pairs


class TestMaterialization:
    def test_original_database_untouched(self, employee_db, employee_space):
        pairs = _skyline_pairs(employee_space)[:1]
        before = [tuple(row.values) for row in employee_db.relation("Employee").tuples]
        materialize_pairs(employee_space, pairs, employee_db, QFEConfig())
        after = [tuple(row.values) for row in employee_db.relation("Employee").tuples]
        assert before == after

    def test_modified_database_differs(self, employee_db, employee_space):
        pairs = _skyline_pairs(employee_space)[:1]
        result = materialize_pairs(employee_space, pairs, employee_db, QFEConfig())
        assert result.applied
        assert min_edit_database(employee_db, result.database) >= 1

    def test_applied_modifications_match_pair_edit_cost(self, employee_db, employee_space):
        pairs = _skyline_pairs(employee_space)[:1]
        result = materialize_pairs(employee_space, pairs, employee_db, QFEConfig())
        assert result.modification_count == pairs[0].edit_cost
        assert result.modified_tuple_count == 1
        assert result.modified_relation_count == 1

    def test_modified_row_moves_to_destination_class(self, employee_db, employee_space):
        pairs = _skyline_pairs(employee_space)[:1]
        result = materialize_pairs(employee_space, pairs, employee_db, QFEConfig())
        modification = result.applied[0]
        new_space = TupleClassSpace(full_join(result.database), list(employee_space.queries))
        # the joined row built from the modified base tuple must now evaluate
        # each query the same way the destination class does
        joined = new_space.joined
        positions = joined.joined_positions_of(modification.table, modification.tuple_id)
        assert positions
        for query_index in range(len(employee_space.queries)):
            expected = employee_space.matches(query_index, pairs[0].destination)
            row = joined.rows_as_mappings()[positions[0]]
            assert employee_space.queries[query_index].predicate.evaluate_row(row) == expected

    def test_constraints_preserved(self, employee_db, employee_space):
        pairs = _skyline_pairs(employee_space)[:3]
        result = materialize_pairs(employee_space, pairs, employee_db, QFEConfig())
        assert modification_is_valid(result.database)

    def test_protected_key_columns_skipped(self, employee_db):
        # a candidate set whose only selection attribute is the primary key
        queries = [
            SPJQuery(["Employee"], ["Employee.name"],
                     DNFPredicate.from_terms([Term("Employee.Eid", ComparisonOp.LE, 2)])),
            SPJQuery(["Employee"], ["Employee.name"],
                     DNFPredicate.from_terms([Term("Employee.Eid", ComparisonOp.IN, (1, 2))])),
        ]
        space = TupleClassSpace(full_join(employee_db), queries)
        pairs = [
            ClassPair(source, destination)
            for source in space.source_tuple_classes()
            for destination in space.destination_classes(source, 1)
        ][:2]
        result = materialize_pairs(space, pairs, employee_db, QFEConfig())
        assert not result.applied
        assert len(result.skipped_pairs) == len(pairs)
        permissive = materialize_pairs(
            space, pairs, employee_db, QFEConfig(protect_key_columns=False)
        )
        assert permissive.applied  # uniqueness is still preserved by the value choice
        assert modification_is_valid(permissive.database)

    def test_side_effect_preference(self, baseball_db):
        # Team attributes fan out to many joined rows through Batting; the
        # materializer prefers base tuples with fanout 1 when possible, and
        # records side effects when not.
        queries = [
            SPJQuery(["Manager", "Team", "Batting"], ["Manager.managerID"],
                     DNFPredicate.from_terms([Term("Batting.HR", ComparisonOp.GT, 20)])),
            SPJQuery(["Manager", "Team", "Batting"], ["Manager.managerID"],
                     DNFPredicate.from_terms([Term("Batting.AB", ComparisonOp.GT, 300)])),
        ]
        space = TupleClassSpace(full_join(baseball_db), queries)
        pairs = _skyline_pairs(space)[:1]
        result = materialize_pairs(space, pairs, baseball_db, QFEConfig())
        assert result.applied
        assert result.side_effect_count == 0
