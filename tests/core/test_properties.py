"""Hypothesis property tests for the QFE core.

Invariants covered:

* Tuple classes: every joined row belongs to exactly one class, and every
  candidate query is constant on every class (the defining property of
  Section 5.1) — checked over randomly generated databases and predicates.
* Pair-set simulation: group sizes always sum to |QC| and a single-pair
  modification never induces more than four groups (Lemma 5.1).
* Balance score: permutation-invariant and minimized by perfect balance.
* Iteration estimates are monotone in the largest subset size.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.cost_model import balance_score, estimate_iterations_naive, estimate_iterations_refined
from repro.core.modification import ClassPair, simulate_pair_set
from repro.core.tuple_class import TupleClassSpace
from repro.relational.database import Database
from repro.relational.join import full_join
from repro.relational.predicates import ComparisonOp, DNFPredicate, Term
from repro.relational.query import SPJQuery

_SETTINGS = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])

_rows = st.lists(
    st.tuples(
        st.integers(0, 40),
        st.sampled_from(["red", "green", "blue", "black"]),
        st.integers(0, 10),
    ),
    min_size=2,
    max_size=12,
)

_numeric_term = st.builds(
    Term,
    st.just("T.a"),
    st.sampled_from([ComparisonOp.LT, ComparisonOp.LE, ComparisonOp.GT, ComparisonOp.GE]),
    st.integers(0, 40),
)
_categorical_term = st.builds(
    Term,
    st.just("T.b"),
    st.just(ComparisonOp.EQ),
    st.sampled_from(["red", "green", "blue", "black"]),
)
_term = st.one_of(_numeric_term, _categorical_term)
_queries = st.lists(
    st.builds(
        lambda terms: SPJQuery(["T"], ["T.c"], DNFPredicate.from_terms(terms)),
        st.lists(_term, min_size=1, max_size=2),
    ),
    min_size=2,
    max_size=5,
    unique_by=lambda q: q.canonical_key(),
)


def _space(rows, queries):
    database = Database.from_tables({"T": (["a", "b", "c"], [list(r) for r in rows])})
    return TupleClassSpace(full_join(database), queries)


class TestTupleClassProperties:
    @_SETTINGS
    @given(_rows, _queries)
    def test_rows_partitioned_exactly_once(self, rows, queries):
        space = _space(rows, queries)
        total = sum(len(space.rows_in_class(tc)) for tc in space.source_tuple_classes())
        assert total == len(rows)

    @_SETTINGS
    @given(_rows, _queries)
    def test_queries_constant_on_classes(self, rows, queries):
        space = _space(rows, queries)
        mappings = space.joined.rows_as_mappings()
        for position, row in enumerate(mappings):
            tuple_class = space.class_of_row(position)
            for query_index, query in enumerate(queries):
                assert space.matches(query_index, tuple_class) == query.predicate.evaluate_row(row)


class TestSimulationProperties:
    @_SETTINGS
    @given(_rows, _queries)
    def test_single_pair_group_bounds(self, rows, queries):
        space = _space(rows, queries)
        sources = space.source_tuple_classes()
        checked = 0
        for source in sources:
            for destination in space.destination_classes(source, 1):
                effect = simulate_pair_set(space, [ClassPair(source, destination)], result_arity=1)
                assert 1 <= effect.group_count <= 4
                assert sum(effect.group_sizes) == len(queries)
                checked += 1
                if checked >= 12:
                    return


class TestScoreProperties:
    @_SETTINGS
    @given(st.lists(st.integers(1, 30), min_size=2, max_size=6))
    def test_balance_permutation_invariant_and_nonnegative(self, sizes):
        forward = balance_score(sizes)
        backward = balance_score(list(reversed(sizes)))
        assert forward == pytest.approx(backward)
        assert forward >= 0

    @_SETTINGS
    @given(st.integers(2, 40))
    def test_perfect_balance_is_minimal(self, n):
        assert balance_score([n, n]) <= balance_score([2 * n - 1, 1])

    @_SETTINGS
    @given(st.integers(1, 64), st.integers(1, 64))
    def test_naive_estimate_monotone(self, a, b):
        low, high = sorted((a, b))
        assert estimate_iterations_naive([low]) <= estimate_iterations_naive([high])

    @_SETTINGS
    @given(st.integers(2, 64), st.integers(1, 8))
    def test_refined_estimate_nonnegative_and_finite(self, largest, x):
        estimate = estimate_iterations_refined([largest, x], x)
        assert 0 <= estimate < 10 * largest
