"""Unit tests for the Section 6 extensions (join-schema groups, set semantics)."""

from repro.core.config import QFEConfig
from repro.core.extensions import GroupedSessionResult, group_by_join_schema, run_grouped_session
from repro.core.feedback import OracleSelector
from repro.relational.evaluator import evaluate
from repro.relational.predicates import ComparisonOp, DNFPredicate, Term
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation


def _emp_query(terms, projection=("Emp.ename",), tables=("Emp",)):
    return SPJQuery(list(tables), list(projection), DNFPredicate.from_terms(terms))


class TestGroupByJoinSchema:
    def test_groups_by_table_set(self, two_table_db):
        single = _emp_query([Term("Emp.salary", ComparisonOp.GT, 60)])
        joined = _emp_query(
            [Term("Dept.budget", ComparisonOp.GE, 80)], tables=("Emp", "Dept")
        )
        groups = group_by_join_schema([single, joined, single.with_predicate(
            DNFPredicate.from_terms([Term("Emp.salary", ComparisonOp.GE, 65)])
        )])
        assert len(groups) == 2
        assert len(groups[0]) == 2  # larger group first
        assert len(groups[1]) == 1

    def test_join_order_does_not_split_groups(self):
        a = SPJQuery(["A", "B"], ["A.x"])
        b = SPJQuery(["B", "A"], ["A.x"])
        assert len(group_by_join_schema([a, b])) == 1


class TestGroupedSession:
    def test_identifies_target_across_groups(self, two_table_db):
        target = _emp_query([Term("Emp.salary", ComparisonOp.GT, 60)])
        other_schema = SPJQuery(
            ["Emp", "Dept"], ["Emp.ename"],
            DNFPredicate.from_terms([Term("Dept.budget", ComparisonOp.GE, 60)]),
        )
        same_schema_variant = _emp_query([Term("Emp.salary", ComparisonOp.GE, 65)])
        candidates = [target, same_schema_variant, other_schema]
        result = evaluate(target, two_table_db, name="R")
        outcome = run_grouped_session(
            two_table_db, result, candidates,
            selector_factory=lambda group: OracleSelector(target),
            config=QFEConfig(delta_seconds=0.2),
        )
        assert isinstance(outcome, GroupedSessionResult)
        assert outcome.converged
        assert outcome.identified_query == target
        assert outcome.groups_processed >= 1

    def test_single_query_group_accepted_immediately(self, two_table_db):
        lone = _emp_query([Term("Emp.salary", ComparisonOp.GT, 60)])
        result = evaluate(lone, two_table_db, name="R")
        outcome = run_grouped_session(
            two_table_db, result, [lone],
            selector_factory=lambda group: OracleSelector(lone),
        )
        assert outcome.converged
        assert outcome.total_iterations == 0

    def test_accept_group_callback_can_reject(self, two_table_db):
        first = _emp_query([Term("Emp.salary", ComparisonOp.GT, 60)])
        second = SPJQuery(
            ["Emp", "Dept"], ["Emp.ename"],
            DNFPredicate.from_terms([Term("Dept.budget", ComparisonOp.GE, 60)]),
        )
        result = evaluate(first, two_table_db, name="R")
        seen = []
        outcome = run_grouped_session(
            two_table_db, result, [first, second],
            selector_factory=lambda group: OracleSelector(first),
            accept_group=lambda query: seen.append(query) or False,
        )
        # every group was offered, none accepted
        assert not outcome.converged
        assert outcome.groups_processed == 2
        assert len(seen) >= 1


class TestSetSemantics:
    def test_set_semantics_session(self, two_table_db):
        # Two candidates that differ only in duplicates on the original data;
        # under set semantics they are indistinguishable there, and QFE must
        # distinguish them by inserting a *new* value into one of the results
        # (the paper's Section 6.1 second approach).
        q_gender = SPJQuery(
            ["Emp", "Dept"], ["Dept.dname"],
            DNFPredicate.from_terms([Term("Emp.salary", ComparisonOp.GE, 60)]), distinct=True,
        )
        q_budget = SPJQuery(
            ["Emp", "Dept"], ["Dept.dname"],
            DNFPredicate.from_terms([Term("Dept.budget", ComparisonOp.GE, 80)]), distinct=True,
        )
        result = evaluate(q_gender, two_table_db, name="R")
        assert result.set_equal(evaluate(q_budget, two_table_db, name="R"))
        from repro.core.session import QFESession

        session = QFESession(
            two_table_db, result, candidates=[q_gender, q_budget],
            config=QFEConfig(set_semantics=True, delta_seconds=0.2),
        )
        outcome = session.run(OracleSelector(q_budget, set_semantics=True))
        assert outcome.converged or outcome.exhausted
        if outcome.converged:
            assert outcome.identified_query == q_budget
