"""Unit tests for partitioning candidates by their results."""

from repro.core.partitioner import partition_queries
from repro.relational.evaluator import JoinCache, evaluate
from repro.relational.predicates import ComparisonOp, DNFPredicate, Term
from repro.relational.query import SPJQuery


class TestPartitionQueries:
    def test_all_candidates_agree_on_original_database(self, employee_db, employee_candidates):
        partition = partition_queries(employee_candidates, employee_db)
        assert partition.group_count == 1
        assert not partition.distinguishes
        assert len(partition.largest_group()) == 3

    def test_partition_on_modified_database(self, employee_db, employee_candidates):
        modified = employee_db.copy()
        modified.relation("Employee").update_value(1, "salary", 3900)  # Bob below 4000
        partition = partition_queries(employee_candidates, modified)
        # salary > 4000 now excludes Bob; gender = 'M' and dept = 'IT' still include him
        assert partition.group_count == 2
        assert partition.group_sizes == (2, 1)

    def test_groups_carry_results(self, employee_db, employee_candidates):
        modified = employee_db.copy()
        modified.relation("Employee").update_value(1, "salary", 3900)
        partition = partition_queries(employee_candidates, modified)
        for group in partition.groups:
            for query in group.queries:
                assert evaluate(query, modified).bag_equal(group.result)

    def test_group_containing(self, employee_db, employee_candidates):
        modified = employee_db.copy()
        modified.relation("Employee").update_value(1, "salary", 3900)
        partition = partition_queries(employee_candidates, modified)
        target = employee_candidates[1]  # salary > 4000
        group = partition.group_containing(target)
        assert group is not None and len(group) == 1
        unknown = SPJQuery(["Employee"], ["Employee.name"],
                           DNFPredicate.from_terms([Term("Employee.salary", ComparisonOp.LT, 100)]))
        assert partition.group_containing(unknown) is None

    def test_groups_ordered_largest_first(self, employee_db, employee_candidates):
        modified = employee_db.copy()
        modified.relation("Employee").update_value(1, "salary", 3900)
        partition = partition_queries(employee_candidates, modified)
        sizes = [len(group) for group in partition.groups]
        assert sizes == sorted(sizes, reverse=True)

    def test_set_semantics_partitioning(self, employee_db):
        queries = [
            SPJQuery(["Employee"], ["Employee.dept"],
                     DNFPredicate.from_terms([Term("Employee.gender", ComparisonOp.EQ, "M")])),
            SPJQuery(["Employee"], ["Employee.dept"],
                     DNFPredicate.from_terms([Term("Employee.dept", ComparisonOp.EQ, "IT")]),
                     distinct=True),
        ]
        bag_partition = partition_queries(queries, employee_db)
        set_partition = partition_queries(queries, employee_db, set_semantics=True)
        assert bag_partition.group_count == 2  # ('IT','IT') vs ('IT',)
        assert set_partition.group_count == 1  # both collapse to {'IT'}

    def test_join_cache_can_be_shared(self, employee_db, employee_candidates):
        cache = JoinCache()
        partition_queries(employee_candidates, employee_db, join_cache=cache)
        assert partition_queries(employee_candidates, employee_db, join_cache=cache).group_count == 1

    def test_query_indexes_preserved(self, employee_db, employee_candidates):
        partition = partition_queries(employee_candidates, employee_db)
        assert sorted(i for g in partition.groups for i in g.query_indexes) == [0, 1, 2]
