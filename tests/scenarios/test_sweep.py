"""Tests for the scenario sweep (serial legs; pooled legs live in the
integration differential suite)."""

import json

import pytest

from repro.scenarios.sweep import DEFAULT_BENCH_PATH, run_sweep, sweep_table


class TestRunSweep:
    def test_serial_sweep_writes_a_populated_trajectory(self, tmp_path):
        out = tmp_path / "BENCH_scenarios.json"
        payload = run_sweep(
            ["chain"], [0.05, 0.1], seed=9, workers=0, candidate_count=6, out_path=out
        )
        assert out.exists()
        on_disk = json.loads(out.read_text())
        assert on_disk == payload
        entry = payload["scenarios"]["chain"]
        assert entry["spec"]["name"] == "chain"
        trajectory = entry["trajectory"]
        assert [point["scale"] for point in trajectory] == [0.05, 0.1]
        for point in trajectory:
            assert point["oracle_checked_queries"] == entry["spec"]["query_count"]
            assert point["result_rows"] > 0
            assert point["candidates"] >= 2
            assert point["iterations"] >= 1
            assert point["serial_seconds"] > 0
            assert point["cold_eval_seconds"] > 0
            assert point["delta_eval_seconds"] > 0
            assert len(point["transcript_sha256"]) == 64
            # workers=0 skips the pooled leg entirely
            assert "pooled_seconds" not in point
            # the sql-pushdown leg always runs and is checked against serial
            assert point["sql_seconds"] > 0
            assert point["transcripts_identical"] is True
            assert set(point["backend_seconds"]) == {"serial", "sql"}
            assert point["fastest_backend"] in point["backend_seconds"]
        # the trajectory actually sweeps: row counts grow with scale
        assert trajectory[1]["total_rows"] > trajectory[0]["total_rows"]

    def test_sweep_is_deterministic_per_seed(self, tmp_path):
        kwargs = dict(seed=4, workers=0, candidate_count=5, out_path=None)
        a = run_sweep(["star"], [0.05], **kwargs)
        b = run_sweep(["star"], [0.05], **kwargs)
        pa = a["scenarios"]["star"]["trajectory"][0]
        pb = b["scenarios"]["star"]["trajectory"][0]
        assert pa["transcript_sha256"] == pb["transcript_sha256"]
        assert pa["rows_by_table"] == pb["rows_by_table"]

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            run_sweep(["no-such-scenario"], [0.05], workers=0, out_path=None)

    def test_default_bench_path_points_into_benchmarks(self):
        assert DEFAULT_BENCH_PATH.parts[-2:] == ("benchmarks", "BENCH_scenarios.json")


class TestSweepTable:
    def test_renders_one_row_per_point(self):
        payload = run_sweep(["chain"], [0.05], seed=2, workers=0, out_path=None)
        table = sweep_table(payload)
        assert len(table.rows) == 1
        text = table.render()
        assert "chain" in text and "serial s" in text
