"""Unit tests for the scenario engine: spec validation, generation, catalog."""

import pytest

from repro.relational.evaluator import evaluate
from repro.scenarios import (
    SCENARIOS,
    ScenarioSpec,
    generate_scenario,
    parse_scenario_name,
    scenario_names,
    scenario_workload,
)
from repro.scenarios.generator import HUGE_BASE, scenario_queries, scenario_tables
from repro.sql.sqlite_backend import SQLiteBackend, cross_check
from repro.workloads import build_pair, workload

_SEED = 1234


class TestSpec:
    def test_table_count_follows_depth_and_fanout(self):
        assert ScenarioSpec(name="x", depth=0, fanout=3).table_count == 1
        assert ScenarioSpec(name="x", depth=1, fanout=3).table_count == 4
        assert ScenarioSpec(name="x", depth=2, fanout=2).table_count == 7

    def test_validation_rejects_degenerate_knobs(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="")
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", depth=-1)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", fanout=0)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", selectivity=1.5)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", query_count=1)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", int_domain=(5, 5))
        with pytest.raises(ValueError):
            ScenarioSpec(
                name="x", int_columns=0, float_columns=0, str_columns=0, bool_columns=0
            )

    def test_to_json_is_plain_data(self):
        import json

        payload = SCENARIOS["mixed"].to_json()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["table_count"] == 7


class TestGeneration:
    def test_same_seed_is_bit_reproducible(self):
        spec = SCENARIOS["mixed"]
        a = generate_scenario(spec, 0.2, _SEED)
        b = generate_scenario(spec, 0.2, _SEED)
        assert a.queries == b.queries
        for name in a.database.table_names:
            assert a.database.relation(name).rows() == b.database.relation(name).rows()

    def test_different_seeds_differ(self):
        spec = SCENARIOS["mixed"]
        a = generate_scenario(spec, 0.2, _SEED)
        b = generate_scenario(spec, 0.2, _SEED + 1)
        assert any(
            a.database.relation(n).rows() != b.database.relation(n).rows()
            for n in a.database.table_names
        )

    def test_queries_are_scale_invariant(self):
        spec = SCENARIOS["chain"]
        assert (
            scenario_queries(spec, _SEED)
            == generate_scenario(spec, 0.05, _SEED).queries
            == generate_scenario(spec, 0.9, _SEED).queries
        )

    def test_row_counts_grow_with_scale(self):
        spec = SCENARIOS["star"]
        small = generate_scenario(spec, 0.1, _SEED)
        large = generate_scenario(spec, 1.0, _SEED)
        assert large.total_rows > small.total_rows
        for name, count in small.rows_by_table().items():
            assert large.rows_by_table()[name] >= count

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_foreign_keys_are_referentially_intact(self, name):
        generated = generate_scenario(SCENARIOS[name], 0.15, _SEED)
        database = generated.database
        for fk in database.schema.foreign_keys:
            parent_ids = set(database.relation(fk.parent_table).column("id"))
            for value in database.relation(fk.child_table).column("parent_id"):
                assert value in parent_ids

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_every_query_has_a_non_empty_result_even_tiny(self, name):
        generated = generate_scenario(SCENARIOS[name], 0.02, _SEED)
        for query in generated.queries:
            query.validate(generated.database.schema)
            assert len(evaluate(query, generated.database)) > 0, str(query)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_sqlite_oracle_agrees_on_every_query(self, name):
        generated = generate_scenario(SCENARIOS[name], 0.15, _SEED)
        # One mirror connection for the whole workload, not one per query.
        with SQLiteBackend(generated.database) as backend:
            for query in generated.queries:
                assert cross_check(query, generated.database, backend=backend), str(query)

    def test_mixed_scenario_exercises_the_huge_int_regime(self):
        generated = generate_scenario(SCENARIOS["mixed"], 0.2, _SEED)
        constants = {
            c
            for query in generated.queries
            for term in query.predicate.terms()
            for c in term.constants()
            if isinstance(c, int) and not isinstance(c, bool) and c > 2**50
        }
        assert constants, "mixed scenario must place constants near 2^53"
        assert all(abs(c - HUGE_BASE) <= 1 for c in constants)
        values = set(generated.database.relation("t0").column("big0"))
        assert any(v % 2 == 1 for v in values if v is not None), (
            "odd huge ints (indistinguishable after a float() round-trip) "
            "must appear in the data"
        )

    def test_too_small_predicate_space_fails_loudly(self):
        # A single boolean column can only yield a couple of distinct
        # predicates; asking for 8 queries must raise, not silently return a
        # short workload (the sweep records the spec's promised count).
        spec = ScenarioSpec(
            name="tiny", depth=0, int_columns=0, float_columns=0,
            str_columns=0, bool_columns=1, query_count=8,
        )
        with pytest.raises(ValueError, match="distinct queries"):
            scenario_queries(spec, _SEED)

    def test_tree_shape_matches_spec(self):
        tables = scenario_tables(SCENARIOS["mixed"])
        assert len(tables) == 7
        assert tables[0].parent is None
        children = [t for t in tables if t.parent == "t0"]
        assert len(children) == 2
        grandchildren = [t for t in tables if t.parent == children[0].name]
        assert len(grandchildren) == 2


class TestCatalogAndWorkloadBridge:
    def test_catalog_has_at_least_three_presets(self):
        assert len(scenario_names()) >= 3
        assert {"chain", "star", "mixed"} <= set(scenario_names())

    def test_parse_scenario_name(self):
        spec, seed = parse_scenario_name("scenario:mixed")
        assert spec is SCENARIOS["mixed"] and seed is None
        spec, seed = parse_scenario_name("scenario:chain@42")
        assert spec is SCENARIOS["chain"] and seed == 42
        assert parse_scenario_name("Q2") is None
        with pytest.raises(KeyError):
            parse_scenario_name("scenario:nope")
        with pytest.raises(ValueError):
            parse_scenario_name("scenario:chain@notanint")

    def test_workload_lookup_resolves_scenarios(self):
        entry = workload("scenario:star@7")
        assert entry.dataset == "scenario"
        assert entry.name == "scenario:star@7"
        with pytest.raises(KeyError, match="scenario:<preset>"):
            workload("scenario-typo")

    def test_build_pair_matches_direct_generation(self):
        database, result, target = build_pair("scenario:chain@5", 0.2)
        direct = generate_scenario(SCENARIOS["chain"], 0.2, 5)
        assert target == direct.target
        for name in direct.database.table_names:
            assert database.relation(name).rows() == direct.database.relation(name).rows()
        assert result.bag_equal(evaluate(direct.target, direct.database))
