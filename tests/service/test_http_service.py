"""Integration tests for the HTTP JSON API and its client."""

import pytest

from repro.core import QFEConfig, QFESession, WorstCaseSelector
from repro.service.checkpoint import session_transcript, transcript_json
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.manager import SessionManager, workload_session_inputs
from repro.service.server import make_server
from repro.service.store import InMemorySessionStore

_SPEC = dict(scale=0.03, candidate_count=8, config={"delta_seconds": 30.0})


@pytest.fixture(scope="module")
def service():
    manager = SessionManager(store=InMemorySessionStore())
    server = make_server(manager)
    server.serve_background()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    yield client
    server.close()


def _drive_http(client, session_id):
    rounds = 0
    while True:
        payload = client.get_round(session_id)
        if payload["round"] is None:
            return payload, rounds
        client.submit_choice(session_id, ServiceClient.worst_case_choice(payload))
        rounds += 1


class TestPlumbing:
    def test_healthz_and_metrics(self, service):
        health = service.healthz()
        assert health["status"] == "ok"
        metrics = service.metrics()
        assert "rounds_served" in metrics
        assert "round_latency_seconds" in metrics

    def test_unknown_routes_and_sessions(self, service):
        with pytest.raises(ServiceClientError) as excinfo:
            service.get_round("s-missing")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceClientError) as excinfo:
            service._request("GET", "/nonsense")
        assert excinfo.value.status == 404

    def test_create_session_validation(self, service):
        for payload in (
            {},  # no workload
            {"workload": "Q2", "scale": -1},
            {"workload": "Q2", "candidate_count": 1},
            {"workload": "Q2", "config": {"workers": 4}},  # server-side only
            {"workload": "Q2", "config": {"nonsense": True}},
            {"workload": "Q2", "config": {"beta": "high"}},  # wrong type -> 400
            {"workload": "Q2", "config": {"delta_seconds": -1}},
        ):
            with pytest.raises(ServiceClientError) as excinfo:
                service._request("POST", "/sessions", payload)
            assert excinfo.value.status == 400

    def test_choice_validation(self, service):
        sid = service.create_session("Q2", **_SPEC)["session_id"]
        try:
            service.get_round(sid)
            with pytest.raises(ServiceClientError) as excinfo:
                service._request("POST", f"/sessions/{sid}/choice", {})
            assert excinfo.value.status == 400
            with pytest.raises(ServiceClientError) as excinfo:
                service.submit_choice(sid, 99)
            assert excinfo.value.status == 400
            # The bad choice left the round pending: a valid one still works.
            payload = service.get_round(sid)
            assert payload["round"] is not None
        finally:
            service.delete_session(sid)

    def test_delete_404_on_second_delete(self, service):
        sid = service.create_session("Q2", **_SPEC)["session_id"]
        assert service.delete_session(sid) == {"deleted": sid}
        with pytest.raises(ServiceClientError) as excinfo:
            service.delete_session(sid)
        assert excinfo.value.status == 404


class TestFullSession:
    def test_http_session_is_bit_identical_to_in_process_run(self, service):
        # In-process reference: same deterministic inputs, same worst-case user.
        database, result, _, candidates = workload_session_inputs(
            "Q2", 0.03, candidate_count=8
        )
        reference = QFESession(
            database, result, candidates=candidates,
            config=QFEConfig(delta_seconds=30.0),
        )
        reference.run(WorstCaseSelector())
        expected = transcript_json(session_transcript(reference, workload="Q2"))

        created = service.create_session("Q2", **_SPEC)
        sid = created["session_id"]
        assert created["status"] == "new"
        final, rounds = _drive_http(service, sid)
        assert final["status"] == "converged"
        assert final["identified_sql"].startswith("SELECT")
        assert rounds == reference.outcome.iteration_count

        assert transcript_json(service.transcript(sid)) == expected
        timed = service.transcript(sid, include_timings=True)
        assert "total_seconds" in timed
        assert sid in service.list_sessions()
        service.delete_session(sid)

    def test_round_payload_shape(self, service):
        sid = service.create_session("Q2", **_SPEC)["session_id"]
        try:
            payload = service.get_round(sid)
            round_ = payload["round"]
            assert round_["iteration"] == 1
            assert round_["option_count"] == len(round_["options"]) >= 2
            assert round_["candidate_count"] >= 2
            assert round_["database_delta"]["lines"]
            for option in round_["options"]:
                assert {"index", "query_count", "delta_cost", "delta_lines", "rows"} <= set(option)
            # Replaying the GET returns the same round (no recompute).
            replay = service.get_round(sid)
            assert replay["round"] == round_
        finally:
            service.delete_session(sid)

    def test_finished_session_choice_conflicts(self, service):
        sid = service.create_session("Q2", **_SPEC)["session_id"]
        try:
            _drive_http(service, sid)
            with pytest.raises(ServiceClientError) as excinfo:
                service.submit_choice(sid, 0)
            assert excinfo.value.status == 409
        finally:
            service.delete_session(sid)
