"""Tests for the qfe-serve command-line parser (the server loop itself is
exercised as a real subprocess by scripts/service_smoke.py)."""

import pytest

from repro.service.cli import build_parser


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.host == "127.0.0.1"
        assert args.port == 8642
        assert args.workers == 0
        assert args.backend == "auto"
        assert args.store_dir is None
        assert args.max_live_sessions == 64
        assert args.max_stored_sessions is None
        assert args.session_ttl is None
        assert not args.no_checkpoint

    def test_full_flag_set(self):
        args = build_parser().parse_args([
            "--host", "0.0.0.0", "--port", "9000", "--workers", "4",
            "--backend", "sql",
            "--store-dir", "/tmp/ckpt", "--max-live-sessions", "8",
            "--max-stored-sessions", "100", "--session-ttl", "3600",
            "--no-checkpoint", "--verbose",
        ])
        assert (args.host, args.port, args.workers) == ("0.0.0.0", 9000, 4)
        assert args.backend == "sql"
        assert args.store_dir == "/tmp/ckpt"
        assert (args.max_live_sessions, args.max_stored_sessions) == (8, 100)
        assert args.session_ttl == 3600.0
        assert args.no_checkpoint and args.verbose

    @pytest.mark.parametrize("argv", [
        ["--workers", "-1"],
        ["--backend", "mysql"],
        ["--max-live-sessions", "0"],
        ["--max-stored-sessions", "0"],
        ["--session-ttl", "0"],
    ])
    def test_invalid_values_rejected_at_parse_time(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(argv)
        assert excinfo.value.code == 2
        assert capsys.readouterr().err
