"""Unit tests for the session-checkpoint stores (in-memory and on-disk)."""

import os

import pytest

from repro.exceptions import CheckpointError, SessionNotFound
from repro.service.store import CHECKPOINT_SUFFIX, FileSessionStore, InMemorySessionStore


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        return InMemorySessionStore()
    return FileSessionStore(tmp_path / "checkpoints")


class TestBasicOperations:
    def test_put_get_roundtrip(self, store):
        store.put("s1", b"alpha")
        assert store.get("s1") == b"alpha"
        store.put("s1", b"beta")  # overwrite
        assert store.get("s1") == b"beta"

    def test_missing_session_raises(self, store):
        with pytest.raises(SessionNotFound):
            store.get("nope")

    def test_delete(self, store):
        store.put("s1", b"alpha")
        assert store.delete("s1") is True
        assert store.delete("s1") is False
        with pytest.raises(SessionNotFound):
            store.get("s1")

    def test_ids_and_len(self, store):
        store.put("b", b"2")
        store.put("a", b"1")
        assert sorted(store.ids()) == ["a", "b"]
        assert len(store) == 2
        assert "a" in store
        assert "zz" not in store

    def test_invalid_session_ids_rejected(self, store):
        for bad in ("", "../etc/passwd", "a/b", ".hidden", "x" * 200):
            with pytest.raises(CheckpointError):
                store.put(bad, b"blob")


class TestInMemoryEviction:
    def test_lru_eviction_prefers_cold_sessions(self):
        clock = FakeClock()
        store = InMemorySessionStore(max_sessions=2, clock=clock)
        store.put("old", b"1")
        clock.advance(1)
        store.put("warm", b"2")
        clock.advance(1)
        store.get("old")  # refresh recency: "old" is now the warmest
        clock.advance(1)
        store.put("new", b"3")  # evicts "warm", the least recently used
        assert sorted(store.ids()) == ["new", "old"]

    def test_ttl_expiry(self):
        clock = FakeClock()
        store = InMemorySessionStore(ttl_seconds=10.0, clock=clock)
        store.put("s1", b"1")
        clock.advance(5)
        assert store.get("s1") == b"1"  # refreshes the TTL too
        clock.advance(9)
        assert store.ids() == ["s1"]  # 9 < 10 since last use
        clock.advance(2)
        assert store.ids() == []
        with pytest.raises(SessionNotFound):
            store.get("s1")

    def test_validation(self):
        with pytest.raises(ValueError):
            InMemorySessionStore(max_sessions=0)
        with pytest.raises(ValueError):
            InMemorySessionStore(ttl_seconds=0)


class TestFileStore:
    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        store = FileSessionStore(tmp_path)
        store.put("s1", b"x" * 4096)
        store.put("s1", b"y" * 4096)
        names = [p.name for p in tmp_path.iterdir()]
        assert names == [f"s1{CHECKPOINT_SUFFIX}"]

    def test_survives_reopen(self, tmp_path):
        FileSessionStore(tmp_path).put("s1", b"durable")
        # A second store instance over the same directory (a restarted
        # process) sees the checkpoint.
        assert FileSessionStore(tmp_path).get("s1") == b"durable"

    def test_under_capacity_store_never_evicts(self, tmp_path):
        # Regression: a negative overflow slice (entries[:-1]) used to delete
        # checkpoints from the *front* while the store was UNDER capacity.
        store = FileSessionStore(tmp_path, max_sessions=4)
        store.put("a", b"1")
        store.put("b", b"2")
        store.put("c", b"3")
        assert sorted(store.ids()) == ["a", "b", "c"]
        assert store.get("a") == b"1"  # get() runs the expiry sweep too
        assert sorted(store.ids()) == ["a", "b", "c"]

    def test_lru_eviction_by_mtime(self, tmp_path):
        store = FileSessionStore(tmp_path, max_sessions=2)
        store.put("old", b"1")
        store.put("warm", b"2")
        # Backdate "warm" so "old" is the most recently used of the two.
        warm = tmp_path / f"warm{CHECKPOINT_SUFFIX}"
        past = os.stat(warm).st_mtime - 100
        os.utime(warm, (past, past))
        store.put("new", b"3")
        assert sorted(store.ids()) == ["new", "old"]

    def test_ttl_expiry_by_mtime(self, tmp_path):
        clock = FakeClock(now=1_000_000.0)
        store = FileSessionStore(tmp_path, ttl_seconds=60.0, clock=clock)
        store.put("s1", b"1")
        stale = tmp_path / f"s1{CHECKPOINT_SUFFIX}"
        os.utime(stale, (clock.now - 120, clock.now - 120))
        assert store.ids() == []
        assert not stale.exists()

    def test_get_refreshes_recency(self, tmp_path):
        store = FileSessionStore(tmp_path, max_sessions=2)
        store.put("a", b"1")
        store.put("b", b"2")
        # Backdate both, then read "a": its mtime refreshes to now.
        for name in ("a", "b"):
            path = tmp_path / f"{name}{CHECKPOINT_SUFFIX}"
            past = os.stat(path).st_mtime - 100
            os.utime(path, (past, past))
        store.get("a")
        store.put("c", b"3")  # evicts "b"
        assert sorted(store.ids()) == ["a", "c"]

    def test_directory_is_created(self, tmp_path):
        nested = tmp_path / "deep" / "nested"
        store = FileSessionStore(nested)
        store.put("s1", b"1")
        assert nested.is_dir()

    def test_eviction_orders_by_mtime_ns_not_float_seconds(self, tmp_path):
        # Regression: LRU ordering used the float ``st_mtime``, which
        # quantizes nanosecond timestamps (~256 ns spacing at current
        # epochs, whole seconds on coarse filesystems). Checkpoints written
        # close together tied, the sort fell through to path comparison, and
        # the *newest* session could be evicted. Freeze both mtimes to
        # nanosecond values that collapse onto the same float second but
        # differ in ``st_mtime_ns``; the lexically-smaller name is the newer
        # session, so the old float ordering evicted exactly the wrong file.
        store = FileSessionStore(tmp_path, max_sessions=2)
        store.put("a-newest", b"new")
        store.put("b-older", b"old")
        base_ns = (1_700_000_000_000_000_000 // 4096) * 4096
        newer_ns = base_ns + 100
        assert base_ns / 1e9 == newer_ns / 1e9  # the float tie being fixed
        os.utime(tmp_path / f"b-older{CHECKPOINT_SUFFIX}", ns=(base_ns, base_ns))
        os.utime(tmp_path / f"a-newest{CHECKPOINT_SUFFIX}", ns=(newer_ns, newer_ns))
        assert os.stat(tmp_path / f"a-newest{CHECKPOINT_SUFFIX}").st_mtime_ns == newer_ns
        store.put("c", b"3")  # evicts the ns-oldest: "b-older"
        assert sorted(store.ids()) == ["a-newest", "c"]

    def test_exact_ns_ties_break_on_name_deterministically(self, tmp_path):
        # Same nanosecond on both files: no recency signal exists at all, so
        # eviction falls back to the stable name order instead of racing.
        store = FileSessionStore(tmp_path, max_sessions=2)
        store.put("b", b"2")
        store.put("a", b"1")
        tied_ns = 1_700_000_000_000_000_000
        for name in ("a", "b"):
            os.utime(tmp_path / f"{name}{CHECKPOINT_SUFFIX}", ns=(tied_ns, tied_ns))
        store.put("c", b"3")  # one overflow slot: "a" goes first (name order)
        assert sorted(store.ids()) == ["b", "c"]

    def test_ttl_with_frozen_clock_is_ns_exact(self, tmp_path):
        # Checkpoints written "within the same second" (sub-second mtime
        # deltas) expire individually against a frozen injected clock.
        clock = FakeClock(now=2_000.0)
        store = FileSessionStore(tmp_path, ttl_seconds=1.0, clock=clock)
        store.put("stale", b"1")
        store.put("fresh", b"2")
        second_ns = 1_000_000_000
        base_ns = int(clock.now) * second_ns
        os.utime(
            tmp_path / f"stale{CHECKPOINT_SUFFIX}",
            ns=(base_ns - second_ns - 1, base_ns - second_ns - 1),
        )
        os.utime(
            tmp_path / f"fresh{CHECKPOINT_SUFFIX}",
            ns=(base_ns - second_ns + 400_000_000, base_ns - second_ns + 400_000_000),
        )
        assert store.ids() == ["fresh"]
