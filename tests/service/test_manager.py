"""Unit tests for the SessionManager: multiplexing, passivation, metrics."""

import pytest

from repro.core.feedback import WorstCaseSelector
from repro.core.session import QFESession
from repro.exceptions import ServiceError, SessionNotFound
from repro.service.checkpoint import session_transcript, transcript_json
from repro.service.manager import SessionManager
from repro.service.store import InMemorySessionStore


def _drive_managed(manager, session_id):
    """Drive a managed session to completion with worst-case choices."""
    selector = WorstCaseSelector()
    while True:
        _, pending = manager.get_round(session_id)
        if pending is None:
            return
        manager.submit_choice(
            session_id, selector.select(pending.round, pending.partition)
        )


@pytest.fixture()
def manager():
    with SessionManager(store=InMemorySessionStore()) as m:
        yield m


class TestLifecycle:
    def test_session_matches_direct_run_bit_identically(
        self, manager, employee_db, employee_result, employee_candidates
    ):
        reference = QFESession(employee_db, employee_result, candidates=employee_candidates)
        reference.run(WorstCaseSelector())
        expected = transcript_json(session_transcript(reference))

        managed = manager.create_session(
            database=employee_db, result=employee_result, candidates=employee_candidates
        )
        _drive_managed(manager, managed.session_id)
        actual = transcript_json(manager.transcript(managed.session_id))
        assert actual == expected

    def test_sessions_on_one_pair_share_base_state(
        self, manager, employee_db, employee_result, employee_candidates
    ):
        a = manager.create_session(
            database=employee_db, result=employee_result, candidates=employee_candidates
        )
        b = manager.create_session(
            database=employee_db, result=employee_result, candidates=employee_candidates
        )
        assert a.pair is b.pair
        assert a.session.join_cache is b.session.join_cache
        assert a.session.database is b.session.database
        assert manager.metrics()["shared_pairs"] == 1

    def test_unknown_session_raises(self, manager):
        with pytest.raises(SessionNotFound):
            manager.get_round("s-doesnotexist")
        with pytest.raises(SessionNotFound):
            manager.submit_choice("s-doesnotexist", 0)

    def test_delete_session(self, manager, employee_db, employee_result,
                            employee_candidates):
        managed = manager.create_session(
            database=employee_db, result=employee_result, candidates=employee_candidates
        )
        assert manager.delete_session(managed.session_id) is True
        assert manager.delete_session(managed.session_id) is False
        with pytest.raises(SessionNotFound):
            manager.get_round(managed.session_id)

    def test_duplicate_session_id_rejected(self, manager, employee_db, employee_result,
                                           employee_candidates):
        manager.create_session(
            database=employee_db, result=employee_result,
            candidates=employee_candidates, session_id="fixed",
        )
        with pytest.raises(ServiceError):
            manager.create_session(
                database=employee_db, result=employee_result,
                candidates=employee_candidates, session_id="fixed",
            )

    def test_create_requires_workload_or_pair(self, manager):
        with pytest.raises(ServiceError):
            manager.create_session()

    def test_closed_manager_refuses_new_sessions(self, employee_db, employee_result,
                                                 employee_candidates):
        manager = SessionManager()
        manager.close()
        with pytest.raises(ServiceError):
            manager.create_session(
                database=employee_db, result=employee_result,
                candidates=employee_candidates,
            )


class TestPassivationAndResume:
    def test_lru_passivation_to_store_and_transparent_resume(
        self, employee_db, employee_result, employee_candidates
    ):
        store = InMemorySessionStore()
        with SessionManager(store=store, max_live_sessions=1) as manager:
            a = manager.create_session(
                database=employee_db, result=employee_result,
                candidates=employee_candidates, session_id="a",
            )
            manager.get_round("a")
            # Creating "b" exceeds the live cap: "a" passivates to the store.
            manager.create_session(
                database=employee_db, result=employee_result,
                candidates=employee_candidates, session_id="b",
            )
            assert manager.session_ids() == ["b"]
            assert "a" in store
            assert manager.metrics()["sessions_passivated"] == 1
            # Touching "a" again resumes it from its checkpoint ("b" passivates).
            _, pending = manager.get_round("a")
            assert pending is not None
            assert manager.metrics()["sessions_resumed"] == 1
            _drive_managed(manager, "a")
            assert manager.transcript("a")["status"] == "converged"

    def test_capacity_without_store_is_refused(self, employee_db, employee_result,
                                               employee_candidates):
        with SessionManager(max_live_sessions=1) as manager:
            manager.create_session(
                database=employee_db, result=employee_result,
                candidates=employee_candidates, session_id="a",
            )
            with pytest.raises(ServiceError, match="capacity"):
                manager.create_session(
                    database=employee_db, result=employee_result,
                    candidates=employee_candidates, session_id="b",
                )
            # The refused session is not half-registered.
            assert manager.session_ids() == ["a"]

    def test_manager_restart_resumes_workload_sessions(self):
        store = InMemorySessionStore()
        with SessionManager(store=store) as manager:
            managed = manager.create_session(
                workload="Q2", scale=0.03, candidate_count=6, session_id="q2s"
            )
            manager.get_round("q2s")
        # close() checkpointed the live session; a fresh manager (fresh
        # process, conceptually) resumes it from the workload reference.
        with SessionManager(store=store) as manager2:
            assert manager2.session_ids() == []
            _, pending = manager2.get_round("q2s")
            assert pending is not None
            _drive_managed(manager2, "q2s")
            transcript = manager2.transcript("q2s")
            assert transcript["status"] in ("converged", "exhausted", "stalled")
            assert transcript["workload"] == "Q2"


class TestPairPruning:
    def test_inline_pair_dies_with_its_last_session(self, manager, employee_db,
                                                    employee_result, employee_candidates):
        a = manager.create_session(
            database=employee_db, result=employee_result, candidates=employee_candidates
        )
        b = manager.create_session(
            database=employee_db, result=employee_result, candidates=employee_candidates
        )
        assert manager.metrics()["shared_pairs"] == 1
        manager.delete_session(a.session_id)
        assert manager.metrics()["shared_pairs"] == 1  # b still references it
        manager.delete_session(b.session_id)
        assert manager.metrics()["shared_pairs"] == 0

    def test_unreferenced_workload_pairs_bounded_by_max_warm_pairs(
        self, employee_db, employee_result, employee_candidates
    ):
        with SessionManager(store=InMemorySessionStore(), max_warm_pairs=2) as manager:
            # Distinct scales of one workload each pin a full database; only
            # max_warm_pairs unreferenced ones may stay warm.
            for index, scale in enumerate((0.02, 0.025, 0.03)):
                sid = f"s{index}"
                manager.create_session(
                    workload="Q2", scale=scale, candidate_count=4, session_id=sid
                )
                manager.delete_session(sid)
            assert manager.metrics()["shared_pairs"] <= 2


class TestMetrics:
    def test_metrics_shape_and_counters(self, manager, employee_db, employee_result,
                                        employee_candidates):
        managed = manager.create_session(
            database=employee_db, result=employee_result, candidates=employee_candidates
        )
        _drive_managed(manager, managed.session_id)
        metrics = manager.metrics()
        assert metrics["sessions_created"] == 1
        assert metrics["rounds_served"] >= 1
        assert metrics["choices_submitted"] >= 1
        assert metrics["checkpoints_written"] >= 2
        assert metrics["active_sessions"] == 1
        latency = metrics["round_latency_seconds"]
        assert latency["count"] == metrics["rounds_served"]
        assert latency["p50"] is not None and latency["p50"] >= 0
        assert latency["p95"] is not None and latency["p95"] >= latency["p50"] * 0.0
        assert manager.healthz()["status"] == "ok"

    def test_round_replay_is_not_double_counted(self, manager, employee_db,
                                                employee_result, employee_candidates):
        managed = manager.create_session(
            database=employee_db, result=employee_result, candidates=employee_candidates
        )
        manager.get_round(managed.session_id)
        manager.get_round(managed.session_id)  # idempotent replay
        assert manager.metrics()["rounds_served"] == 1
