"""Unit tests for the versioned checkpoint and transcript serializers."""

import json

import pytest

from repro.core.feedback import WorstCaseSelector
from repro.core.session import QFESession
from repro.exceptions import CheckpointError
from repro.service.checkpoint import (
    CHECKPOINT_VERSION,
    DatabaseRef,
    capture_checkpoint,
    read_checkpoint_header,
    restore_checkpoint,
    session_transcript,
    transcript_json,
)


def _drive(session, selector, rounds=None):
    taken = 0
    while rounds is None or taken < rounds:
        pending = session.propose()
        if pending is None:
            return
        session.submit(selector.select(pending.round, pending.partition))
        taken += 1


@pytest.fixture()
def mid_session(employee_db, employee_result, employee_candidates):
    session = QFESession(employee_db, employee_result, candidates=employee_candidates)
    session.propose()  # leave a round pending — the suspended-session shape
    return session


class TestCheckpointFormat:
    def test_header_is_readable_without_unpickling(self, mid_session):
        blob = capture_checkpoint(mid_session, session_id="abc123")
        header_line, _, _ = blob.partition(b"\n")
        header = json.loads(header_line)
        assert header == read_checkpoint_header(blob)
        assert header["version"] == CHECKPOINT_VERSION
        assert header["session_id"] == "abc123"
        assert header["status"] == "awaiting-choice"
        assert header["iteration"] == 1
        assert header["database_ref"] == {"kind": "inline"}

    def test_unsupported_version_is_refused(self, mid_session):
        blob = capture_checkpoint(mid_session, session_id="abc123")
        header_line, _, body = blob.partition(b"\n")
        header = json.loads(header_line)
        header["version"] = CHECKPOINT_VERSION + 1
        tampered = json.dumps(header).encode() + b"\n" + body
        with pytest.raises(CheckpointError, match="unsupported checkpoint version"):
            restore_checkpoint(tampered)

    def test_garbage_is_refused(self):
        with pytest.raises(CheckpointError):
            read_checkpoint_header(b"this is not a checkpoint")
        with pytest.raises(CheckpointError):
            read_checkpoint_header(b'{"magic": "something-else"}\n')

    def test_corrupt_payload_is_refused(self, mid_session):
        blob = capture_checkpoint(mid_session, session_id="abc123")
        header_line, _, _ = blob.partition(b"\n")
        with pytest.raises(CheckpointError, match="corrupt"):
            restore_checkpoint(header_line + b"\n" + b"\x80\x04garbage")

    def test_metadata_rides_in_the_header(self, mid_session):
        blob = capture_checkpoint(
            mid_session, session_id="abc123", metadata={"user": "alice"}
        )
        assert read_checkpoint_header(blob)["metadata"] == {"user": "alice"}


class TestDatabaseRef:
    def test_workload_ref_requires_name(self):
        with pytest.raises(CheckpointError):
            DatabaseRef(kind="workload")
        with pytest.raises(CheckpointError):
            DatabaseRef(kind="banana")

    def test_json_roundtrip(self):
        ref = DatabaseRef.workload("Q2", 0.25)
        assert DatabaseRef.from_json(ref.to_json()) == ref
        assert DatabaseRef.from_json(DatabaseRef.inline().to_json()) == DatabaseRef.inline()

    def test_inline_ref_cannot_build(self):
        with pytest.raises(CheckpointError):
            DatabaseRef.inline().build()


class TestRestore:
    def test_inline_roundtrip_resumes_identically(self, employee_db, employee_result,
                                                  employee_candidates, mid_session):
        reference = QFESession(employee_db, employee_result, candidates=employee_candidates)
        reference.run(WorstCaseSelector())
        expected = transcript_json(session_transcript(reference))

        blob = capture_checkpoint(mid_session, session_id="abc123")
        resumed, header = restore_checkpoint(blob)
        assert header["session_id"] == "abc123"
        # The inline pair was embedded: no explicit database needed.
        _drive(resumed, WorstCaseSelector())
        assert transcript_json(session_transcript(resumed)) == expected

    def test_explicit_pair_wins_over_inline(self, employee_db, employee_result,
                                            mid_session):
        blob = capture_checkpoint(mid_session, session_id="abc123")
        resumed, _ = restore_checkpoint(blob, database=employee_db, result=employee_result)
        assert resumed.database is employee_db
        assert resumed.result is employee_result

    def test_workload_ref_keeps_checkpoints_small_and_rebuilds(self):
        from repro.service.manager import workload_session_inputs

        database, result, _, candidates = workload_session_inputs(
            "Q2", 0.03, candidate_count=6
        )
        session = QFESession(database, result, candidates=candidates)
        session.propose()

        by_ref = capture_checkpoint(
            session, session_id="x", database_ref=DatabaseRef.workload("Q2", 0.03)
        )
        inline = capture_checkpoint(session, session_id="x")
        assert len(by_ref) < len(inline)  # the base database is not embedded

        resumed, _ = restore_checkpoint(by_ref)  # rebuilds D from the workload
        assert resumed.database.table_names == database.table_names
        assert resumed.status == "awaiting-choice"


class TestTranscript:
    def test_canonical_form_has_no_timings(self, mid_session):
        transcript = session_transcript(mid_session)
        assert "total_seconds" not in transcript
        for record in transcript["iterations"]:
            assert "execution_seconds" not in record
        timed = session_transcript(mid_session, include_timings=True)
        assert "total_seconds" in timed
        assert all("execution_seconds" in r for r in timed["iterations"])

    def test_canonical_json_is_byte_stable(self, employee_db, employee_result,
                                           employee_candidates):
        def run_once():
            session = QFESession(
                employee_db, employee_result, candidates=employee_candidates
            )
            session.run(WorstCaseSelector())
            return transcript_json(session_transcript(session, workload="employee"))

        assert run_once() == run_once()

    def test_transcript_carries_rounds_and_sql(self, employee_db, employee_result,
                                               employee_candidates):
        session = QFESession(employee_db, employee_result, candidates=employee_candidates)
        session.run(WorstCaseSelector())
        transcript = session_transcript(session)
        assert transcript["status"] == "converged"
        assert transcript["identified_sql"].startswith("SELECT")
        assert len(transcript["rounds"]) == transcript["iteration_count"]
        first = transcript["rounds"][0]
        assert first["database_delta"]["lines"]
        assert all("rows" in option for option in first["options"])
        json.dumps(transcript)  # JSON-able all the way down
