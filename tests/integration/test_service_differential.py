"""Checkpoint/resume and multi-session differential suite over Q1–Q6.

The service layer must never change what QFE computes:

* a session **checkpointed and resumed at every round** — crossing a pickle
  boundary each time, with the base database rebuilt from its workload
  reference — produces a canonical transcript *byte-identical* to an
  uninterrupted run (serial and pooled backends alike);
* **many concurrent sessions** multiplexed over one shared backend finish
  with transcripts identical to the same sessions run sequentially.

The uninterrupted in-process run is the oracle; any divergence means session
state capture, checkpoint serialization, shared-state multiplexing or the
shared-snapshot broadcast broke. Heavier workloads carry the ``slow`` marker:
tier-1 runs Q2/Q4/Q6, while CI's dedicated differential step runs everything
with ``-m ""``.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import OracleSelector, QFEConfig, QFESession
from repro.core.execution_backend import ProcessPoolBackend
from repro.core.feedback import WorstCaseSelector
from repro.service.checkpoint import (
    DatabaseRef,
    capture_checkpoint,
    restore_checkpoint,
    session_transcript,
    transcript_json,
)
from repro.service.manager import SessionManager, workload_session_inputs

_SCALE = 0.03
_CANDIDATES = 10
# A generous Algorithm 3 budget so skyline enumeration never truncates on
# wall-clock time — time truncation is the one legitimately nondeterministic
# input, and it is orthogonal to what this suite verifies.
_CONFIG = QFEConfig(delta_seconds=30.0)

_WORKLOADS = [
    pytest.param("Q1", marks=pytest.mark.slow),
    "Q2",
    pytest.param("Q3", marks=pytest.mark.slow),
    "Q4",
    pytest.param("Q5", marks=pytest.mark.slow),
    "Q6",
]

_SETUP_CACHE: dict[str, tuple] = {}


@pytest.fixture()
def workload_setup_for():
    """Build (and cache per process) the ``(D, R, target, candidates)`` of a workload."""

    def build(name: str):
        setup = _SETUP_CACHE.get(name)
        if setup is None:
            setup = workload_session_inputs(name, _SCALE, candidate_count=_CANDIDATES)
            _SETUP_CACHE[name] = setup
        return setup

    return build


def _uninterrupted_transcript(setup, workload, *, workers: int = 0) -> str:
    database, result, target, candidates = setup
    session = QFESession(
        database, result, candidates=candidates, config=_CONFIG, workers=workers
    )
    session.run(OracleSelector(target))
    return transcript_json(session_transcript(session, workload=workload))


def _resumed_transcript(setup, workload, *, backend=None, rebuild_base=True) -> str:
    """Run the session suspending + resuming through a checkpoint every round.

    With ``rebuild_base`` the checkpoint stores only the workload reference,
    so every resume rebuilds the base database from scratch — the strongest
    form of the resume property (nothing survives but the checkpoint bytes).
    """
    database, result, target, candidates = setup
    ref = DatabaseRef.workload(workload, _SCALE)
    selector = OracleSelector(target)
    session = QFESession(database, result, candidates=candidates, config=_CONFIG)

    def cycle(session):
        blob = capture_checkpoint(session, session_id="diff", database_ref=ref)
        if rebuild_base:
            restored, _ = restore_checkpoint(blob, backend=backend)
        else:
            restored, _ = restore_checkpoint(
                blob, database=database, result=result, backend=backend
            )
        return restored

    while True:
        session = cycle(session)  # suspended before the round search
        pending = session.propose()
        session = cycle(session)  # suspended with the round pending
        pending = session.propose()  # replayed from the checkpoint
        if pending is None:
            break
        session.submit(selector.select(pending.round, pending.partition))
        session = cycle(session)  # suspended right after the choice

    return transcript_json(session_transcript(session, workload=workload))


@pytest.mark.parametrize("workload_name", _WORKLOADS)
def test_resume_every_round_is_bit_identical_to_uninterrupted(
    workload_setup_for, workload_name
):
    setup = workload_setup_for(workload_name)
    reference = _uninterrupted_transcript(setup, workload_name)
    resumed = _resumed_transcript(setup, workload_name)
    assert resumed == reference


def test_resume_every_round_on_a_pooled_backend(workload_setup_for):
    # The resumed sessions all share one live pool; the shared base database
    # keeps the snapshot broadcast warm across resume boundaries. The serial
    # uninterrupted run stays the oracle.
    setup = workload_setup_for("Q2")
    reference = _uninterrupted_transcript(setup, "Q2")
    backend = ProcessPoolBackend(2)
    try:
        resumed = _resumed_transcript(setup, "Q2", backend=backend, rebuild_base=False)
    finally:
        backend.close()
    assert resumed == reference


@pytest.mark.slow
def test_pooled_uninterrupted_run_matches_serial(workload_setup_for):
    setup = workload_setup_for("Q2")
    assert _uninterrupted_transcript(setup, "Q2", workers=2) == _uninterrupted_transcript(
        setup, "Q2"
    )


def _drive_managed_with_oracle(manager, session_id, target):
    selector = OracleSelector(target)
    while True:
        _, pending = manager.get_round(session_id)
        if pending is None:
            return
        manager.submit_choice(
            session_id, selector.select(pending.round, pending.partition)
        )


class TestConcurrentSessions:
    def _concurrent_vs_sequential(self, setup, workload, *, users: int, workers: int):
        database, result, target, candidates = setup
        reference = _uninterrupted_transcript(setup, workload)

        with SessionManager(workers=workers) as manager:
            ids = [
                manager.create_session(
                    workload=workload,
                    scale=_SCALE,
                    candidate_count=_CANDIDATES,
                    config=_CONFIG,
                    session_id=f"user-{i}",
                ).session_id
                for i in range(users)
            ]
            errors: list[BaseException] = []

            def drive(session_id):
                try:
                    _drive_managed_with_oracle(manager, session_id, target)
                except BaseException as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=drive, args=(session_id,))
                for session_id in ids
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors, f"concurrent session failed: {errors[:1]}"

            transcripts = {
                session_id: transcript_json(manager.transcript(session_id))
                for session_id in ids
            }
        for session_id, transcript in transcripts.items():
            assert transcript == reference, f"{session_id} diverged from the sequential run"

    def test_concurrent_sessions_over_shared_serial_backend(self, workload_setup_for):
        self._concurrent_vs_sequential(
            workload_setup_for("Q2"), "Q2", users=4, workers=0
        )

    @pytest.mark.slow
    def test_8_concurrent_sessions_over_one_shared_process_pool(self, workload_setup_for):
        self._concurrent_vs_sequential(
            workload_setup_for("Q2"), "Q2", users=8, workers=2
        )
