"""Differential guards over *generated* scenarios.

The PR-3/PR-4 bit-identity contracts — process-pool sessions reproduce the
serial transcript exactly, and checkpoint/resume from a workload reference
reproduces the uninterrupted transcript exactly — must hold for every
scenario the engine can fabricate, not just the six paper workloads. The
fast guard here (one small generated scenario, serial vs a 2-worker pool)
runs in tier-1 and in ``scripts/check.sh``; the catalog-wide sweeps carry
the ``slow`` marker and run in CI's differential step with ``-m ""``.
"""

from __future__ import annotations

import pytest

from repro.core import QFEConfig, QFESession
from repro.core.execution_backend import ProcessPoolBackend
from repro.core.feedback import WorstCaseSelector
from repro.relational.evaluator import evaluate
from repro.scenarios import SCENARIOS, generate_scenario, run_sweep
from repro.service.checkpoint import (
    DatabaseRef,
    capture_checkpoint,
    restore_checkpoint,
    session_transcript,
    transcript_json,
)

_SEED = 77
_CONFIG = QFEConfig(delta_seconds=30.0)

_SETUP_CACHE: dict[tuple, tuple] = {}


def _setup(name: str, scale: float):
    key = (name, scale)
    cached = _SETUP_CACHE.get(key)
    if cached is None:
        from repro.scenarios.sweep import _candidates_for

        generated = generate_scenario(SCENARIOS[name], scale, _SEED)
        result, candidates = _candidates_for(generated, 8)
        cached = (generated, result, candidates)
        _SETUP_CACHE[key] = cached
    return cached


def _transcript(generated, result, candidates, *, workers=0, backend=None) -> str:
    session = QFESession(
        generated.database,
        result,
        candidates=candidates,
        config=_CONFIG,
        workers=workers,
        backend=backend,
    )
    session.run(WorstCaseSelector())
    return transcript_json(session_transcript(session, workload=generated.spec.name))


def test_fast_guard_serial_vs_two_worker_pool_bit_identity():
    """The check.sh fast guard: one small scenario, serial vs 2-worker pool."""
    generated, result, candidates = _setup("mixed", 0.05)
    serial = _transcript(generated, result, candidates, workers=0)
    pooled = _transcript(generated, result, candidates, workers=2)
    assert pooled == serial


def test_fast_guard_serial_vs_warm_pool_bit_identity():
    """The warm-pool fast guard: mixed@0.05, serial vs a 2-worker warm pool.

    Two back-to-back sessions on one persistent pool: the first installs the
    base and plans every round cold, the second hits worker-resident plan
    caches — both must reproduce the serial transcript byte for byte.
    """
    from repro.core.worker_runtime import WarmProcessPoolBackend

    generated, result, candidates = _setup("mixed", 0.05)
    serial = _transcript(generated, result, candidates, workers=0)
    backend = WarmProcessPoolBackend(2)
    try:
        assert _transcript(generated, result, candidates, backend=backend) == serial
        assert _transcript(generated, result, candidates, backend=backend) == serial
    finally:
        backend.close()


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_catalog_sweep_pins_serial_vs_pooled_identity(name):
    # run_sweep itself raises ScenarioDivergenceError on any transcript
    # mismatch; a surviving payload is the proof.
    payload = run_sweep([name], [0.05, 0.15], seed=_SEED, workers=2, out_path=None)
    for point in payload["scenarios"][name]["trajectory"]:
        assert point["transcripts_identical"] is True


@pytest.mark.slow
def test_worker_count_does_not_change_a_scenario_transcript():
    generated, result, candidates = _setup("chain", 0.1)
    reference = _transcript(generated, result, candidates, workers=0)
    for workers in (2, 3):
        backend = ProcessPoolBackend(workers)
        try:
            assert (
                _transcript(generated, result, candidates, backend=backend) == reference
            ), f"diverged at {workers} workers"
        finally:
            backend.close()


def test_scenario_checkpoint_resumes_from_workload_reference():
    """A scenario session checkpointed by reference survives a full rebuild.

    The checkpoint stores only ``scenario:chain@77`` + the scale; every
    resume rebuilds the base database from the seeded generator — the
    property that makes scenario sessions serveable and crash-safe exactly
    like paper-workload sessions.
    """
    scale = 0.1
    generated, result, candidates = _setup("chain", scale)
    reference = _transcript(generated, result, candidates)

    ref = DatabaseRef.workload(f"scenario:chain@{_SEED}", scale)
    selector = WorstCaseSelector()
    session = QFESession(
        generated.database, result, candidates=candidates, config=_CONFIG
    )
    while True:
        blob = capture_checkpoint(session, session_id="scen", database_ref=ref)
        session, header = restore_checkpoint(blob)
        assert header["database_ref"]["name"] == f"scenario:chain@{_SEED}"
        pending = session.propose()
        if pending is None:
            break
        session.submit(selector.select(pending.round, pending.partition))
    resumed = transcript_json(session_transcript(session, workload=generated.spec.name))
    assert resumed == reference
    # the rebuilt base is value-identical to the original generation
    rebuilt = session.database
    for name in generated.database.table_names:
        assert rebuilt.relation(name).rows() == generated.database.relation(name).rows()


def test_scenario_results_survive_the_oracle_at_two_scales():
    # Cheap end-to-end sanity riding the same cached setup: the target's
    # result is non-empty and SQLite-consistent at both guard scales.
    from repro.sql.sqlite_backend import cross_check

    for scale in (0.05, 0.1):
        generated = generate_scenario(SCENARIOS["mixed"], scale, _SEED)
        assert len(evaluate(generated.target, generated.database)) > 0
        assert cross_check(generated.target, generated.database)
