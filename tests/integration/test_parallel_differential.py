"""Serial-vs-parallel differential suite over the paper workloads Q1–Q6.

The process-pool backend must reproduce the serial round planner's entire
session transcript **bit-identically** at any worker count: the same modified
databases, the same candidate partitions and presented deltas, the same
choices, and the same identified query. Timings are the only fields allowed
to differ. The serial backend is the oracle; any divergence here means the
worker protocol (snapshot rehydration, delta-only evaluation, deterministic
merge) broke.
"""

from __future__ import annotations

import pytest

from repro.core import OracleSelector, QFEConfig, QFESession
from repro.experiments.runner import prepare_candidates
from repro.qbo.config import QBOConfig
from repro.workloads import build_pair

_SCALE = 0.03
_FAST_QBO = QBOConfig(threshold_variants=2, max_terms_per_conjunct=3, max_candidates=16)
# A generous Algorithm 3 budget so skyline enumeration never truncates on
# wall-clock time — time truncation is the one legitimately nondeterministic
# input, and it is orthogonal to what this suite verifies.
_CONFIG = QFEConfig(delta_seconds=30.0)

# The heavier workloads (and the worker-count sweep) carry the ``slow``
# marker: tier-1 still runs a serial-vs-parallel differential on Q2/Q4/Q6,
# while CI's dedicated differential step runs the entire suite with ``-m ""``.
_WORKLOADS = [
    pytest.param("Q1", marks=pytest.mark.slow),
    "Q2",
    pytest.param("Q3", marks=pytest.mark.slow),
    "Q4",
    pytest.param("Q5", marks=pytest.mark.slow),
    "Q6",
]

_SETUP_CACHE: dict[str, tuple] = {}


@pytest.fixture()
def workload_setup_for():
    """Build (and cache per process) the ``(D, R, target, candidates)`` of a workload."""

    def build(name: str):
        setup = _SETUP_CACHE.get(name)
        if setup is None:
            database, result, target = build_pair(name, _SCALE)
            candidates, _ = prepare_candidates(
                database, result, target, qbo_config=_FAST_QBO, candidate_count=12
            )
            setup = (database, result, target, candidates)
            _SETUP_CACHE[name] = setup
        return setup

    return build


def _run(setup, workers: int):
    database, result, target, candidates = setup
    session = QFESession(
        database, result, candidates=candidates, config=_CONFIG, workers=workers
    )
    outcome = session.run(OracleSelector(target))
    return session, outcome


def _transcript(session, outcome):
    """Everything but timings: partitions, deltas, choices, final state."""
    rounds = []
    for round_ in session.last_rounds:
        rounds.append(
            (
                round_.iteration,
                round_.database_delta.cost,
                round_.database_delta.modified_relation_count,
                tuple(round_.database_delta.describe()),
                tuple(
                    (option.index, option.query_count, option.delta.cost,
                     tuple(sorted(option.result.bag_of_rows().items(), key=repr)))
                    for option in round_.options
                ),
            )
        )
    iterations = [
        (
            record.iteration,
            record.candidate_count,
            record.subset_count,
            record.skyline_pair_count,
            record.db_cost,
            record.result_cost,
            record.modified_attribute_count,
            record.modified_relation_count,
            record.modified_tuple_count,
            record.chosen_option,
            record.remaining_candidates,
        )
        for record in outcome.iterations
    ]
    return {
        "identified": outcome.identified_query,
        "remaining": outcome.remaining_queries,
        "converged": outcome.converged,
        "exhausted": outcome.exhausted,
        "iterations": iterations,
        "rounds": rounds,
    }


@pytest.mark.parametrize("workload_name", _WORKLOADS)
def test_parallel_session_is_bit_identical_to_serial(workload_setup_for, workload_name):
    setup = workload_setup_for(workload_name)
    serial_session, serial_outcome = _run(setup, workers=0)
    parallel_session, parallel_outcome = _run(setup, workers=2)
    assert _transcript(parallel_session, parallel_outcome) == _transcript(
        serial_session, serial_outcome
    )


@pytest.mark.slow
def test_worker_count_does_not_change_the_transcript(workload_setup_for):
    # Merge order must be independent of sharding: 2, 3 and 4 workers all
    # reproduce the serial transcript on the same workload.
    setup = workload_setup_for("Q2")
    serial_session, serial_outcome = _run(setup, workers=0)
    reference = _transcript(serial_session, serial_outcome)
    for workers in (2, 3, 4):
        session, outcome = _run(setup, workers=workers)
        assert _transcript(session, outcome) == reference, f"diverged at {workers} workers"


def test_parallel_session_uses_the_process_pool(workload_setup_for):
    setup = workload_setup_for("Q2")
    session, outcome = _run(setup, workers=2)
    assert session._generator.backend.name == "process-pool"
    assert outcome.iteration_count >= 1
