"""Serial-vs-warm-pool differential suite over the paper workloads.

The warm persistent worker runtime must reproduce the serial round planner's
entire session transcript **bit-identically** at any worker count — while
never re-shipping base state it can advance by delta, never re-pickling a
round body the pool has already seen, and never performing a full join
worker-side. The serial backend is the oracle; any divergence here means the
warm protocol (versioned installs, delta advances, content-hashed bodies,
remote round planning, deterministic merge) broke.

Also here: the fault-tolerance guard (SIGKILL one worker mid-session → the
pool rebuilds transparently and the transcript stays bit-identical), the
classic process pool's context-dedup satellite, and the warm-aware
``reset_all_stats`` regression.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.core import OracleSelector, QFEConfig, QFESession
from repro.core.execution_backend import BACKEND_STATS, ProcessPoolBackend
from repro.core.worker_runtime import WarmProcessPoolBackend
from repro.experiments.runner import prepare_candidates
from repro.obs.registry import reset_all_stats
from repro.qbo.config import QBOConfig
from repro.relational.evaluator import JoinCache, SharedSnapshotCache
from repro.relational.join import JOIN_STATS
from repro.service.checkpoint import session_transcript, transcript_json
from repro.workloads import build_pair

_SCALE = 0.03
_FAST_QBO = QBOConfig(threshold_variants=2, max_terms_per_conjunct=3, max_candidates=16)
# A generous Algorithm 3 budget so skyline enumeration never truncates on
# wall-clock time — time truncation is the one legitimately nondeterministic
# input, and it is orthogonal to what this suite verifies.
_CONFIG = QFEConfig(delta_seconds=30.0)

# Tier-1 runs the warm differential on Q2/Q4/Q6 (mirroring the classic
# parallel suite); the remaining workloads and the worker-count sweep carry
# the ``slow`` marker for CI's differential step.
_WORKLOADS = [
    pytest.param("Q1", marks=pytest.mark.slow),
    "Q2",
    pytest.param("Q3", marks=pytest.mark.slow),
    "Q4",
    pytest.param("Q5", marks=pytest.mark.slow),
    "Q6",
]

_SETUP_CACHE: dict[str, tuple] = {}


@pytest.fixture()
def workload_setup_for():
    """Build (and cache per process) the ``(D, R, target, candidates)`` of a workload."""

    def build(name: str):
        setup = _SETUP_CACHE.get(name)
        if setup is None:
            database, result, target = build_pair(name, _SCALE)
            candidates, _ = prepare_candidates(
                database, result, target, qbo_config=_FAST_QBO, candidate_count=12
            )
            setup = (database, result, target, candidates)
            _SETUP_CACHE[name] = setup
        return setup

    return build


def _run(setup, *, workers=0, backend=None, join_cache=None, snapshot_cache=None):
    database, result, target, candidates = setup
    session = QFESession(
        database,
        result,
        candidates=candidates,
        config=_CONFIG,
        workers=workers,
        backend=backend,
        join_cache=join_cache,
        snapshot_cache=snapshot_cache,
    )
    session.run(OracleSelector(target))
    return transcript_json(session_transcript(session))


@pytest.mark.parametrize("workload_name", _WORKLOADS)
def test_warm_session_is_bit_identical_to_serial(workload_setup_for, workload_name):
    setup = workload_setup_for(workload_name)
    serial = _run(setup, workers=0)
    backend = WarmProcessPoolBackend(2)
    try:
        assert _run(setup, backend=backend) == serial
    finally:
        backend.close()


@pytest.mark.slow
def test_worker_count_does_not_change_the_transcript(workload_setup_for):
    # Cost-model sharding must not leak into results: 2, 3 and 4 warm
    # workers all reproduce the serial transcript on the same workload.
    setup = workload_setup_for("Q2")
    reference = _run(setup, workers=0)
    for workers in (2, 3, 4):
        backend = WarmProcessPoolBackend(workers)
        try:
            assert _run(setup, backend=backend) == reference, (
                f"diverged at {workers} workers"
            )
        finally:
            backend.close()


def test_repeated_sessions_hit_worker_plan_caches(workload_setup_for):
    """The steady-state contract: repeats plan remotely from warm state.

    The second identical session over the same shared caches must (a) stay
    bit-identical, (b) hit worker-resident plan caches, (c) ship strictly
    fewer bytes than the first (no re-install, content-hashed bodies skip),
    and (d) perform **zero** full joins anywhere — driver or worker — since
    every join is already resident.
    """
    from repro.core.feedback import WorstCaseSelector

    def run_warm(backend, join_cache, snapshots):
        database, result, _target, candidates = setup
        session = QFESession(
            database,
            result,
            candidates=candidates,
            config=_CONFIG,
            backend=backend,
            join_cache=join_cache,
            snapshot_cache=snapshots,
        )
        # The worst-case selector never evaluates the target query against
        # each round's modified database (the oracle selector does, paying
        # one *selector-side* full join per round), so full-join counts here
        # isolate the engine's own behaviour.
        session.run(WorstCaseSelector())
        return transcript_json(session_transcript(session))

    setup = workload_setup_for("Q2")
    database, result, _target, candidates = setup
    serial_session = QFESession(
        database, result, candidates=candidates, config=_CONFIG, workers=0
    )
    serial_session.run(WorstCaseSelector())
    serial = transcript_json(session_transcript(serial_session))
    backend = WarmProcessPoolBackend(2)
    join_cache = JoinCache()
    snapshots = SharedSnapshotCache()
    try:
        shipped_zero = BACKEND_STATS.bytes_shipped
        first = run_warm(backend, join_cache, snapshots)
        assert first == serial
        shipped_first = BACKEND_STATS.bytes_shipped - shipped_zero
        hits_before = BACKEND_STATS.warm_hits
        joins_before = JOIN_STATS.full_joins
        second = run_warm(backend, join_cache, snapshots)
        assert second == serial
        assert BACKEND_STATS.warm_hits > hits_before
        assert JOIN_STATS.full_joins == joins_before
        shipped_second = BACKEND_STATS.bytes_shipped - shipped_zero - shipped_first
        assert shipped_second < shipped_first
    finally:
        backend.close()


def test_pool_rebuild_after_worker_sigkill_is_bit_identical(workload_setup_for):
    """Kill one resident worker mid-session: the pool transparently rebuilds
    (``pool_rebuilds`` counts it) and the transcript stays bit-identical."""
    setup = workload_setup_for("Q2")
    serial = _run(setup, workers=0)
    database, result, target, candidates = setup
    backend = WarmProcessPoolBackend(2)
    try:
        session = QFESession(
            database, result, candidates=candidates, config=_CONFIG, backend=backend
        )
        selector = OracleSelector(target)
        rebuilds_before = BACKEND_STATS.pool_rebuilds
        killed = False
        pending = session.propose()
        while pending is not None:
            if not killed:
                pids = backend.worker_pids()
                assert pids, "warm pool has no live workers after a round"
                os.kill(pids[0], signal.SIGKILL)
                time.sleep(0.05)  # let the executor notice the death
                killed = True
            session.submit(selector.select(pending.round, pending.partition))
            pending = session.propose()
        assert killed
        assert BACKEND_STATS.pool_rebuilds > rebuilds_before
        assert transcript_json(session_transcript(session)) == serial
    finally:
        backend.close()


def test_classic_pool_skips_re_pickling_an_identical_context(workload_setup_for):
    """Satellite: ``ProcessPoolBackend`` ships a round body once per pool.

    Two identical sessions over one pool see identical per-round contexts;
    the second session's rounds must hit the worker-side body cache
    (``context_skips``) instead of re-pickling, and still be bit-identical.
    """
    setup = workload_setup_for("Q2")
    serial = _run(setup, workers=0)
    backend = ProcessPoolBackend(2)
    join_cache = JoinCache()
    snapshots = SharedSnapshotCache()
    try:
        first = _run(setup, backend=backend, join_cache=join_cache, snapshot_cache=snapshots)
        assert first == serial
        pickles_before = BACKEND_STATS.context_pickles
        skips_before = BACKEND_STATS.context_skips
        resends_before = BACKEND_STATS.context_resends
        second = _run(setup, backend=backend, join_cache=join_cache, snapshot_cache=snapshots)
        assert second == serial
        # Every round body of the second session was byte-identical to one
        # the pool already holds: each hash computation became a skip (no
        # payload shipped), and no worker ever had to ask for a resend.
        skips = BACKEND_STATS.context_skips - skips_before
        pickles = BACKEND_STATS.context_pickles - pickles_before
        assert skips == pickles > 0
        assert BACKEND_STATS.context_resends == resends_before
    finally:
        backend.close()


def test_reset_all_stats_reaches_warm_workers(workload_setup_for):
    """Satellite: the global reset zeroes worker-resident counter state too.

    Without the warm-aware reset, workers would keep cumulative registry
    values across ``reset_all_stats`` and the next merged delta would
    re-import pre-reset amounts; the post-reset session must account for
    exactly its own rounds.
    """
    setup = workload_setup_for("Q2")
    backend = WarmProcessPoolBackend(2)
    join_cache = JoinCache()
    snapshots = SharedSnapshotCache()
    try:
        _run(setup, backend=backend, join_cache=join_cache, snapshot_cache=snapshots)
        assert BACKEND_STATS.rounds_planned > 0
        reset_all_stats()
        assert BACKEND_STATS.rounds_planned == 0
        assert BACKEND_STATS.bytes_shipped == 0
        database, result, target, candidates = setup
        session = QFESession(
            database,
            result,
            candidates=candidates,
            config=_CONFIG,
            backend=backend,
            join_cache=join_cache,
            snapshot_cache=snapshots,
        )
        outcome = session.run(OracleSelector(target))
        # Exactly this session's rounds — no stale worker deltas re-merged.
        assert BACKEND_STATS.rounds_planned == outcome.iteration_count
    finally:
        backend.close()
