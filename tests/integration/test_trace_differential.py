"""Tracing-on vs tracing-off differential over Q1–Q6 on all three backends.

Tracing is observability, not behavior: with a tracer installed, every
backend must reproduce its untraced session transcript **bit-identically** —
the same modified databases, partitions, deltas, choices and identified
query. Timings are the only fields allowed to differ. Any divergence here
means span instrumentation leaked into the evaluation path (changed iteration
order, perturbed a cache, consumed RNG state).

The same runs double as coverage that the expected spans actually appear for
each backend (broadcast/wave/merge for the pool, mirror load/DML/SELECT for
SQL pushdown), and that per-round phase durations account for the propose
wall-clock.
"""

from __future__ import annotations

import pytest

from repro.core import OracleSelector, QFEConfig, QFESession
from repro.core.execution_backend import SqlPushdownBackend
from repro.core.timing import Stopwatch
from repro.experiments.runner import prepare_candidates
from repro.obs.summary import phase_breakdown
from repro.obs.trace import Tracer, set_tracer
from repro.qbo.config import QBOConfig
from repro.scenarios import SCENARIOS, generate_scenario
from repro.scenarios.sweep import _candidates_for
from repro.workloads import build_pair

_SCALE = 0.03
_FAST_QBO = QBOConfig(threshold_variants=2, max_terms_per_conjunct=3, max_candidates=16)
# A generous Algorithm 3 budget so skyline enumeration never truncates on
# wall-clock time — time truncation is the one legitimately nondeterministic
# input, and it is orthogonal to what this suite verifies.
_CONFIG = QFEConfig(delta_seconds=30.0)

# Heavier workloads carry the ``slow`` marker: tier-1 still runs the traced
# differential on Q2/Q4/Q6 against every backend, while CI's dedicated
# differential step runs the entire suite with ``-m ""``.
_WORKLOADS = [
    pytest.param("Q1", marks=pytest.mark.slow),
    "Q2",
    pytest.param("Q3", marks=pytest.mark.slow),
    "Q4",
    pytest.param("Q5", marks=pytest.mark.slow),
    "Q6",
]
_BACKENDS = ["serial", "process", "sql"]

_SETUP_CACHE: dict[str, tuple] = {}


@pytest.fixture()
def workload_setup_for():
    """Build (and cache per process) the ``(D, R, target, candidates)`` of a workload."""

    def build(name: str):
        setup = _SETUP_CACHE.get(name)
        if setup is None:
            database, result, target = build_pair(name, _SCALE)
            candidates, _ = prepare_candidates(
                database, result, target, qbo_config=_FAST_QBO, candidate_count=12
            )
            setup = (database, result, target, candidates)
            _SETUP_CACHE[name] = setup
        return setup

    return build


def _run(setup, backend_name: str, tracer=None):
    database, result, target, candidates = setup
    backend = SqlPushdownBackend() if backend_name == "sql" else None
    workers = 2 if backend_name == "process" else 0
    previous = set_tracer(tracer) if tracer is not None else None
    try:
        session = QFESession(
            database, result, candidates=candidates, config=_CONFIG,
            workers=workers, backend=backend,
        )
        outcome = session.run(OracleSelector(target))
    finally:
        if tracer is not None:
            set_tracer(previous)
        if backend is not None:
            backend.close()
    return session, outcome


def _transcript(session, outcome):
    """Everything but timings: partitions, deltas, choices, final state."""
    rounds = []
    for round_ in session.last_rounds:
        rounds.append(
            (
                round_.iteration,
                round_.database_delta.cost,
                round_.database_delta.modified_relation_count,
                tuple(round_.database_delta.describe()),
                tuple(
                    (option.index, option.query_count, option.delta.cost,
                     tuple(sorted(option.result.bag_of_rows().items(), key=repr)))
                    for option in round_.options
                ),
            )
        )
    iterations = [
        (
            record.iteration,
            record.candidate_count,
            record.subset_count,
            record.skyline_pair_count,
            record.db_cost,
            record.result_cost,
            record.modified_attribute_count,
            record.modified_relation_count,
            record.modified_tuple_count,
            record.chosen_option,
            record.remaining_candidates,
        )
        for record in outcome.iterations
    ]
    return {
        "identified": outcome.identified_query,
        "remaining": outcome.remaining_queries,
        "converged": outcome.converged,
        "exhausted": outcome.exhausted,
        "iterations": iterations,
        "rounds": rounds,
    }


@pytest.mark.parametrize("backend_name", _BACKENDS)
@pytest.mark.parametrize("workload_name", _WORKLOADS)
def test_tracing_does_not_perturb_the_transcript(
    workload_setup_for, workload_name, backend_name
):
    setup = workload_setup_for(workload_name)
    plain_session, plain_outcome = _run(setup, backend_name)
    spans: list = []
    traced_session, traced_outcome = _run(setup, backend_name, tracer=Tracer(spans))
    assert _transcript(traced_session, traced_outcome) == _transcript(
        plain_session, plain_outcome
    )

    names = {record["name"] for record in spans}
    assert {"session.propose", "round.prepare"} <= names
    if traced_session.last_rounds:
        # Search/present/submit (and the backend-specific spans) only exist
        # when the session actually presented a round; a workload that
        # exhausts during generation (Q4 at this scale) stops earlier.
        assert {"round.search", "round.present", "session.submit"} <= names
        if backend_name == "process":
            assert {"backend.broadcast", "backend.wave", "backend.merge"} <= names
        if backend_name == "sql":
            assert {"sql.mirror.load", "sql.mirror.select"} <= names


def test_traced_phases_account_for_propose_wall_clock():
    # The acceptance bound from the issue: on a traced mixed@1.0 session the
    # per-phase durations must sum to within 10% of the measured wall-clock
    # of the propose calls they decompose.
    generated = generate_scenario(SCENARIOS["mixed"], 1.0, 1234)
    result, candidates = _candidates_for(generated, 8)
    session = QFESession(
        generated.database, result, candidates=candidates,
        config=_CONFIG, workers=0,
    )
    selector = OracleSelector(generated.target)
    spans: list = []
    previous = set_tracer(Tracer(spans))
    wall = 0.0
    try:
        while True:
            watch = Stopwatch()
            pending = session.propose()
            wall += watch.elapsed()
            if pending is None:
                break
            session.submit(selector.select(pending.round, pending.partition))
    finally:
        set_tracer(previous)
        session.close()
    breakdown = phase_breakdown(spans)
    assert breakdown, "the traced session presented no rounds"
    phase_total = sum(sum(entry["phases"].values()) for entry in breakdown)
    assert phase_total == pytest.approx(wall, rel=0.10)
    # Each round decomposes exactly: phases sum to the propose span itself.
    for entry in breakdown:
        assert sum(entry["phases"].values()) == pytest.approx(entry["total_s"])
