"""Smoke tests: every example script runs to completion on tiny inputs."""

import runpy
import sys
from pathlib import Path

import pytest

#: Full example scripts run whole QFE sessions — excluded from tier-1 (-m slow).
pytestmark = pytest.mark.slow

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def _run_module(path: Path, argv: list[str]) -> None:
    old_argv = sys.argv
    sys.argv = [str(path)] + argv
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        _run_module(EXAMPLES_DIR / "quickstart.py", [])
        output = capsys.readouterr().out
        assert "Identified query" in output
        assert "SELECT" in output

    def test_csv_to_query(self, capsys):
        _run_module(EXAMPLES_DIR / "csv_to_query.py", [])
        output = capsys.readouterr().out
        assert "Identified query" in output
        assert "True" in output  # SQLite cross-check

    def test_scientific_discovery(self, capsys):
        _run_module(EXAMPLES_DIR / "scientific_discovery.py", ["0.03"])
        output = capsys.readouterr().out
        assert "candidate queries" in output
        assert "worst-case feedback" in output

    def test_baseball_scouting(self, capsys):
        _run_module(EXAMPLES_DIR / "baseball_scouting.py", ["0.03"])
        output = capsys.readouterr().out
        assert "Workload Q5" in output
        assert "identified query" in output

    def test_census_user_study(self, capsys):
        _run_module(EXAMPLES_DIR / "census_user_study.py", ["0.02"])
        output = capsys.readouterr().out
        assert "Summary across participants" in output
        assert "QFE cost model" in output

    def test_interactive_service(self, capsys):
        _run_module(EXAMPLES_DIR / "interactive_service.py", [])
        output = capsys.readouterr().out
        assert "simulating a server crash" in output
        assert output.count("finished: converged") == 2
        assert "restarted with the same store" in output
