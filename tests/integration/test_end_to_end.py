"""End-to-end integration tests across the whole pipeline.

Each test exercises the full stack: dataset construction → candidate query
generation (QBO) → QFE winnowing loop (Database Generator, Result Feedback) →
identification of the target query, including SQLite cross-checks of the
final answer.
"""

import pytest

from repro.core import OracleSelector, QFEConfig, QFESession, WorstCaseSelector
from repro.experiments.runner import prepare_candidates
from repro.qbo.config import QBOConfig
from repro.relational.constraints import modification_is_valid
from repro.relational.evaluator import evaluate
from repro.sql.sqlite_backend import SQLiteBackend
from repro.workloads import build_pair

_FAST_QBO = QBOConfig(threshold_variants=2, max_terms_per_conjunct=3, max_candidates=20)
_FAST_CONFIG = QFEConfig(delta_seconds=0.3)


@pytest.mark.parametrize("workload_name", ["Q2", "Q3", "Q5"])
class TestOracleSessions:
    def test_oracle_identifies_a_result_equivalent_query(self, workload_name):
        database, result, target = build_pair(workload_name, scale=0.03)
        candidates, _ = prepare_candidates(database, result, target, qbo_config=_FAST_QBO)
        session = QFESession(database, result, candidates=candidates, config=_FAST_CONFIG)
        outcome = session.run(OracleSelector(target))
        assert outcome.converged
        identified = outcome.identified_query
        # the identified query agrees with the target on the original database…
        assert evaluate(identified, database).bag_equal(result)
        # …and on every modified database the session presented
        for round_ in session.last_rounds:
            ours = evaluate(identified, round_.modified_database)
            target_result = evaluate(target, round_.modified_database)
            assert ours.bag_equal(target_result)

    def test_every_presented_database_is_valid(self, workload_name):
        database, result, target = build_pair(workload_name, scale=0.03)
        candidates, _ = prepare_candidates(database, result, target, qbo_config=_FAST_QBO)
        session = QFESession(database, result, candidates=candidates, config=_FAST_CONFIG)
        session.run(OracleSelector(target))
        for round_ in session.last_rounds:
            assert modification_is_valid(round_.modified_database)
            assert round_.database_delta.cost >= 1


class TestWorstCaseSessions:
    def test_worst_case_q5_converges(self):
        database, result, target = build_pair("Q5", scale=0.03)
        candidates, _ = prepare_candidates(database, result, target, qbo_config=_FAST_QBO)
        session = QFESession(database, result, candidates=candidates, config=_FAST_CONFIG)
        outcome = session.run(WorstCaseSelector())
        assert outcome.converged or outcome.exhausted
        assert outcome.iteration_count >= 1
        # every iteration prunes at least one candidate
        for record in outcome.iterations:
            assert record.remaining_candidates < record.candidate_count

    def test_worst_case_never_exceeds_candidate_count_iterations(self):
        database, result, target = build_pair("Q3", scale=0.03)
        candidates, _ = prepare_candidates(
            database, result, target, qbo_config=_FAST_QBO, candidate_count=10
        )
        session = QFESession(database, result, candidates=candidates, config=_FAST_CONFIG)
        outcome = session.run(WorstCaseSelector())
        assert outcome.iteration_count <= len(candidates)


class TestSQLiteAgreementEndToEnd:
    def test_identified_query_agrees_with_sqlite(self):
        database, result, target = build_pair("Q5", scale=0.03)
        candidates, _ = prepare_candidates(database, result, target, qbo_config=_FAST_QBO)
        session = QFESession(database, result, candidates=candidates, config=_FAST_CONFIG)
        outcome = session.run(OracleSelector(target))
        assert outcome.converged
        with SQLiteBackend(database) as backend:
            sqlite_result = backend.execute(outcome.identified_query)
        assert sqlite_result.bag_equal(result)

    def test_candidate_generation_agrees_with_sqlite(self, employee_db, employee_result):
        from repro.datasets.employee import TARGET_QUERY

        candidates, _ = prepare_candidates(
            employee_db, employee_result, TARGET_QUERY, qbo_config=_FAST_QBO
        )
        with SQLiteBackend(employee_db) as backend:
            for query in candidates:
                assert backend.execute(query).bag_equal(employee_result)
