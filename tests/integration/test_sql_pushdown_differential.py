"""Serial-vs-SQL-pushdown differential suite over workloads and scenarios.

The SQL-pushdown backend compiles every candidate round into aggregated
SQLite SELECTs instead of evaluating candidates row-by-row in Python. It must
reproduce the serial round planner's entire session transcript
**bit-identically**: the same modified databases, the same candidate
partitions and presented deltas, the same choices, and the same identified
query. Timings are the only fields allowed to differ. The serial backend is
the oracle; any divergence here means the SQL translation (NULL semantics,
cross-type comparisons, 2^53 exactness, bag/set fingerprints) broke.

The suite covers the paper workloads Q1–Q6 and the synthetic scenario
presets (chain/star/mixed), which deliberately exercise NULLs, huge
integers and mixed bool/int/float domains.
"""

from __future__ import annotations

import pytest

from repro.core import OracleSelector, QFEConfig, QFESession
from repro.core.execution_backend import SqlPushdownBackend
from repro.experiments.runner import prepare_candidates
from repro.qbo.config import QBOConfig
from repro.relational.evaluator import evaluate
from repro.scenarios import SCENARIOS, generate_scenario
from repro.sql.pushdown import PUSHDOWN_STATS
from repro.workloads import build_pair

_SCALE = 0.03
_FAST_QBO = QBOConfig(threshold_variants=2, max_terms_per_conjunct=3, max_candidates=16)
# A generous Algorithm 3 budget so skyline enumeration never truncates on
# wall-clock time — time truncation is the one legitimately nondeterministic
# input, and it is orthogonal to what this suite verifies.
_CONFIG = QFEConfig(delta_seconds=30.0)

# Heavier workloads carry the ``slow`` marker: tier-1 still runs an
# sql-vs-serial differential on Q2/Q4/Q6 plus the scenario presets, while
# CI's dedicated differential step runs the entire suite with ``-m ""``.
_WORKLOADS = [
    pytest.param("Q1", marks=pytest.mark.slow),
    "Q2",
    pytest.param("Q3", marks=pytest.mark.slow),
    "Q4",
    pytest.param("Q5", marks=pytest.mark.slow),
    "Q6",
]

_SETUP_CACHE: dict[str, tuple] = {}


@pytest.fixture()
def workload_setup_for():
    """Build (and cache per process) the ``(D, R, target, candidates)`` of a workload."""

    def build(name: str):
        setup = _SETUP_CACHE.get(name)
        if setup is None:
            if name.startswith("scenario:"):
                preset = name.split(":", 1)[1]
                generated = generate_scenario(SCENARIOS[preset], 0.08, 1234)
                database, target = generated.database, generated.target
                result = evaluate(target, database)
            else:
                database, result, target = build_pair(name, _SCALE)
            candidates, _ = prepare_candidates(
                database, result, target, qbo_config=_FAST_QBO, candidate_count=12
            )
            setup = (database, result, target, candidates)
            _SETUP_CACHE[name] = setup
        return setup

    return build


def _run(setup, backend=None):
    database, result, target, candidates = setup
    session = QFESession(
        database, result, candidates=candidates, config=_CONFIG,
        workers=0, backend=backend,
    )
    outcome = session.run(OracleSelector(target))
    return session, outcome


def _transcript(session, outcome):
    """Everything but timings: partitions, deltas, choices, final state."""
    rounds = []
    for round_ in session.last_rounds:
        rounds.append(
            (
                round_.iteration,
                round_.database_delta.cost,
                round_.database_delta.modified_relation_count,
                tuple(round_.database_delta.describe()),
                tuple(
                    (option.index, option.query_count, option.delta.cost,
                     tuple(sorted(option.result.bag_of_rows().items(), key=repr)))
                    for option in round_.options
                ),
            )
        )
    iterations = [
        (
            record.iteration,
            record.candidate_count,
            record.subset_count,
            record.skyline_pair_count,
            record.db_cost,
            record.result_cost,
            record.modified_attribute_count,
            record.modified_relation_count,
            record.modified_tuple_count,
            record.chosen_option,
            record.remaining_candidates,
        )
        for record in outcome.iterations
    ]
    return {
        "identified": outcome.identified_query,
        "remaining": outcome.remaining_queries,
        "converged": outcome.converged,
        "exhausted": outcome.exhausted,
        "iterations": iterations,
        "rounds": rounds,
    }


@pytest.mark.parametrize("workload_name", _WORKLOADS)
def test_sql_session_is_bit_identical_to_serial(workload_setup_for, workload_name):
    setup = workload_setup_for(workload_name)
    serial_session, serial_outcome = _run(setup)
    with SqlPushdownBackend() as backend:
        sql_session, sql_outcome = _run(setup, backend=backend)
    assert _transcript(sql_session, sql_outcome) == _transcript(
        serial_session, serial_outcome
    )


@pytest.mark.parametrize("preset", sorted(SCENARIOS))
def test_sql_matches_serial_on_scenario_presets(workload_setup_for, preset):
    # The scenario presets stress NULL columns, 2^53-neighbourhood integers
    # and mixed bool/int/float domains — exactly where an SQL translation
    # that leaned on SQLite's native semantics would silently diverge.
    setup = workload_setup_for(f"scenario:{preset}")
    serial_session, serial_outcome = _run(setup)
    with SqlPushdownBackend() as backend:
        sql_session, sql_outcome = _run(setup, backend=backend)
    assert _transcript(sql_session, sql_outcome) == _transcript(
        serial_session, serial_outcome
    )


def test_sql_session_actually_pushes_down(workload_setup_for):
    # Guard against the backend silently falling back to the serial path on
    # a plain workload: the mirror must load exactly once and every round
    # must execute as a compiled SQL batch.
    setup = workload_setup_for("Q2")
    PUSHDOWN_STATS.reset()
    with SqlPushdownBackend() as backend:
        session, outcome = _run(setup, backend=backend)
    base_loads, attempt_batches, python_fallbacks = PUSHDOWN_STATS.snapshot()
    assert session._generator.backend.name == "sql-pushdown"
    assert outcome.iteration_count >= 1
    assert base_loads == 1
    assert attempt_batches >= 1
    assert python_fallbacks == 0
