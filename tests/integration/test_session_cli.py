"""Integration tests for the qfe-session interactive CLI."""

import pytest

from repro.cli import build_parser, main
from repro.relational.csv_io import database_to_csv_directory, relation_to_csv_file
from repro.relational.evaluator import evaluate
from repro.sql.parser import parse_query


class TestParser:
    def test_requires_a_data_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dataset_and_data_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dataset", "employee", "--data", "x"])

    def test_workers_flag_defaults_to_serial(self):
        args = build_parser().parse_args(["--dataset", "employee"])
        assert args.workers == 0
        args = build_parser().parse_args(["--dataset", "employee", "--workers", "4"])
        assert args.workers == 4

    def test_backend_flag_defaults_to_auto(self, capsys):
        args = build_parser().parse_args(["--dataset", "employee"])
        assert args.backend == "auto"
        args = build_parser().parse_args(["--dataset", "employee", "--backend", "sql"])
        assert args.backend == "sql"
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--dataset", "employee", "--backend", "mysql"])
        assert excinfo.value.code == 2
        assert "serial" in capsys.readouterr().err

    def test_negative_workers_is_rejected_at_parse_time(self, capsys):
        # Validated by the shared argparse type before any dataset loads:
        # argparse exits with status 2 and a usage error on stderr.
        with pytest.raises(SystemExit) as excinfo:
            main([
                "--dataset", "employee",
                "--target-sql", "SELECT name FROM Employee WHERE salary > 4000",
                "--workers", "-1",
            ])
        assert excinfo.value.code == 2
        assert "--workers" in capsys.readouterr().err


class TestBuiltinDatasetRuns:
    def test_employee_with_target_sql_oracle(self, capsys):
        exit_code = main([
            "--dataset", "employee",
            "--target-sql", "SELECT name FROM Employee WHERE salary > 4000",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Identified query" in output
        assert "SELECT" in output

    def test_employee_parallel_workers_match_serial(self, capsys):
        target = "SELECT name FROM Employee WHERE salary > 4000"
        assert main(["--dataset", "employee", "--target-sql", target]) == 0
        serial_output = capsys.readouterr().out
        assert main(["--dataset", "employee", "--target-sql", target, "--workers", "2"]) == 0
        parallel_output = capsys.readouterr().out
        assert "Identified query" in parallel_output
        assert parallel_output.splitlines()[-1] == serial_output.splitlines()[-1]

    def test_employee_sql_backend_matches_serial(self, capsys):
        target = "SELECT name FROM Employee WHERE salary > 4000"
        assert main(["--dataset", "employee", "--target-sql", target]) == 0
        serial_output = capsys.readouterr().out
        assert main(["--dataset", "employee", "--target-sql", target, "--backend", "sql"]) == 0
        sql_output = capsys.readouterr().out
        assert "Identified query" in sql_output
        assert sql_output.splitlines()[-1] == serial_output.splitlines()[-1]

    def test_transcript_out_writes_machine_readable_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "transcript.json"
        exit_code = main([
            "--dataset", "employee",
            "--target-sql", "SELECT name FROM Employee WHERE salary > 4000",
            "--transcript-out", str(out),
        ])
        assert exit_code == 0
        assert f"Transcript written to {out}" in capsys.readouterr().out
        transcript = json.loads(out.read_text())
        assert transcript["status"] == "converged"
        assert transcript["identified_sql"].startswith("SELECT")
        assert transcript["iterations"]
        assert "execution_seconds" in transcript["iterations"][0]
        assert len(transcript["rounds"]) == transcript["iteration_count"]

    def test_employee_with_scripted_answers(self, capsys):
        # Answer "1" (the largest subset) a few times; the session either
        # converges or reports the remaining candidates — both are valid exits.
        exit_code = main([
            "--dataset", "employee",
            "--target-sql", "SELECT name FROM Employee WHERE salary > 4000",
            "--answers", ",".join(["1"] * 10),
        ])
        assert exit_code in (0, 1)
        assert "feedback rounds" in capsys.readouterr().out

    def test_missing_result_and_target(self, capsys):
        exit_code = main(["--dataset", "employee"])
        assert exit_code == 2
        assert "error" in capsys.readouterr().out


class TestCsvWorkflow:
    def test_csv_directory_and_result_file(self, tmp_path, two_table_db, capsys):
        data_dir = tmp_path / "data"
        database_to_csv_directory(two_table_db, data_dir)
        target = parse_query(
            "SELECT ename FROM Emp WHERE salary > 60", two_table_db.schema
        )
        result = evaluate(target, two_table_db, name="R")
        result_file = tmp_path / "expected.csv"
        relation_to_csv_file(result, result_file)

        exit_code = main([
            "--data", str(data_dir),
            "--result", str(result_file),
            "--target-sql", "SELECT ename FROM Emp WHERE salary > 60",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Identified query" in output

    def test_missing_data_directory(self, tmp_path, capsys):
        exit_code = main([
            "--data", str(tmp_path / "nope"),
            "--target-sql", "SELECT 1",
        ])
        assert exit_code == 2
