"""Integration tests for the qfe-session interactive CLI."""

import pytest

from repro.cli import build_parser, main
from repro.relational.csv_io import database_to_csv_directory, relation_to_csv_file
from repro.relational.evaluator import evaluate
from repro.sql.parser import parse_query


class TestParser:
    def test_requires_a_data_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dataset_and_data_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dataset", "employee", "--data", "x"])


class TestBuiltinDatasetRuns:
    def test_employee_with_target_sql_oracle(self, capsys):
        exit_code = main([
            "--dataset", "employee",
            "--target-sql", "SELECT name FROM Employee WHERE salary > 4000",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Identified query" in output
        assert "SELECT" in output

    def test_employee_with_scripted_answers(self, capsys):
        # Answer "1" (the largest subset) a few times; the session either
        # converges or reports the remaining candidates — both are valid exits.
        exit_code = main([
            "--dataset", "employee",
            "--target-sql", "SELECT name FROM Employee WHERE salary > 4000",
            "--answers", ",".join(["1"] * 10),
        ])
        assert exit_code in (0, 1)
        assert "feedback rounds" in capsys.readouterr().out

    def test_missing_result_and_target(self, capsys):
        exit_code = main(["--dataset", "employee"])
        assert exit_code == 2
        assert "error" in capsys.readouterr().out


class TestCsvWorkflow:
    def test_csv_directory_and_result_file(self, tmp_path, two_table_db, capsys):
        data_dir = tmp_path / "data"
        database_to_csv_directory(two_table_db, data_dir)
        target = parse_query(
            "SELECT ename FROM Emp WHERE salary > 60", two_table_db.schema
        )
        result = evaluate(target, two_table_db, name="R")
        result_file = tmp_path / "expected.csv"
        relation_to_csv_file(result, result_file)

        exit_code = main([
            "--data", str(data_dir),
            "--result", str(result_file),
            "--target-sql", "SELECT ename FROM Emp WHERE salary > 60",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Identified query" in output

    def test_missing_data_directory(self, tmp_path, capsys):
        exit_code = main([
            "--data", str(tmp_path / "nope"),
            "--target-sql", "SELECT 1",
        ])
        assert exit_code == 2
