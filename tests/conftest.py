"""Shared fixtures: small instances of every dataset plus common query objects.

Dataset builds are session-scoped (they are deterministic and read-only in
tests that only evaluate queries); tests that mutate a database always copy it
first, which is also how the library itself treats user databases.
"""

from __future__ import annotations

import pytest

from repro.datasets import adult, baseball, employee, scientific
from repro.obs.registry import reset_all_stats as _reset_registry
from repro.relational.database import Database
from repro.relational.evaluator import evaluate
from repro.relational.predicates import ComparisonOp, DNFPredicate, Term
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation
from repro.relational.schema import ForeignKey

#: Tiny scale used by most dataset-backed tests (keeps the suite fast).
TINY_SCALE = 0.03


@pytest.fixture(autouse=True)
def reset_all_stats():
    """Zero the metrics registry before every test.

    The legacy stats objects (``JOIN_STATS``, ``COLUMNAR_STATS``,
    ``PUSHDOWN_STATS``) are process-wide registry counters; without this,
    their values leak across tests and every guard has to diff before/after
    by hand. Resetting *before* the test (not after) also means a test can
    still inspect counters post-mortem in ``--pdb`` sessions.
    """
    _reset_registry()
    yield


@pytest.fixture(scope="session")
def employee_db() -> Database:
    return employee.build_database()


@pytest.fixture(scope="session")
def employee_result() -> Relation:
    return employee.result_for()


@pytest.fixture(scope="session")
def employee_candidates() -> list[SPJQuery]:
    return employee.candidate_trio()


@pytest.fixture(scope="session")
def scientific_db() -> Database:
    return scientific.build_database(TINY_SCALE)


@pytest.fixture(scope="session")
def baseball_db() -> Database:
    return baseball.build_database(TINY_SCALE)


@pytest.fixture(scope="session")
def adult_db() -> Database:
    return adult.build_database(TINY_SCALE)


@pytest.fixture(scope="session")
def two_table_db() -> Database:
    """A small two-table database with a foreign key, used across unit tests."""
    return Database.from_tables(
        {
            "Dept": (["did", "dname", "budget"], [
                [1, "IT", 100],
                [2, "Sales", 80],
                [3, "Service", 60],
            ]),
            "Emp": (["eid", "ename", "did", "salary", "senior"], [
                [1, "Ann", 1, 90, True],
                [2, "Bo", 2, 55, False],
                [3, "Cy", 1, 70, True],
                [4, "Di", 3, 40, False],
                [5, "Ed", 2, 65, None],
            ]),
        },
        foreign_keys=[ForeignKey("Emp", ("did",), "Dept", ("did",))],
        primary_keys={"Dept": ["did"], "Emp": ["eid"]},
    )


@pytest.fixture()
def salary_query() -> SPJQuery:
    """``SELECT Emp.ename FROM Emp WHERE Emp.salary > 60`` (single table)."""
    return SPJQuery(
        ["Emp"],
        ["Emp.ename"],
        DNFPredicate.from_terms([Term("Emp.salary", ComparisonOp.GT, 60)]),
    )


@pytest.fixture()
def join_query() -> SPJQuery:
    """A two-table SPJ query over the ``two_table_db`` fixture."""
    return SPJQuery(
        ["Emp", "Dept"],
        ["Emp.ename", "Dept.dname"],
        DNFPredicate.from_terms([Term("Dept.budget", ComparisonOp.GE, 80)]),
    )


@pytest.fixture()
def evaluated(two_table_db, join_query) -> Relation:
    return evaluate(join_query, two_table_db)
