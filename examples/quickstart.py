"""Quickstart: the paper's Example 1.1, end to end.

A user wants ``SELECT name FROM Employee WHERE salary > 4000`` but cannot
write SQL. She provides the Employee table and the result she expects (Bob
and Darren). QFE generates candidate queries, then asks her to pick the
correct result on slightly modified databases until a single query remains.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import OracleSelector, QFESession
from repro.datasets import employee
from repro.qbo import QBOConfig
from repro.sql.render import render_query


def main() -> None:
    database, result, target = employee.example_pair()

    print("The user's example database D:")
    print(database.pretty())
    print("\nThe user's example result R (the output of her intended query on D):")
    print(result.pretty())

    # The oracle selector plays the role of the user: it recognizes the result
    # of the intended query on each modified database QFE presents.
    session = QFESession(database, result, qbo_config=QBOConfig(threshold_variants=2))
    outcome = session.run(OracleSelector(target))

    print(f"\nQFE generated {outcome.initial_candidate_count} candidate queries "
          f"and asked for feedback {outcome.iteration_count} time(s).\n")
    for round_ in session.last_rounds:
        print(round_.pretty())
        print()

    print("Identified query:")
    print(render_query(outcome.identified_query, database.schema))
    print(f"\nConverged: {outcome.converged}; total modification cost: "
          f"{outcome.total_modification_cost:.0f}; "
          f"machine time: {outcome.total_seconds:.2f}s")


if __name__ == "__main__":
    main()
