"""Serving QFE: many sessions, one backend, kill-proof checkpoints.

This example boots the session service in-process, drives two concurrent
users' sessions through the HTTP JSON API exactly as a web front end would,
then simulates a server crash — the manager is torn down mid-session — and
resumes the surviving session from its on-disk checkpoint with a fresh
server, finishing with an identical outcome.

Run with::

    python examples/interactive_service.py
"""

from __future__ import annotations

import tempfile

from repro.service.client import ServiceClient
from repro.service.manager import SessionManager
from repro.service.server import make_server
from repro.service.store import FileSessionStore

WORKLOAD = "Q2"
SCALE = 0.03
SPEC = dict(scale=SCALE, candidate_count=8, config={"delta_seconds": 30.0})


def boot(store_dir: str) -> tuple:
    manager = SessionManager(workers=0, store=FileSessionStore(store_dir))
    server = make_server(manager)
    server.serve_background()
    host, port = server.server_address[:2]
    return server, ServiceClient(f"http://{host}:{port}")


def drive_one_round(client: ServiceClient, session_id: str) -> bool:
    """Fetch the round, print its gist, answer like the worst-case user."""
    payload = client.get_round(session_id)
    if payload["round"] is None:
        print(f"  [{session_id}] finished: {payload['status']}")
        if payload.get("identified_sql"):
            print("    " + payload["identified_sql"].replace("\n", " "))
        return False
    round_ = payload["round"]
    print(
        f"  [{session_id}] iteration {round_['iteration']}: "
        f"{len(round_['database_delta']['lines'])} database change(s), "
        f"{round_['option_count']} result option(s)"
    )
    choice = ServiceClient.worst_case_choice(payload)
    client.submit_choice(session_id, choice)
    return True


def main() -> None:
    with tempfile.TemporaryDirectory() as store_dir:
        server, client = boot(store_dir)
        print(f"service up: {client.healthz()}")

        # Two users, two sessions, one shared backend and base snapshot.
        alice = client.create_session(WORKLOAD, **SPEC)["session_id"]
        bob = client.create_session(WORKLOAD, **SPEC)["session_id"]
        print(f"\ncreated sessions {alice} (alice) and {bob} (bob)")

        # Interleave the two sessions round by round, as real users would.
        print("\nfirst rounds, interleaved:")
        drive_one_round(client, alice)
        drive_one_round(client, bob)
        drive_one_round(client, alice)

        # The server dies mid-session. Checkpoints survive on disk.
        print("\nsimulating a server crash ...")
        server.close()

        server, client = boot(store_dir)
        print(f"restarted with the same store: {client.healthz()}")

        # Both sessions resume transparently and run to completion.
        print("\nresumed sessions, driven to completion:")
        for session_id in (alice, bob):
            while drive_one_round(client, session_id):
                pass

        metrics = client.metrics()
        print(
            f"\nserved {metrics['rounds_served']} rounds across "
            f"{metrics['sessions_created'] + metrics['sessions_resumed']} session "
            f"activations; p50 round latency "
            f"{metrics['round_latency_seconds']['p50']:.3f}s"
        )
        server.close()


if __name__ == "__main__":
    main()
