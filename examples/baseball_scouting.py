"""Baseball-analytics scenario: three-table joins (paper Q5 and Q6).

An analyst wants per-manager statistics for specific players, joining the
Manager, Team and Batting tables — queries with joins, conjunctions and a
disjunction (Q6). The analyst only confirms results; QFE does the SQL.

This example also demonstrates the Section 6.2 extension: the candidate set
mixes different join schemas, and QFE processes one join-schema group at a
time (largest first).

Run with::

    python examples/baseball_scouting.py [scale]
"""

from __future__ import annotations

import sys

from repro.core import OracleSelector, QFEConfig, QFESession
from repro.core.extensions import group_by_join_schema, run_grouped_session
from repro.experiments.runner import prepare_candidates
from repro.qbo import QBOConfig
from repro.sql.render import render_query
from repro.workloads import build_pair


def run(scale: float = 0.1) -> None:
    qbo = QBOConfig(threshold_variants=2, max_terms_per_conjunct=3, max_candidates=30)
    config = QFEConfig(delta_seconds=0.5)

    for name in ("Q5", "Q6"):
        database, result, target = build_pair(name, scale)
        print(f"=== Workload {name} ===")
        print("Target query:")
        print(render_query(target, database.schema))
        candidates, _ = prepare_candidates(database, result, target, qbo_config=qbo)
        groups = group_by_join_schema(candidates)
        print(f"{len(candidates)} candidates across {len(groups)} join-schema group(s): "
              f"{[len(g) for g in groups]}")

        outcome = run_grouped_session(
            database, result, candidates,
            selector_factory=lambda group: OracleSelector(target),
            config=config,
        )
        print(f"groups processed: {outcome.groups_processed}, "
              f"total feedback rounds: {outcome.total_iterations}")
        if outcome.identified_query is not None:
            print("identified query:")
            print(render_query(outcome.identified_query, database.schema))
        print()

    # For comparison: a plain (single-group) session on Q5.
    database, result, target = build_pair("Q5", scale)
    candidates, _ = prepare_candidates(database, result, target, qbo_config=qbo)
    session = QFESession(database, result, candidates=candidates, config=config)
    outcome = session.run(OracleSelector(target))
    print(f"Plain session on Q5: {outcome.iteration_count} rounds, converged={outcome.converged}")


if __name__ == "__main__":
    run(float(sys.argv[1]) if len(sys.argv) > 1 else 0.1)
