"""User-study scenario: simulated participants on the Adult census table.

Reproduces the shape of the paper's Section 7.7 user study: three simulated
participants determine three target queries, once with QFE's user-effort cost
model and once with the alternative model that maximizes the number of
partitioned query subsets. The response-time model charges users for every
piece of new information they must absorb, so the comparison shows why
minimizing per-round deltas wins on *total* time even when it needs an extra
round or two.

Run with::

    python examples/census_user_study.py [scale]
"""

from __future__ import annotations

import sys

from repro.experiments.report import render_tables
from repro.experiments.studies import user_study


def run(scale: float = 0.08) -> None:
    table = user_study(scale)
    print(render_tables([table]))

    rows = table.as_dicts()
    qfe_total = sum(r["Total time (s)"] for r in rows if r["Approach"] == "QFE")
    alternative_total = sum(r["Total time (s)"] for r in rows if r["Approach"] == "max-subsets")
    qfe_rounds = sum(r["# of iterations"] for r in rows if r["Approach"] == "QFE")
    alternative_rounds = sum(r["# of iterations"] for r in rows if r["Approach"] == "max-subsets")
    print("\nSummary across participants and targets:")
    print(f"  QFE cost model:     {qfe_rounds:>3} rounds, {qfe_total:7.1f}s total user+machine time")
    print(f"  max-subsets model:  {alternative_rounds:>3} rounds, {alternative_total:7.1f}s total")
    if alternative_total > 0:
        print(f"  QFE total-time ratio: {alternative_total / max(qfe_total, 1e-9):.2f}x "
              f"(paper reports up to 1.5x in QFE's favour)")


if __name__ == "__main__":
    run(float(sys.argv[1]) if len(sys.argv) > 1 else 0.08)
