"""Bring-your-own-data scenario: from CSV files to an identified SQL query.

SQLShare-style workflow: the user has CSV files, loads them as a database,
pastes the result rows they expect, and lets QFE find the query. This example
builds the CSVs on the fly (a small product/orders schema), round-trips them
through the CSV loader, runs QFE with a scripted user, and cross-checks the
identified query against SQLite.

Run with::

    python examples/csv_to_query.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import OracleSelector, QFESession
from repro.qbo import QBOConfig
from repro.relational.csv_io import database_from_csv_directory, database_to_csv_directory
from repro.relational.database import Database
from repro.relational.evaluator import evaluate
from repro.relational.schema import ForeignKey
from repro.sql.parser import parse_query
from repro.sql.render import render_query
from repro.sql.sqlite_backend import SQLiteBackend


def build_source_database() -> Database:
    """A small product catalogue with orders (what the user exported as CSV)."""
    return Database.from_tables(
        {
            "Product": (
                ["pid", "pname", "category", "price"],
                [
                    [1, "Laptop", "electronics", 1200],
                    [2, "Phone", "electronics", 800],
                    [3, "Desk", "furniture", 300],
                    [4, "Chair", "furniture", 150],
                    [5, "Monitor", "electronics", 400],
                ],
            ),
            "Orders": (
                ["oid", "pid", "quantity", "region"],
                [
                    [1, 1, 2, "EU"],
                    [2, 2, 1, "US"],
                    [3, 2, 3, "EU"],
                    [4, 3, 1, "US"],
                    [5, 4, 4, "EU"],
                    [6, 5, 2, "US"],
                ],
            ),
        },
        foreign_keys=[ForeignKey("Orders", ("pid",), "Product", ("pid",))],
        primary_keys={"Product": ["pid"], "Orders": ["oid"]},
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        directory = Path(workdir)
        database_to_csv_directory(build_source_database(), directory)
        print(f"Wrote CSV files: {[p.name for p in sorted(directory.glob('*.csv'))]}")

        database = database_from_csv_directory(
            directory,
            foreign_keys=[ForeignKey("Orders", ("pid",), "Product", ("pid",))],
            primary_keys={"Product": ["pid"], "Orders": ["oid"]},
        )

    # The query the user has in mind (but cannot write): expensive electronics
    # that were ordered in the EU.
    target = parse_query(
        "SELECT Product.pname, Orders.quantity FROM Product "
        "INNER JOIN Orders ON Orders.pid = Product.pid "
        "WHERE Product.category = 'electronics' AND Orders.region = 'EU'",
        database.schema,
    )
    result = evaluate(target, database, name="R")
    print("\nThe rows the user expects:")
    print(result.pretty())

    session = QFESession(database, result, qbo_config=QBOConfig(threshold_variants=2))
    outcome = session.run(OracleSelector(target))
    print(f"\nQFE rounds: {outcome.iteration_count}, converged: {outcome.converged}")
    print("Identified query:")
    print(render_query(outcome.identified_query, database.schema))

    with SQLiteBackend(database) as backend:
        sqlite_result = backend.execute(outcome.identified_query)
    print(f"\nSQLite cross-check: identified query reproduces the expected rows: "
          f"{sqlite_result.bag_equal(result)}")


if __name__ == "__main__":
    main()
