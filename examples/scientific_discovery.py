"""Scientific-workflow scenario: the SQLShare biology workload (paper Q2).

A biologist has uploaded two tables of differential-expression statistics and
knows which six genes her intended query should return, but not how to write
the query (it combines four log-fold-change thresholds with a disjunction of
p-value filters). This script reproduces the paper's Q2 workflow on the
synthetic scientific database: candidate generation, iterative winnowing with
worst-case and with target-aware feedback, and the per-round statistics of
Table 1(b).

Run with::

    python examples/scientific_discovery.py [scale]
"""

from __future__ import annotations

import sys

from repro.core import OracleSelector, QFEConfig, QFESession, WorstCaseSelector
from repro.experiments.runner import prepare_candidates
from repro.qbo import QBOConfig
from repro.sql.render import render_query
from repro.workloads import build_pair


def run(scale: float = 0.12) -> None:
    database, result, target = build_pair("Q2", scale)
    print(f"Scientific database at scale {scale}: "
          f"{database.total_tuples()} tuples across {len(database.table_names)} tables")
    print(f"The intended query returns {len(result)} joined rows.\n")
    print("Target query (what the biologist could not write herself):")
    print(render_query(target, database.schema))

    qbo = QBOConfig(threshold_variants=2, max_terms_per_conjunct=3, max_candidates=40)
    candidates, generation_seconds = prepare_candidates(database, result, target, qbo_config=qbo)
    print(f"\nThe Query Generator found {len(candidates)} candidate queries "
          f"in {generation_seconds:.2f}s — all of them produce the example result on D.")

    for label, selector in (
        ("worst-case feedback (upper bound on rounds)", WorstCaseSelector()),
        ("target-aware feedback (a user who recognizes her result)", OracleSelector(target)),
    ):
        session = QFESession(database, result, candidates=candidates, config=QFEConfig())
        outcome = session.run(selector)
        print(f"\n--- {label} ---")
        print(f"iterations: {outcome.iteration_count}, converged: {outcome.converged}")
        header = f"{'iter':>4} {'queries':>8} {'subsets':>8} {'skyline':>8} {'time(s)':>8} " \
                 f"{'dbCost':>7} {'resCost':>8}"
        print(header)
        for record in outcome.iterations:
            print(f"{record.iteration:>4} {record.candidate_count:>8} {record.subset_count:>8} "
                  f"{record.skyline_pair_count:>8} {record.execution_seconds:>8.2f} "
                  f"{record.db_cost:>7.0f} {record.result_cost:>8.0f}")
        if outcome.identified_query is not None:
            print("identified query:")
            print(render_query(outcome.identified_query, database.schema))


if __name__ == "__main__":
    run(float(sys.argv[1]) if len(sys.argv) > 1 else 0.12)
