"""Shared configuration for the benchmark suite.

Every experiment benchmark regenerates one of the paper's tables/studies at a
dataset scale controlled by the ``QFE_BENCH_SCALE`` environment variable
(default 0.06 — minutes, not hours, on a laptop; set it to 1.0 to run at the
paper's full row counts). Heavy benchmarks run a single round via
``benchmark.pedantic`` — the interesting output is the regenerated table
itself, which is attached to the benchmark's ``extra_info`` and printed.

After any run that actually collected benchmark statistics, a
machine-readable summary is written to ``benchmarks/BENCH_components.json``:
per benchmark group, the median seconds of every test plus its speedup
against the group's designated reference implementation (row-at-a-time for
``candidate-batch``, cold rebuild for ``delta-derive``, the serial backend
for ``round-planner``, the single-user run for ``service-round``). CI
uploads the file as an artifact so the perf trajectory is tracked across
PRs.

Memory figures ride along in a ``memory`` section: benchmarks record
``tracemalloc`` peaks and bytes-per-joined-row per bench group through the
``record_group_memory`` fixture (with :func:`measure_peak` for the tracing
itself, kept *outside* the timed region so instrumentation never skews the
timings). The writer merges with an existing ``BENCH_components.json`` so a
follow-up session (e.g. the slow-marked scale-10 smoke) adds its groups and
memory figures instead of clobbering the component results.
"""

from __future__ import annotations

import json
import os
import tracemalloc
from pathlib import Path

import pytest

BENCH_SCALE = float(os.environ.get("QFE_BENCH_SCALE", "0.06"))

#: Where the machine-readable benchmark summary is written.
BENCH_RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_components.json"

#: Per group, the benchmark every other member's speedup is measured against.
_GROUP_REFERENCES = {
    "candidate-batch": "test_bench_all_candidates_rowwise_reference",
    "delta-derive": "test_bench_candidate_evaluation_rebuild",
    "round-planner": "test_bench_round_planner_serial",
    "service-round": "test_bench_service_round_1_user",
}


def _collect_benchmark_stats(session) -> list[tuple[str, str, float]]:
    """``(group, name, median seconds)`` for every benchmark that ran."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return []
    collected: list[tuple[str, str, float]] = []
    for bench in getattr(bench_session, "benchmarks", []):
        stats = getattr(bench, "stats", None)
        median = getattr(stats, "median", None)
        if median is None:  # nested Stats container on some versions
            median = getattr(getattr(stats, "stats", None), "median", None)
        if median is None:
            continue
        group = getattr(bench, "group", None) or "ungrouped"
        name = getattr(bench, "name", None) or getattr(bench, "fullname", "unknown")
        collected.append((group, str(name), float(median)))
    return collected


#: Per bench group, memory figures recorded via ``record_group_memory``.
_GROUP_MEMORY: dict[str, dict] = {}


def measure_peak(function, *args, **kwargs):
    """Run *function* under ``tracemalloc`` and return ``(result, peak bytes)``.

    Nested tracing is left alone: when a caller (or an outer benchmark) is
    already tracing, the peak is reported as ``None`` rather than attributed
    to the wrong scope.
    """
    if tracemalloc.is_tracing():
        return function(*args, **kwargs), None
    tracemalloc.start()
    try:
        result = function(*args, **kwargs)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


@pytest.fixture()
def record_group_memory():
    """Record memory figures for a bench group into ``BENCH_components.json``.

    Usage: ``record_group_memory("scenario-sweep-smoke", joined_rows=...,
    typed_peak_tracemalloc_bytes=..., bytes_per_joined_row_typed=...)``.
    Figures with value ``None`` are skipped; repeated calls for one group
    merge. The session writer emits them under the top-level ``memory`` key.
    """

    def record(group: str, **figures) -> None:
        entry = _GROUP_MEMORY.setdefault(group, {})
        entry.update({key: value for key, value in figures.items() if value is not None})

    return record


def pytest_sessionfinish(session, exitstatus) -> None:
    """Write ``BENCH_components.json`` when benchmark stats or memory figures exist."""
    try:
        stats = _collect_benchmark_stats(session)
        if not stats and not _GROUP_MEMORY:
            return
        groups: dict[str, dict] = {}
        for group, name, median in stats:
            entry = groups.setdefault(
                group, {"reference": _GROUP_REFERENCES.get(group), "tests": {}}
            )
            entry["tests"][name] = {"median_seconds": median}
        for entry in groups.values():
            reference = entry["tests"].get(entry["reference"], {}).get("median_seconds")
            for test in entry["tests"].values():
                test["speedup_vs_reference"] = (
                    reference / test["median_seconds"]
                    if reference and test["median_seconds"] > 0
                    else None
                )
        # Merge with an existing file so separate sessions (component run,
        # slow scale-10 smoke) compose one artifact instead of clobbering.
        payload = {"scale": BENCH_SCALE, "groups": {}, "memory": {}}
        if BENCH_RESULTS_PATH.exists():
            try:
                previous = json.loads(BENCH_RESULTS_PATH.read_text(encoding="utf-8"))
                payload["groups"] = previous.get("groups", {})
                payload["memory"] = previous.get("memory", {})
            except (OSError, ValueError):
                pass
        payload["groups"].update(groups)
        payload["memory"].update(_GROUP_MEMORY)
        if not payload["memory"]:
            del payload["memory"]
        BENCH_RESULTS_PATH.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    except Exception:  # pragma: no cover - never fail a test run over reporting
        pass


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


def run_once(benchmark, function, *args, **kwargs):
    """Run *function* exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def attach_table(benchmark, tables) -> None:
    """Record rendered tables in the benchmark's extra info and print them."""
    from repro.experiments.report import ExperimentTable, render_tables

    if isinstance(tables, ExperimentTable):
        tables = [tables]
    text = render_tables(list(tables))
    benchmark.extra_info["table"] = text
    print("\n" + text)
