"""Shared configuration for the benchmark suite.

Every experiment benchmark regenerates one of the paper's tables/studies at a
dataset scale controlled by the ``QFE_BENCH_SCALE`` environment variable
(default 0.06 — minutes, not hours, on a laptop; set it to 1.0 to run at the
paper's full row counts). Heavy benchmarks run a single round via
``benchmark.pedantic`` — the interesting output is the regenerated table
itself, which is attached to the benchmark's ``extra_info`` and printed.
"""

from __future__ import annotations

import os

import pytest

BENCH_SCALE = float(os.environ.get("QFE_BENCH_SCALE", "0.06"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


def run_once(benchmark, function, *args, **kwargs):
    """Run *function* exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def attach_table(benchmark, tables) -> None:
    """Record rendered tables in the benchmark's extra info and print them."""
    from repro.experiments.report import ExperimentTable, render_tables

    if isinstance(tables, ExperimentTable):
        tables = [tables]
    text = render_tables(list(tables))
    benchmark.extra_info["table"] = text
    print("\n" + text)
