"""Shared configuration for the benchmark suite.

Every experiment benchmark regenerates one of the paper's tables/studies at a
dataset scale controlled by the ``QFE_BENCH_SCALE`` environment variable
(default 0.06 — minutes, not hours, on a laptop; set it to 1.0 to run at the
paper's full row counts). Heavy benchmarks run a single round via
``benchmark.pedantic`` — the interesting output is the regenerated table
itself, which is attached to the benchmark's ``extra_info`` and printed.

After any run that actually collected benchmark statistics, a
machine-readable summary is written to ``benchmarks/BENCH_components.json``:
per benchmark group, the median seconds of every test plus its speedup
against the group's designated reference implementation (row-at-a-time for
``candidate-batch``, cold rebuild for ``delta-derive``, the serial backend
for ``round-planner``, the single-user run for ``service-round``). CI
uploads the file as an artifact so the perf trajectory is tracked across
PRs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

BENCH_SCALE = float(os.environ.get("QFE_BENCH_SCALE", "0.06"))

#: Where the machine-readable benchmark summary is written.
BENCH_RESULTS_PATH = Path(__file__).resolve().parent / "BENCH_components.json"

#: Per group, the benchmark every other member's speedup is measured against.
_GROUP_REFERENCES = {
    "candidate-batch": "test_bench_all_candidates_rowwise_reference",
    "delta-derive": "test_bench_candidate_evaluation_rebuild",
    "round-planner": "test_bench_round_planner_serial",
    "service-round": "test_bench_service_round_1_user",
}


def _collect_benchmark_stats(session) -> list[tuple[str, str, float]]:
    """``(group, name, median seconds)`` for every benchmark that ran."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return []
    collected: list[tuple[str, str, float]] = []
    for bench in getattr(bench_session, "benchmarks", []):
        stats = getattr(bench, "stats", None)
        median = getattr(stats, "median", None)
        if median is None:  # nested Stats container on some versions
            median = getattr(getattr(stats, "stats", None), "median", None)
        if median is None:
            continue
        group = getattr(bench, "group", None) or "ungrouped"
        name = getattr(bench, "name", None) or getattr(bench, "fullname", "unknown")
        collected.append((group, str(name), float(median)))
    return collected


def pytest_sessionfinish(session, exitstatus) -> None:
    """Write ``BENCH_components.json`` when benchmark statistics were collected."""
    try:
        stats = _collect_benchmark_stats(session)
        if not stats:
            return
        groups: dict[str, dict] = {}
        for group, name, median in stats:
            entry = groups.setdefault(
                group, {"reference": _GROUP_REFERENCES.get(group), "tests": {}}
            )
            entry["tests"][name] = {"median_seconds": median}
        for entry in groups.values():
            reference = entry["tests"].get(entry["reference"], {}).get("median_seconds")
            for test in entry["tests"].values():
                test["speedup_vs_reference"] = (
                    reference / test["median_seconds"]
                    if reference and test["median_seconds"] > 0
                    else None
                )
        BENCH_RESULTS_PATH.write_text(
            json.dumps({"scale": BENCH_SCALE, "groups": groups}, indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
    except Exception:  # pragma: no cover - never fail a test run over reporting
        pass


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


def run_once(benchmark, function, *args, **kwargs):
    """Run *function* exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def attach_table(benchmark, tables) -> None:
    """Record rendered tables in the benchmark's extra info and print them."""
    from repro.experiments.report import ExperimentTable, render_tables

    if isinstance(tables, ExperimentTable):
        tables = [tables]
    text = render_tables(list(tables))
    benchmark.extra_info["table"] = text
    print("\n" + text)
