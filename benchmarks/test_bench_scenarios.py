"""Scenario-engine scale-sweep benchmarks.

One benchmark per catalog scenario runs the full sweep — generation, SQLite
oracle verification, a serial session and a pooled session per scale (with
transcript bit-identity enforced inside :func:`~repro.scenarios.sweep.\
run_sweep`), and the cold-vs-delta evaluation comparison — across the scales
in ``QFE_SCENARIO_SCALES`` (comma-separated, default ``0.1,0.25``; CI sweeps
``0.1,0.5,1.0``). The per-scale trajectories of every scenario are merged
and written to ``benchmarks/BENCH_scenarios.json``, which CI uploads as an
artifact so the scaling trajectory is tracked across PRs.

(The tier-1 fast guard for the engine's invariants — serial vs pooled
transcript bit-identity and oracle agreement — lives in
``tests/integration/test_scenario_differential.py``, not here.)
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from benchmarks.conftest import run_once
from repro.scenarios import SCENARIOS, run_sweep

SCENARIO_SCALES = [
    float(part)
    for part in os.environ.get("QFE_SCENARIO_SCALES", "0.1,0.25").split(",")
    if part.strip()
]
SCENARIO_SEED = int(os.environ.get("QFE_SCENARIO_SEED", "7"))

#: Where the merged per-scale trajectory is written.
BENCH_SCENARIOS_PATH = Path(__file__).resolve().parent / "BENCH_scenarios.json"

#: Per-scenario sweep payload entries, merged by the writer test below.
_MERGED: dict[str, dict] = {}


@pytest.mark.benchmark(group="scenario-sweep")
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_bench_scenario_sweep(benchmark, name):
    payload = run_once(
        benchmark,
        run_sweep,
        [name],
        SCENARIO_SCALES,
        seed=SCENARIO_SEED,
        workers=2,
        out_path=None,
    )
    entry = payload["scenarios"][name]
    assert len(entry["trajectory"]) == len(SCENARIO_SCALES)
    for point in entry["trajectory"]:
        # run_sweep raises on transcript divergence; these pin the record.
        assert point["transcripts_identical"] is True
        assert point["oracle_checked_queries"] == entry["spec"]["query_count"]
    _MERGED[name] = entry
    benchmark.extra_info["trajectory"] = entry["trajectory"]


def test_write_scenarios_trajectory_file():
    """Merge every swept scenario into ``BENCH_scenarios.json`` (runs last)."""
    if not _MERGED:  # collection was filtered down to this test alone
        pytest.skip("no scenario sweeps ran in this session")
    payload = {
        "seed": SCENARIO_SEED,
        "workers": 2,
        "scales": SCENARIO_SCALES,
        "scenarios": _MERGED,
    }
    BENCH_SCENARIOS_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    on_disk = json.loads(BENCH_SCENARIOS_PATH.read_text())
    assert set(on_disk["scenarios"]) == set(_MERGED)
