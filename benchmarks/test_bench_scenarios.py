"""Scenario-engine scale-sweep benchmarks.

One benchmark per catalog scenario runs the full sweep — generation, SQLite
oracle verification, a serial session and a pooled session per scale (with
transcript bit-identity enforced inside :func:`~repro.scenarios.sweep.\
run_sweep`), and the cold-vs-delta evaluation comparison — across the scales
in ``QFE_SCENARIO_SCALES`` (comma-separated, default ``0.1,0.25``; CI sweeps
``0.1,0.5,1.0``). The per-scale trajectories of every scenario are merged
and written to ``benchmarks/BENCH_scenarios.json``, which CI uploads as an
artifact so the scaling trajectory is tracked across PRs.

Two slow-marked scale-10 checks ride in the same file (CI runs them as a
separate ``-m slow`` step): a ``mixed@10`` sweep smoke over the serial and
SQL-pushdown backends whose storage/memory figures are merged into the
``BENCH_scenarios.json`` artifact, and the bench guard pinning that a
selective ``term_mask`` on the typed layout (warm sorted-index path) beats
the object-column full scan at scale 10.

(The tier-1 fast guard for the engine's invariants — serial vs pooled
transcript bit-identity and oracle agreement — lives in
``tests/integration/test_scenario_differential.py``, not here.)
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from benchmarks.conftest import measure_peak, run_once
from repro.relational.columnar import ColumnarView, ColumnarViewReference
from repro.relational.join import foreign_key_join
from repro.relational.predicates import ComparisonOp, Term
from repro.scenarios import SCENARIOS, generate_scenario, get_scenario, run_sweep

SCENARIO_SCALES = [
    float(part)
    for part in os.environ.get("QFE_SCENARIO_SCALES", "0.1,0.25").split(",")
    if part.strip()
]
SCENARIO_SEED = int(os.environ.get("QFE_SCENARIO_SEED", "7"))

#: Where the merged per-scale trajectory is written.
BENCH_SCENARIOS_PATH = Path(__file__).resolve().parent / "BENCH_scenarios.json"

#: Per-scenario sweep payload entries, merged by the writer test below.
_MERGED: dict[str, dict] = {}


@pytest.mark.benchmark(group="scenario-sweep")
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_bench_scenario_sweep(benchmark, name):
    payload = run_once(
        benchmark,
        run_sweep,
        [name],
        SCENARIO_SCALES,
        seed=SCENARIO_SEED,
        workers=2,
        out_path=None,
    )
    entry = payload["scenarios"][name]
    assert len(entry["trajectory"]) == len(SCENARIO_SCALES)
    for point in entry["trajectory"]:
        # run_sweep raises on transcript divergence; these pin the record.
        assert point["transcripts_identical"] is True
        assert point["oracle_checked_queries"] == entry["spec"]["query_count"]
    _MERGED[name] = entry
    benchmark.extra_info["trajectory"] = entry["trajectory"]


def test_write_scenarios_trajectory_file():
    """Merge every swept scenario into ``BENCH_scenarios.json`` (runs last)."""
    if not _MERGED:  # collection was filtered down to this test alone
        pytest.skip("no scenario sweeps ran in this session")
    payload = {
        "seed": SCENARIO_SEED,
        "workers": 2,
        "scales": SCENARIO_SCALES,
        "scenarios": _MERGED,
    }
    BENCH_SCENARIOS_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    on_disk = json.loads(BENCH_SCENARIOS_PATH.read_text())
    assert set(on_disk["scenarios"]) == set(_MERGED)


# ----------------------------------------------------------- scale-10 checks
_SMOKE_SCALE = 10.0


def _merge_into_trajectory_file(key: str, entry: dict) -> None:
    """Add one scenario entry to ``BENCH_scenarios.json`` without clobbering.

    The smoke runs in its own ``-m slow`` pytest session after the main
    sweep, so it must compose with — not overwrite — the trajectory file the
    sweep session wrote.
    """
    payload: dict = {"scales": [], "scenarios": {}}
    if BENCH_SCENARIOS_PATH.exists():
        try:
            payload = json.loads(BENCH_SCENARIOS_PATH.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            pass
    payload.setdefault("scenarios", {})[key] = entry
    BENCH_SCENARIOS_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


@pytest.mark.slow
@pytest.mark.benchmark(group="scenario-sweep-smoke")
def test_bench_mixed_scale10_smoke(benchmark, record_group_memory):
    """Full mixed@10 sweep point on the serial + SQL-pushdown backends.

    ``workers=0`` skips the pooled leg (the in-process engine and the
    pushdown oracle are the two layouts this smoke compares); the point's
    storage measurements — bytes per joined row typed vs object, tracemalloc
    peak, selective term-mask timings — land in the uploaded artifacts.
    """
    payload = run_once(
        benchmark,
        run_sweep,
        ["mixed"],
        [_SMOKE_SCALE],
        seed=SCENARIO_SEED,
        workers=0,
        out_path=None,
    )
    entry = payload["scenarios"]["mixed"]
    (point,) = entry["trajectory"]
    assert point["transcripts_identical"] is True
    assert set(point["backend_seconds"]) >= {"serial", "sql"}
    # The footprint acceptance line: typed storage ≥ 4× leaner per joined row.
    assert point["bytes_per_joined_row_typed"] * 4 <= point["bytes_per_joined_row_object"]
    record_group_memory(
        "scenario-sweep-smoke",
        scale=_SMOKE_SCALE,
        join_rows=point.get("join_rows"),
        bytes_per_joined_row_typed=point.get("bytes_per_joined_row_typed"),
        bytes_per_joined_row_object=point.get("bytes_per_joined_row_object"),
        storage_reduction=point.get("storage_reduction"),
        typed_peak_tracemalloc_bytes=point.get("typed_peak_tracemalloc_bytes"),
    )
    _merge_into_trajectory_file(f"mixed@{_SMOKE_SCALE:g}x", entry)
    benchmark.extra_info["trajectory"] = entry["trajectory"]


@pytest.mark.slow
def test_selective_term_mask_beats_full_scan_at_scale10(record_group_memory):
    """Bench guard: the warm sorted-index path must beat the object full scan.

    Measures the steady-state cost of *building* a selective equality mask
    (distinct constants each round, mask cache cleared, so the term-mask
    cache never short-circuits the comparison) on the typed layout versus
    the boxed object-tuple reference, best-of-5, at scenario scale 10.
    """
    generated = generate_scenario(get_scenario("mixed"), _SMOKE_SCALE, SCENARIO_SEED)
    joined = foreign_key_join(generated.database, tuple(generated.target.tables))
    relation = joined.relation
    id_column = next(
        name for name in relation.schema.attribute_names if name.endswith(".id")
    )
    constants = sorted(set(relation.column(id_column)))[: 40]
    assert len(constants) >= 10

    typed_view, typed_peak = measure_peak(ColumnarView, relation)
    reference_view = ColumnarViewReference(relation)
    terms = [Term(id_column, ComparisonOp.EQ, constant) for constant in constants]
    typed_view.term_mask(terms[0])  # pay the lazy sorted-index build once

    def best_of(view, rounds=5):
        best = float("inf")
        masks = None
        for _ in range(rounds):
            view.clear_term_masks()
            started = time.perf_counter()
            masks = [view.term_mask(term) for term in terms]
            best = min(best, time.perf_counter() - started)
        return best / len(terms), masks

    typed_seconds, typed_masks = best_of(typed_view)
    object_seconds, object_masks = best_of(reference_view)
    assert typed_masks == object_masks  # differential first, stopwatch second
    assert typed_seconds < object_seconds, (
        f"typed selective term_mask ({typed_seconds * 1e6:.1f}us/term) no faster "
        f"than the object full scan ({object_seconds * 1e6:.1f}us/term) "
        f"over {len(relation.tuples)} joined rows"
    )
    record_group_memory(
        "scenario-sweep-smoke",
        term_mask_selective_warm_seconds_typed=typed_seconds,
        term_mask_selective_warm_seconds_object=object_seconds,
        term_mask_selective_warm_speedup=object_seconds / typed_seconds,
        typed_view_peak_tracemalloc_bytes=typed_peak,
    )
