"""Benchmarks regenerating every table of the paper's evaluation (Section 7).

Each benchmark runs the corresponding experiment once at ``QFE_BENCH_SCALE``
and prints the regenerated table so it can be compared side by side with the
paper. EXPERIMENTS.md records the comparison for the default scale.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import attach_table, run_once
from repro.experiments import tables


@pytest.mark.benchmark(group="paper-tables")
def test_bench_table1_per_round_statistics(benchmark, bench_scale):
    result = run_once(benchmark, tables.table1, bench_scale)
    attach_table(benchmark, result)
    assert len(result) == 2
    for table in result:
        counts = table.column("# of queries")
        assert counts == sorted(counts, reverse=True)


@pytest.mark.benchmark(group="paper-tables")
def test_bench_table2_beta_sweep(benchmark, bench_scale):
    result = run_once(benchmark, tables.table2, bench_scale)
    attach_table(benchmark, result)
    rows = result.as_dicts()
    assert {row["Query"] for row in rows} == {"Q3", "Q4", "Q5", "Q6"}
    # paper shape: β has at most a marginal effect for most workloads. At small
    # dataset scales a single workload can show a larger spread (longer
    # worst-case tails), so require the *majority* of workloads to be
    # insensitive rather than every one.
    spreads = []
    for row in rows:
        iteration_counts = [row[c] for c in result.columns if c.startswith("iters")]
        assert all(count >= 0 for count in iteration_counts)
        spreads.append(max(iteration_counts) - min(iteration_counts))
    assert sum(1 for spread in spreads if spread <= 2) >= len(spreads) / 2


@pytest.mark.benchmark(group="paper-tables")
def test_bench_table3_delta_sweep(benchmark, bench_scale):
    result = run_once(benchmark, tables.table3, bench_scale)
    attach_table(benchmark, result)
    for table in result:
        assert all(i >= 1 for i in table.column("# of iterations"))


@pytest.mark.benchmark(group="paper-tables")
def test_bench_table4_algorithm4_per_iteration(benchmark, bench_scale):
    result = run_once(benchmark, tables.table4, bench_scale)
    attach_table(benchmark, result)
    assert all(t >= 0 for t in result.column("Alg. 4 time (ms)"))


@pytest.mark.benchmark(group="paper-tables")
def test_bench_table5_algorithm4_scaling(benchmark, bench_scale):
    result = run_once(benchmark, tables.table5, bench_scale, pair_counts=(25, 50, 100, 200))
    attach_table(benchmark, result)
    times = result.column("Exec. time (s)")
    sizes = result.column("# of skyline pairs")
    # paper shape: Algorithm 4's runtime grows with |SP| when |SP| actually
    # grows (at small scales every requested size may truncate to the same
    # skyline set, where only timing noise remains), and the chosen
    # partitioning stays stable across sizes.
    if sizes[-1] > sizes[0]:
        assert times[-1] + 0.01 >= times[0]
    assert len(set(result.column("chosen k"))) <= 2


@pytest.mark.benchmark(group="paper-tables")
def test_bench_table6_candidate_count_sweep(benchmark, bench_scale):
    result = run_once(benchmark, tables.table6, bench_scale)
    attach_table(benchmark, result)
    iterations = result.column("# of iterations")
    candidates = result.column("# of candidate queries")
    assert candidates == sorted(candidates)
    # paper shape: more candidates need at least as many iterations (tolerating
    # one round of noise between adjacent sizes)
    assert iterations[-1] + 1 >= iterations[0]


@pytest.mark.benchmark(group="paper-tables")
def test_bench_table7_first_iteration_breakdown(benchmark, bench_scale):
    result = run_once(benchmark, tables.table7, bench_scale)
    attach_table(benchmark, result)
    rows = result.as_dicts()
    # paper shape: across the sweep, Algorithm 4 never dominates the first
    # iteration — skyline enumeration plus database modification account for
    # the majority of the time.
    alg4_total = sum(row["Algorithm 4"] for row in rows)
    other_total = sum(row["Algorithm 3"] + row["Modify DB"] for row in rows)
    assert alg4_total <= other_total
