"""Benchmarks for the Section 7.7 studies and the DESIGN.md ablations."""

from __future__ import annotations

import pytest

from benchmarks.conftest import attach_table, run_once
from repro.core.config import IterationEstimator, QFEConfig
from repro.experiments import studies
from repro.experiments.report import ExperimentTable
from repro.experiments.runner import prepare_candidates, run_session
from repro.qbo.config import QBOConfig
from repro.workloads import build_pair

_QBO = QBOConfig(threshold_variants=2, max_terms_per_conjunct=3, max_candidates=40)


@pytest.mark.benchmark(group="section-7-7")
def test_bench_initial_pair_size_study(benchmark, bench_scale):
    result = run_once(benchmark, studies.initial_pair_size_study, bench_scale)
    attach_table(benchmark, result)
    assert len(result.rows) == 4


@pytest.mark.benchmark(group="section-7-7")
def test_bench_entropy_study(benchmark, bench_scale):
    result = run_once(benchmark, studies.entropy_study, bench_scale)
    attach_table(benchmark, result)
    distinct = result.column("# distinct values")
    assert distinct == sorted(distinct, reverse=True)


@pytest.mark.benchmark(group="section-7-7")
def test_bench_user_study(benchmark, bench_scale):
    result = run_once(benchmark, studies.user_study, min(bench_scale, 0.1))
    attach_table(benchmark, result)
    rows = result.as_dicts()
    assert all(row["Identified"] for row in rows)
    qfe_time = sum(r["Total time (s)"] for r in rows if r["Approach"] == "QFE")
    alternative_time = sum(r["Total time (s)"] for r in rows if r["Approach"] == "max-subsets")
    # paper shape: the QFE cost model does not lose on total user+machine time
    assert qfe_time <= alternative_time * 1.15


# --------------------------------------------------------------------- ablations
@pytest.mark.benchmark(group="ablations")
def test_bench_ablation_iteration_estimator(benchmark, bench_scale):
    """Naive Eq. (6) vs refined Eq. (7)-(9) estimator, same workload."""

    def run_both():
        database, result, target = build_pair("Q2", bench_scale)
        candidates, _ = prepare_candidates(database, result, target, qbo_config=_QBO)
        table = ExperimentTable(
            "Ablation: iteration estimator (Q2, worst-case feedback)",
            ["Estimator", "# of iterations", "Modification cost"],
        )
        for estimator in (IterationEstimator.NAIVE, IterationEstimator.REFINED):
            run = run_session(
                database, result, target, candidates=candidates,
                config=QFEConfig(iteration_estimator=estimator), feedback="worst",
            )
            table.add_row(estimator.value, run.iteration_count,
                          round(run.total_modification_cost, 1))
        return table

    table = run_once(benchmark, run_both)
    attach_table(benchmark, table)
    iterations = table.column("# of iterations")
    assert abs(iterations[0] - iterations[1]) <= 3


@pytest.mark.benchmark(group="ablations")
def test_bench_ablation_side_effect_preference(benchmark, bench_scale):
    """Side-effect-aware materialization on vs off (baseball, 3-table join)."""

    def run_both():
        database, result, target = build_pair("Q5", bench_scale)
        candidates, _ = prepare_candidates(database, result, target, qbo_config=_QBO)
        table = ExperimentTable(
            "Ablation: prefer side-effect-free modifications (Q5)",
            ["prefer_no_side_effects", "# of iterations", "Modification cost"],
        )
        for preference in (True, False):
            run = run_session(
                database, result, target, candidates=candidates,
                config=QFEConfig(prefer_no_side_effects=preference), feedback="worst",
            )
            table.add_row(preference, run.iteration_count, round(run.total_modification_cost, 1))
        return table

    table = run_once(benchmark, run_both)
    attach_table(benchmark, table)
    costs = table.column("Modification cost")
    # preferring side-effect-free modifications never increases total user cost much
    assert costs[0] <= costs[1] * 1.5 + 5


@pytest.mark.benchmark(group="ablations")
def test_bench_ablation_cost_model_vs_max_subsets(benchmark, bench_scale):
    """QFE's Equation (5) objective vs the maximize-subsets baseline (Q3)."""
    from repro.core.alternative_cost import max_partitions_score

    def run_both():
        database, result, target = build_pair("Q3", bench_scale)
        candidates, _ = prepare_candidates(database, result, target, qbo_config=_QBO)
        table = ExperimentTable(
            "Ablation: database-generation objective (Q3, worst-case feedback)",
            ["Objective", "# of iterations", "Modification cost"],
        )
        for label, score in (("QFE cost model", None), ("max-subsets", max_partitions_score)):
            run = run_session(
                database, result, target, candidates=candidates,
                feedback="worst", score=score,
            )
            table.add_row(label, run.iteration_count, round(run.total_modification_cost, 1))
        return table

    table = run_once(benchmark, run_both)
    attach_table(benchmark, table)
    rows = table.as_dicts()
    qfe_row = next(r for r in rows if r["Objective"] == "QFE cost model")
    alt_row = next(r for r in rows if r["Objective"] == "max-subsets")
    # paper shape: the alternative needs no more rounds, QFE pays no more user cost
    assert alt_row["# of iterations"] <= qfe_row["# of iterations"] + 1
