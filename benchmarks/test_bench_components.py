"""Micro-benchmarks of the core components (repeatable, statistics-friendly).

These complement the one-shot table regenerations: they measure the steady
per-call cost of the pieces that dominate QFE's runtime — the foreign-key
join, candidate evaluation over a joined relation, ``minEdit``, Algorithm 3's
pair enumeration and Algorithm 4's subset selection — so regressions in the
substrate show up even without rerunning the full experiments.
"""

from __future__ import annotations

import pytest

from repro.core.config import QFEConfig
from repro.core.execution_backend import ProcessPoolBackend, SqlPushdownBackend
from repro.core.modification import PairSetSimulator
from repro.core.round_planner import RoundPlanner
from repro.core.skyline import skyline_stc_dtc_pairs
from repro.core.subset_selection import pick_stc_dtc_subset
from repro.core.tuple_class import TupleClassSpace
from repro.experiments.runner import prepare_candidates
from repro.qbo.config import QBOConfig
from repro.qbo.generator import QueryGenerator
from repro.relational.columnar import ColumnarView
from repro.relational.delta import TupleDelta
from repro.relational.edit import min_edit_relation
from repro.relational.evaluator import (
    JoinCache,
    evaluate,
    evaluate_batch,
    evaluate_on_join,
    evaluate_on_join_reference,
    result_fingerprint,
)
from repro.relational.join import JOIN_STATS, full_join
from repro.sql.pushdown import PUSHDOWN_STATS
from repro.workloads import build_pair

_QBO = QBOConfig(threshold_variants=2, max_terms_per_conjunct=3, max_candidates=25)


@pytest.fixture(scope="module")
def scientific_setup(bench_scale):
    database, result, target = build_pair("Q2", min(bench_scale, 0.12))
    candidates, _ = prepare_candidates(database, result, target, qbo_config=_QBO)
    joined = full_join(database)
    space = TupleClassSpace(joined, candidates)
    return database, result, target, candidates, joined, space


@pytest.mark.benchmark(group="components")
def test_bench_full_join(benchmark, scientific_setup):
    database = scientific_setup[0]
    joined = benchmark(full_join, database)
    assert len(joined) > 0


@pytest.mark.benchmark(group="components")
def test_bench_candidate_evaluation_on_join(benchmark, scientific_setup):
    database, result, _, candidates, joined, _ = scientific_setup
    query = candidates[0]
    evaluated = benchmark(evaluate_on_join, query, joined, database)
    assert evaluated.bag_equal(result)


# The pair below is the tentpole comparison: one full partitioning pass over
# all surviving candidates (results + fingerprints), row-at-a-time versus the
# columnar batch engine. ``batch_cold`` rebuilds the columnar view and every
# term mask per round — the cost paid once per freshly generated modified
# database — and is the number the ≥3× speedup target refers to.
@pytest.mark.benchmark(group="candidate-batch")
def test_bench_all_candidates_rowwise_reference(benchmark, scientific_setup):
    database, _, _, candidates, joined, _ = scientific_setup

    def run():
        return [
            result_fingerprint(evaluate_on_join_reference(q, joined, database))
            for q in candidates
        ]

    fingerprints = benchmark(run)
    assert len(fingerprints) == len(candidates)


@pytest.mark.benchmark(group="candidate-batch")
def test_bench_all_candidates_batch_cold(benchmark, scientific_setup):
    database, _, _, candidates, joined, _ = scientific_setup

    def run():
        view = ColumnarView(joined.relation)  # fresh view: no cached masks
        return evaluate_batch(candidates, joined, database, columnar=view)

    batch = benchmark(run)
    assert len(batch) == len(candidates)


@pytest.mark.benchmark(group="candidate-batch")
def test_bench_all_candidates_batch_warm(benchmark, scientific_setup):
    database, _, _, candidates, joined, _ = scientific_setup
    joined.columnar()  # ensure the shared view exists

    def run():
        return evaluate_batch(candidates, joined, database)

    batch = benchmark(run)
    assert len(batch) == len(candidates)


# The ``delta-derive`` group is the PR-2 tentpole comparison: the
# per-candidate evaluation step of the database-generation loop. Each QFE
# round materializes a D' differing from D by a handful of tuple updates and
# evaluates every surviving candidate on it. ``rebuild`` pays the cold path
# (full FK join + fresh columnar view + every term mask); ``incremental``
# patches the warm base join through the recorded TupleDelta
# (JoinedRelation.apply_delta) and shares untouched columns and masks
# copy-on-write. The ≥5x speedup target refers to rebuild/incremental.
@pytest.fixture(scope="module")
def delta_setup(scientific_setup):
    database, _, _, candidates, joined, _ = scientific_setup
    joined.columnar()
    evaluate_batch(candidates, joined, database)  # warm base masks, as a session would
    derived_db = database.copy()
    table = derived_db.table_names[0]
    relation = derived_db.relation(table)
    column = next(
        a.name
        for a in relation.schema.attributes
        if a.type.name in ("FLOAT", "INTEGER") and a.name.startswith("logFC")
    )
    index = relation.schema.index_of(column)
    delta = TupleDelta()
    for target in relation.tuples[:2]:
        values = list(target.values)
        values[index] = (values[index] or 0) + 5.0
        relation.replace_tuple(target.tuple_id, values)
        delta.record_update(table, target.tuple_id, relation.tuple_by_id(target.tuple_id).values)
    return database, derived_db, delta, candidates, joined


@pytest.mark.benchmark(group="delta-derive")
def test_bench_candidate_evaluation_rebuild(benchmark, delta_setup):
    _, derived_db, _, candidates, _ = delta_setup

    def run():
        joined = full_join(derived_db)
        view = ColumnarView(joined.relation)  # cold: no shared masks
        return evaluate_batch(candidates, joined, derived_db, columnar=view)

    batch = benchmark(run)
    assert len(batch) == len(candidates)


@pytest.mark.benchmark(group="delta-derive")
def test_bench_candidate_evaluation_incremental(benchmark, delta_setup):
    database, derived_db, delta, candidates, joined = delta_setup

    def run():
        derived = joined.apply_delta(delta, database)
        return evaluate_batch(candidates, derived, derived_db)

    batch = benchmark(run)
    assert len(batch) == len(candidates)


def test_delta_derive_path_never_rebuilds_the_join(delta_setup):
    """Fast regression guard (not a benchmark): the derive path must perform
    zero full ``foreign_key_join`` materializations — a silent fallback to
    cold behaviour would erase the speedup without failing any equality test.
    """
    database, derived_db, delta, candidates, joined = delta_setup

    JOIN_STATS.reset()
    derived = joined.apply_delta(delta, database)
    incremental = evaluate_batch(candidates, derived, derived_db)
    assert JOIN_STATS.full_joins == 0, "apply_delta fell back to a full join rebuild"
    assert JOIN_STATS.delta_applies == 1

    # Same guarantee through the cache front door used by the QFE loop: once
    # the base signatures are warm, serving D' performs no full join at all.
    cache = JoinCache()
    for signature in {query.join_signature for query in candidates}:
        cache.join_for(database, signature)
    JOIN_STATS.reset()
    cache.derive(database, delta, derived_db)
    through_cache = cache.evaluate_batch(candidates, derived_db)
    assert JOIN_STATS.full_joins == 0, "JoinCache.derive fell back to a full join rebuild"

    # And the derived state is exactly the cold rebuild, fingerprint for
    # fingerprint (the guard must not pass by skipping work).
    cold = evaluate_batch(candidates, full_join(derived_db), derived_db)
    assert incremental.fingerprints == cold.fingerprints
    assert through_cache.fingerprints == cold.fingerprints


# The ``round-planner`` group is the PR-3 tentpole comparison: one round's
# candidate-modification search — a bounded prefix of Algorithm 3's (STC, DTC)
# candidate space, each pair concretely materialized as a TupleDelta against
# the shared base state and scored by its exact candidate-query partition —
# run serially versus sharded over a 4-worker process pool seeded once with a
# pickled BaseSnapshot. The ≥2x speedup target refers to
# serial/process_pool at full workload scale *on a ≥4-core machine*: the
# sweep is embarrassingly parallel and the measured single-core overhead of
# the 4-worker pool is only ~4%, so the ratio reported in
# BENCH_components.json tracks the available cores. Both paths produce
# bit-identical outcomes (asserted by the fast guard below, which also pins
# the delta-only worker protocol to zero full joins).
_PLANNER_WORKERS = 4
_PLANNER_SWEEP_PAIRS = 192


@pytest.fixture(scope="module")
def round_planner_setup(scientific_setup):
    from repro.core.round_planner import candidate_pair_attempts

    database, result, _, candidates, _, _ = scientific_setup
    planner = RoundPlanner(QFEConfig(delta_seconds=0.25))
    plan = planner.prepare_round(database, result, candidates)
    sweep = candidate_pair_attempts(plan.space, max_pairs=_PLANNER_SWEEP_PAIRS)
    return planner, plan, sweep


@pytest.fixture(scope="module")
def process_backend():
    backend = ProcessPoolBackend(_PLANNER_WORKERS)
    yield backend
    backend.close()


@pytest.mark.benchmark(group="round-planner")
def test_bench_round_planner_serial(benchmark, round_planner_setup):
    planner, plan, sweep = round_planner_setup

    def run():
        return planner.execute(plan, attempts=sweep, stop_at_first=False)

    outcomes = benchmark(run)
    assert len(outcomes) == len(sweep)
    assert any(o.applied for o in outcomes)


@pytest.mark.benchmark(group="round-planner")
def test_bench_round_planner_process_pool(benchmark, round_planner_setup, process_backend):
    planner, plan, sweep = round_planner_setup
    # Warm outside the measurement: pool spin-up + snapshot broadcast happen
    # once per session, not once per round.
    planner.execute(plan, attempts=sweep[:_PLANNER_WORKERS], stop_at_first=False,
                    backend=process_backend)

    def run():
        return planner.execute(plan, attempts=sweep, stop_at_first=False,
                               backend=process_backend)

    outcomes = benchmark(run)
    assert len(outcomes) == len(sweep)
    assert any(o.applied for o in outcomes)


def test_round_planner_parallel_matches_serial_with_zero_worker_joins(
    round_planner_setup, process_backend
):
    """Fast regression guard (not a benchmark): the process-pool backend must
    return bit-identical outcomes to the serial oracle — for the fallback
    attempts and for a candidate-space sweep slice — and its workers must
    perform zero full join materializations (the delta-only worker protocol).
    """
    planner, plan, sweep = round_planner_setup

    def key(outcomes):
        return [
            (o.attempt_index, o.pairs, o.applied, o.distinguishes, o.signature,
             o.group_sizes, o.modification_count, o.db_cost)
            for o in outcomes
        ]

    for attempts in (plan.attempts, sweep[:32]):
        serial = planner.execute(plan, attempts=attempts, stop_at_first=False)
        parallel = planner.execute(plan, attempts=attempts, stop_at_first=False,
                                   backend=process_backend)
        assert key(parallel) == key(serial)
        assert all(o.full_joins == 0 for o in parallel), "a worker fell back to a full join"
        assert all(o.full_joins == 0 for o in serial)


@pytest.fixture(scope="module")
def sql_backend():
    backend = SqlPushdownBackend()
    yield backend
    backend.close()


@pytest.mark.benchmark(group="round-planner")
def test_bench_round_planner_sql_pushdown(benchmark, round_planner_setup, sql_backend):
    planner, plan, sweep = round_planner_setup
    # Warm outside the measurement: the base load into the mirror and the
    # round compilation happen once per session/round, not once per attempt.
    planner.execute(plan, attempts=sweep[:4], stop_at_first=False, backend=sql_backend)

    def run():
        return planner.execute(plan, attempts=sweep, stop_at_first=False,
                               backend=sql_backend)

    outcomes = benchmark(run)
    assert len(outcomes) == len(sweep)
    assert any(o.applied for o in outcomes)


def test_sql_pushdown_matches_serial_with_one_base_load(round_planner_setup):
    """Fast regression guard (not a benchmark): the SQL-pushdown backend must
    return bit-identical outcomes to the serial oracle, never materialize a
    Python-side full join, load the base into its mirror at most once across
    consecutive rounds of one session, and never silently fall back to the
    in-process path on a clean round.
    """
    planner, plan, sweep = round_planner_setup

    def key(outcomes):
        return [
            (o.attempt_index, o.pairs, o.applied, o.distinguishes, o.signature,
             o.group_sizes, o.modification_count, o.db_cost)
            for o in outcomes
        ]

    PUSHDOWN_STATS.reset()
    with SqlPushdownBackend() as backend:
        for attempts in (plan.attempts, sweep[:32]):
            serial = planner.execute(plan, attempts=attempts, stop_at_first=False)
            pushed = planner.execute(plan, attempts=attempts, stop_at_first=False,
                                     backend=backend)
            assert key(pushed) == key(serial)
            assert all(o.full_joins == 0 for o in pushed), (
                "the pushdown path materialized a Python-side full join"
            )
        base_loads, attempt_batches, python_fallbacks = PUSHDOWN_STATS.snapshot()
        assert base_loads == 1, "the mirror reloaded the base between attempts"
        assert attempt_batches == len(plan.attempts) + 32
        assert python_fallbacks == 0, "a clean round fell back to the Python path"


# The ``service-round`` group is the session-service tentpole comparison:
# full interactive sessions driven through the SessionManager — propose,
# choose (simulated worst-case user), submit — with 1 versus 8 concurrent
# users multiplexed over ONE shared process pool and one shared base
# snapshot. The 8-user total divided by 8 approaches the 1-user total as
# cores allow: per-round compute is serialized over the shared pool (each
# round still fans out across its workers) while all cross-user concurrency
# rides in the think-time the simulated users here don't have — so the
# 1-CPU container reports ~8x for the 8-user run and multi-core CI shows the
# amortization. BENCH_components.json records both medians with the 1-user
# run as the reference.
_SERVICE_USERS = 8
_SERVICE_WORKERS = 2


@pytest.fixture(scope="module")
def service_round_setup(scientific_setup):
    from repro.service.manager import SessionManager

    database, result, _, candidates, _, _ = scientific_setup
    backend = ProcessPoolBackend(_SERVICE_WORKERS)
    # ONE manager (and thus one shared snapshot cache + per-pair join cache)
    # across every measured run: pool spin-up and the base-snapshot broadcast
    # happen once per service lifetime, never inside the timed region. A
    # fresh manager per run would capture a new snapshot identity and force
    # a pool re-seed inside the measurement. Finished sessions are kept (not
    # deleted) so the shared pair — and with it the warm snapshot — always
    # stays referenced.
    manager = SessionManager(backend=backend, max_live_sessions=1024)
    inputs = (database, result, tuple(candidates))
    _drive_service_users(manager, inputs, 1)  # warm: pool + snapshot broadcast
    yield manager, inputs
    manager.close()
    backend.close()


def _drive_service_users(manager, inputs, users: int) -> int:
    """Run *users* concurrent worst-case sessions; returns rounds served."""
    import threading

    from repro.core.feedback import WorstCaseSelector

    database, result, candidates = inputs
    rounds_before = manager.metrics()["rounds_served"]
    ids = [
        manager.create_session(
            database=database,
            result=result,
            candidates=list(candidates),
            config=QFEConfig(delta_seconds=0.25),
        ).session_id
        for _ in range(users)
    ]
    errors: list[BaseException] = []

    def drive(session_id: str) -> None:
        try:
            selector = WorstCaseSelector()
            while True:
                _, pending = manager.get_round(session_id)
                if pending is None:
                    return
                manager.submit_choice(
                    session_id, selector.select(pending.round, pending.partition)
                )
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=drive, args=(sid,)) for sid in ids]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, f"service session failed: {errors[:1]}"
    rounds = manager.metrics()["rounds_served"] - rounds_before
    assert rounds >= users  # every session went through at least one round
    return rounds


@pytest.mark.benchmark(group="service-round")
def test_bench_service_round_1_user(benchmark, service_round_setup):
    manager, inputs = service_round_setup
    rounds = benchmark.pedantic(
        _drive_service_users, args=(manager, inputs, 1), rounds=1, iterations=1
    )
    benchmark.extra_info["rounds"] = rounds
    benchmark.extra_info["users"] = 1


@pytest.mark.benchmark(group="service-round")
def test_bench_service_round_8_users(benchmark, service_round_setup):
    manager, inputs = service_round_setup
    rounds = benchmark.pedantic(
        _drive_service_users, args=(manager, inputs, _SERVICE_USERS), rounds=1, iterations=1
    )
    benchmark.extra_info["rounds"] = rounds
    benchmark.extra_info["users"] = _SERVICE_USERS


@pytest.mark.benchmark(group="components")
def test_bench_query_generation(benchmark, scientific_setup):
    database, result = scientific_setup[0], scientific_setup[1]
    generator = QueryGenerator(_QBO)
    candidates = benchmark(generator.generate, database, result)
    assert candidates


@pytest.mark.benchmark(group="components")
def test_bench_min_edit_on_modified_relation(benchmark, scientific_setup):
    database = scientific_setup[0]
    relation = database.relation(database.table_names[0])
    modified = relation.copy()
    first = modified.tuples[0]
    modified.update_value(first.tuple_id, modified.schema.attribute_names[-1], "changed")
    cost = benchmark(min_edit_relation, relation, modified)
    assert cost == 1


@pytest.mark.benchmark(group="components")
def test_bench_skyline_enumeration(benchmark, scientific_setup):
    _, result, _, _, _, space = scientific_setup
    config = QFEConfig(delta_seconds=0.25)

    def run():
        return skyline_stc_dtc_pairs(space, config, result_arity=result.schema.arity)

    skyline = benchmark(run)
    assert skyline.pair_count >= 1


@pytest.mark.benchmark(group="components")
def test_bench_subset_selection(benchmark, scientific_setup):
    _, result, _, _, _, space = scientific_setup
    config = QFEConfig(delta_seconds=0.25)
    simulator = PairSetSimulator(space, result_arity=result.schema.arity)
    skyline = skyline_stc_dtc_pairs(
        space, config, result_arity=result.schema.arity, simulator=simulator
    )

    def run():
        return pick_stc_dtc_subset(
            space, skyline.pairs, config,
            result_arity=result.schema.arity,
            most_balanced_binary_x=skyline.most_balanced_binary_x,
            simulator=simulator,
        )

    selection = benchmark(run)
    assert selection.found


@pytest.mark.benchmark(group="components")
def test_bench_end_to_end_evaluation(benchmark, scientific_setup):
    database, result, target = scientific_setup[0], scientific_setup[1], scientific_setup[2]
    evaluated = benchmark(evaluate, target, database)
    assert evaluated.bag_equal(result)
