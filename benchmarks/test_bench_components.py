"""Micro-benchmarks of the core components (repeatable, statistics-friendly).

These complement the one-shot table regenerations: they measure the steady
per-call cost of the pieces that dominate QFE's runtime — the foreign-key
join, candidate evaluation over a joined relation, ``minEdit``, Algorithm 3's
pair enumeration and Algorithm 4's subset selection — so regressions in the
substrate show up even without rerunning the full experiments.
"""

from __future__ import annotations

import pytest

from repro.core.config import QFEConfig
from repro.core.modification import PairSetSimulator
from repro.core.skyline import skyline_stc_dtc_pairs
from repro.core.subset_selection import pick_stc_dtc_subset
from repro.core.tuple_class import TupleClassSpace
from repro.experiments.runner import prepare_candidates
from repro.qbo.config import QBOConfig
from repro.qbo.generator import QueryGenerator
from repro.relational.columnar import ColumnarView
from repro.relational.edit import min_edit_relation
from repro.relational.evaluator import (
    evaluate,
    evaluate_batch,
    evaluate_on_join,
    evaluate_on_join_reference,
    result_fingerprint,
)
from repro.relational.join import full_join
from repro.workloads import build_pair

_QBO = QBOConfig(threshold_variants=2, max_terms_per_conjunct=3, max_candidates=25)


@pytest.fixture(scope="module")
def scientific_setup(bench_scale):
    database, result, target = build_pair("Q2", min(bench_scale, 0.12))
    candidates, _ = prepare_candidates(database, result, target, qbo_config=_QBO)
    joined = full_join(database)
    space = TupleClassSpace(joined, candidates)
    return database, result, target, candidates, joined, space


@pytest.mark.benchmark(group="components")
def test_bench_full_join(benchmark, scientific_setup):
    database = scientific_setup[0]
    joined = benchmark(full_join, database)
    assert len(joined) > 0


@pytest.mark.benchmark(group="components")
def test_bench_candidate_evaluation_on_join(benchmark, scientific_setup):
    database, result, _, candidates, joined, _ = scientific_setup
    query = candidates[0]
    evaluated = benchmark(evaluate_on_join, query, joined, database)
    assert evaluated.bag_equal(result)


# The pair below is the tentpole comparison: one full partitioning pass over
# all surviving candidates (results + fingerprints), row-at-a-time versus the
# columnar batch engine. ``batch_cold`` rebuilds the columnar view and every
# term mask per round — the cost paid once per freshly generated modified
# database — and is the number the ≥3× speedup target refers to.
@pytest.mark.benchmark(group="candidate-batch")
def test_bench_all_candidates_rowwise_reference(benchmark, scientific_setup):
    database, _, _, candidates, joined, _ = scientific_setup

    def run():
        return [
            result_fingerprint(evaluate_on_join_reference(q, joined, database))
            for q in candidates
        ]

    fingerprints = benchmark(run)
    assert len(fingerprints) == len(candidates)


@pytest.mark.benchmark(group="candidate-batch")
def test_bench_all_candidates_batch_cold(benchmark, scientific_setup):
    database, _, _, candidates, joined, _ = scientific_setup

    def run():
        view = ColumnarView(joined.relation)  # fresh view: no cached masks
        return evaluate_batch(candidates, joined, database, columnar=view)

    batch = benchmark(run)
    assert len(batch) == len(candidates)


@pytest.mark.benchmark(group="candidate-batch")
def test_bench_all_candidates_batch_warm(benchmark, scientific_setup):
    database, _, _, candidates, joined, _ = scientific_setup
    joined.columnar()  # ensure the shared view exists

    def run():
        return evaluate_batch(candidates, joined, database)

    batch = benchmark(run)
    assert len(batch) == len(candidates)


@pytest.mark.benchmark(group="components")
def test_bench_query_generation(benchmark, scientific_setup):
    database, result = scientific_setup[0], scientific_setup[1]
    generator = QueryGenerator(_QBO)
    candidates = benchmark(generator.generate, database, result)
    assert candidates


@pytest.mark.benchmark(group="components")
def test_bench_min_edit_on_modified_relation(benchmark, scientific_setup):
    database = scientific_setup[0]
    relation = database.relation(database.table_names[0])
    modified = relation.copy()
    first = modified.tuples[0]
    modified.update_value(first.tuple_id, modified.schema.attribute_names[-1], "changed")
    cost = benchmark(min_edit_relation, relation, modified)
    assert cost == 1


@pytest.mark.benchmark(group="components")
def test_bench_skyline_enumeration(benchmark, scientific_setup):
    _, result, _, _, _, space = scientific_setup
    config = QFEConfig(delta_seconds=0.25)

    def run():
        return skyline_stc_dtc_pairs(space, config, result_arity=result.schema.arity)

    skyline = benchmark(run)
    assert skyline.pair_count >= 1


@pytest.mark.benchmark(group="components")
def test_bench_subset_selection(benchmark, scientific_setup):
    _, result, _, _, _, space = scientific_setup
    config = QFEConfig(delta_seconds=0.25)
    simulator = PairSetSimulator(space, result_arity=result.schema.arity)
    skyline = skyline_stc_dtc_pairs(
        space, config, result_arity=result.schema.arity, simulator=simulator
    )

    def run():
        return pick_stc_dtc_subset(
            space, skyline.pairs, config,
            result_arity=result.schema.arity,
            most_balanced_binary_x=skyline.most_balanced_binary_x,
            simulator=simulator,
        )

    selection = benchmark(run)
    assert selection.found


@pytest.mark.benchmark(group="components")
def test_bench_end_to_end_evaluation(benchmark, scientific_setup):
    database, result, target = scientific_setup[0], scientific_setup[1], scientific_setup[2]
    evaluated = benchmark(evaluate, target, database)
    assert evaluated.bag_equal(result)
