#!/usr/bin/env python3
"""Validate every span line of a ``--trace-out`` JSON-lines trace.

Usage::

    python scripts/check_trace.py trace.jsonl

Checks, per line: valid JSON object; required fields present with the right
types (``name``, ``span_id``, ``parent_id``, ``pid``, ``thread``,
``t_wall``, ``t_start``, ``duration_s``, ``attrs``); non-negative duration;
span ids unique; every non-null ``parent_id`` referring to a span id that
appears in the file. CI runs this against a traced Q2 session so a format
regression fails fast instead of silently producing unparseable artifacts.

Exit code 0 when the trace is valid, 1 otherwise (problems on stderr).
Hand-rolled against the schema below because the toolchain deliberately has
no third-party deps (no ``jsonschema``).
"""

from __future__ import annotations

import json
import sys

#: field name -> accepted types (None in the tuple = null is allowed).
SPAN_SCHEMA: dict[str, tuple] = {
    "name": (str,),
    "span_id": (int,),
    "parent_id": (int, None),
    "pid": (int,),
    "thread": (str,),
    "t_wall": (int, float),
    "t_start": (int, float),
    "duration_s": (int, float),
    "attrs": (dict,),
}


def check_line(line_no: int, line: str, problems: list[str]) -> dict | None:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        problems.append(f"line {line_no}: not valid JSON: {exc}")
        return None
    if not isinstance(record, dict):
        problems.append(f"line {line_no}: span must be a JSON object")
        return None
    for field, accepted in SPAN_SCHEMA.items():
        if field not in record:
            problems.append(f"line {line_no}: missing field {field!r}")
            continue
        value = record[field]
        if value is None:
            if None not in accepted:
                problems.append(f"line {line_no}: field {field!r} must not be null")
            continue
        types = tuple(t for t in accepted if t is not None)
        # bool is an int subclass; a boolean span_id/pid would be a bug.
        if not isinstance(value, types) or isinstance(value, bool):
            problems.append(
                f"line {line_no}: field {field!r} has type "
                f"{type(value).__name__}, expected {'/'.join(t.__name__ for t in types)}"
            )
    unknown = set(record) - set(SPAN_SCHEMA)
    if unknown:
        problems.append(f"line {line_no}: unknown fields {sorted(unknown)}")
    if isinstance(record.get("duration_s"), (int, float)) and record["duration_s"] < 0:
        problems.append(f"line {line_no}: negative duration_s {record['duration_s']}")
    return record


def check_trace(path: str) -> list[str]:
    problems: list[str] = []
    spans: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            if not line.strip():
                problems.append(f"line {line_no}: blank line in JSON-lines trace")
                continue
            record = check_line(line_no, line, problems)
            if record is not None:
                spans.append(record)
    if not spans:
        problems.append("trace contains no spans")
        return problems
    seen_ids: set[int] = set()
    for record in spans:
        span_id = record.get("span_id")
        if isinstance(span_id, int) and not isinstance(span_id, bool):
            if span_id in seen_ids:
                problems.append(f"duplicate span_id {span_id}")
            seen_ids.add(span_id)
    for record in spans:
        parent_id = record.get("parent_id")
        if parent_id is not None and parent_id not in seen_ids:
            problems.append(
                f"span {record.get('span_id')} has dangling parent_id {parent_id}"
            )
    return problems


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print("usage: check_trace.py TRACE.jsonl", file=sys.stderr)
        return 2
    try:
        problems = check_trace(argv[1])
    except OSError as exc:
        print(f"cannot read {argv[1]}: {exc}", file=sys.stderr)
        return 2
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"{argv[1]}: INVALID ({len(problems)} problem(s))", file=sys.stderr)
        return 1
    print(f"{argv[1]}: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
