#!/usr/bin/env python
"""Service smoke test: checkpoint → kill -9 → resume → finish, bit-identical.

Boots ``qfe-serve`` as a real subprocess with an on-disk checkpoint store,
drives a full Q2 session through the HTTP client, hard-kills the server
(SIGKILL — no graceful shutdown, the on-disk checkpoints are all that
survives) after the first submitted choice, reboots it on the same store,
finishes the session, and asserts the resumed session's canonical transcript
is **byte-identical** to an uninterrupted in-process ``SerialBackend`` run of
the same session spec.

Run from the repository root (CI does)::

    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import QFEConfig, QFESession, WorstCaseSelector  # noqa: E402
from repro.service.checkpoint import session_transcript, transcript_json  # noqa: E402
from repro.service.client import ServiceClient, ServiceClientError  # noqa: E402
from repro.service.manager import workload_session_inputs  # noqa: E402

WORKLOAD = "Q2"
SCALE = 0.03
CANDIDATES = 8
# A generous Algorithm 3 budget so skyline enumeration never truncates on
# wall-clock time — the one legitimately nondeterministic input.
DELTA_SECONDS = 30.0
PORT = int(os.environ.get("QFE_SMOKE_PORT", "8655"))


def reference_transcript() -> str:
    """The uninterrupted SerialBackend run of the same session spec."""
    database, result, _, candidates = workload_session_inputs(
        WORKLOAD, SCALE, candidate_count=CANDIDATES
    )
    session = QFESession(
        database, result, candidates=candidates,
        config=QFEConfig(delta_seconds=DELTA_SECONDS),
    )
    session.run(WorstCaseSelector())
    return transcript_json(session_transcript(session, workload=WORKLOAD))


def boot_server(store_dir: str) -> subprocess.Popen:
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service",
            "--port", str(PORT), "--store-dir", store_dir,
        ],
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        cwd=REPO_ROOT,
    )
    client = ServiceClient(f"http://127.0.0.1:{PORT}", timeout=120.0)
    deadline = time.monotonic() + 30.0
    while True:
        try:
            client.healthz()
            return process
        except ServiceClientError:
            if process.poll() is not None:
                output = process.stdout.read().decode("utf-8", "replace")
                raise RuntimeError(f"qfe-serve exited at startup:\n{output}")
            if time.monotonic() > deadline:
                process.kill()
                raise RuntimeError("qfe-serve did not come up within 30s")
            time.sleep(0.1)


def drive_round(client: ServiceClient, session_id: str) -> bool:
    """One round: fetch, choose worst-case, submit. False when finished."""
    payload = client.get_round(session_id)
    if payload["round"] is None:
        return False
    client.submit_choice(session_id, ServiceClient.worst_case_choice(payload))
    return True


def main() -> int:
    print(f"[smoke] reference: uninterrupted in-process {WORKLOAD} run ...", flush=True)
    reference = reference_transcript()

    with tempfile.TemporaryDirectory(prefix="qfe-smoke-") as store_dir:
        print(f"[smoke] booting qfe-serve (store={store_dir}) ...", flush=True)
        server = boot_server(store_dir)
        client = ServiceClient(f"http://127.0.0.1:{PORT}", timeout=120.0)
        try:
            created = client.create_session(
                WORKLOAD,
                scale=SCALE,
                candidate_count=CANDIDATES,
                config={"delta_seconds": DELTA_SECONDS},
            )
            session_id = created["session_id"]
            print(f"[smoke] session {session_id}: first round over HTTP ...", flush=True)
            assert drive_round(client, session_id), "session finished before any round"

            print("[smoke] SIGKILL the server mid-session ...", flush=True)
            server.send_signal(signal.SIGKILL)
            server.wait(timeout=30)

            print("[smoke] rebooting on the same checkpoint store ...", flush=True)
            server = boot_server(store_dir)
            rounds = 1
            while drive_round(client, session_id):
                rounds += 1
            print(f"[smoke] resumed session finished after {rounds} rounds", flush=True)

            resumed = transcript_json(client.transcript(session_id))
            if resumed != reference:
                print("[smoke] FAIL: resumed transcript differs from the reference")
                print(f"  reference: {reference[:400]} ...")
                print(f"  resumed:   {resumed[:400]} ...")
                return 1
            metrics = client.metrics()
            print(
                f"[smoke] OK: transcript bit-identical "
                f"({len(resumed)} bytes, {metrics['rounds_served']} rounds served "
                "by the resumed server)",
                flush=True,
            )
            return 0
        finally:
            if server.poll() is None:
                server.terminate()
                try:
                    server.wait(timeout=30)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    server.kill()


if __name__ == "__main__":
    sys.exit(main())
