#!/usr/bin/env bash
# Repo verification: tier-1 suite plus the row-vs-columnar differential oracle.
#
#   scripts/check.sh          fast tier-1 (slow-marked tests excluded)
#   scripts/check.sh --slow   also run the slow tier (examples, tables, studies)
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== differential oracle: columnar engine vs row-at-a-time reference =="
python -m pytest -q tests/relational/test_columnar.py tests/sql/test_sqlite_backend.py

if [[ "${1:-}" == "--slow" ]]; then
    echo
    echo "== slow tier: examples, tables, studies =="
    python -m pytest -q -m slow
fi

echo
echo "All checks passed."
