#!/usr/bin/env bash
# Repo verification: tier-1 suite plus the two-oracle differential checks.
#
#   scripts/check.sh          fast tier-1 (slow-marked tests excluded)
#   scripts/check.sh --slow   also run the slow tier (examples, tables, studies)
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== differential oracles: columnar + delta maintenance vs row-at-a-time reference and SQLite =="
python -m pytest -q tests/relational/test_columnar.py tests/relational/test_delta_maintenance.py tests/sql/test_sqlite_backend.py

echo
echo "== regression guards: delta-derive path, parallel workers and SQL pushdown perform no full join rebuild =="
python -m pytest -q benchmarks/test_bench_components.py -k "delta_derive_path or zero_worker or sql_pushdown_matches" --benchmark-disable

echo
echo "== differential: process-pool round planner is bit-identical to the serial oracle (Q1-Q6) =="
python -m pytest -q tests/integration/test_parallel_differential.py -m ""

echo
echo "== differential: SQL-pushdown backend is bit-identical to the serial oracle (fast guard) =="
python -m pytest -q tests/integration/test_sql_pushdown_differential.py tests/relational/test_null_semantics.py

echo
echo "== differential: checkpoint/resume at every round is bit-identical to uninterrupted runs (Q1-Q6) =="
python -m pytest -q tests/integration/test_service_differential.py -m ""

echo
echo "== differential: scenario engine — generated scenario, serial vs 2-worker pool, transcript bit-identity =="
python -m pytest -q tests/integration/test_scenario_differential.py -k "fast_guard or checkpoint_resumes"

echo
echo "== differential: warm persistent worker pool is bit-identical to the serial oracle (fast guard + fault recovery) =="
python -m pytest -q tests/integration/test_warm_pool_differential.py

echo
echo "== service smoke: HTTP session, checkpoint -> kill -9 -> resume -> finish, bit-identical transcript =="
python scripts/service_smoke.py

if [[ "${1:-}" == "--slow" ]]; then
    echo
    echo "== slow tier: examples, tables, studies =="
    python -m pytest -q -m slow
fi

echo
echo "All checks passed."
