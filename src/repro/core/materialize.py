"""Materialize class-pair modifications into a concrete modified database ``D'``.

A class pair ``(s, d)`` is abstract: "move some tuple from class ``s`` to
class ``d``". Materialization picks a concrete joined row in ``s``, maps each
changed selection attribute back to the owning base relation through the join
provenance, chooses a concrete destination value from the destination domain
subset, and applies the change to a copy of the original database.

Concrete choices follow the paper's preferences:

* modifications with **no side effects** are preferred — the chosen base
  tuple should contribute to exactly one joined row (Section 5.4.1);
* realistic values are preferred — destination subsets expose active-domain
  representative values before synthesized ones (the Olston-inspired
  philosophy of Section 1);
* primary-key / foreign-key columns are protected and the materialized
  database is validated against the declared constraints (Section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.config import QFEConfig
from repro.core.modification import ClassPair
from repro.core.tuple_class import TupleClassSpace
from repro.exceptions import TypeMismatchError
from repro.relational.constraints import modification_is_valid
from repro.relational.database import Database
from repro.relational.delta import TupleDelta
from repro.relational.types import AttributeType, values_equal

__all__ = ["AppliedModification", "MaterializationResult", "materialize_pairs"]


@dataclass(frozen=True)
class AppliedModification:
    """One concrete base-table cell change applied to the modified database."""

    table: str
    tuple_id: int
    column: str
    old_value: Any
    new_value: Any
    joined_positions: tuple[int, ...]

    @property
    def has_side_effects(self) -> bool:
        """Whether the change affects more than one joined row (Section 5.4.1)."""
        return len(self.joined_positions) > 1

    def describe(self) -> str:
        """A one-line description of the change."""
        return (
            f"{self.table}[id={self.tuple_id}].{self.column}: "
            f"{self.old_value!r} -> {self.new_value!r}"
        )


@dataclass
class MaterializationResult:
    """The modified database plus a record of every applied / skipped change.

    ``delta`` is the structured :class:`~repro.relational.delta.TupleDelta`
    recorded while ``D'`` was constructed — always update-only, because class
    pairs only ever perform E1 attribute modifications. The Database
    Generator hands it to :meth:`~repro.relational.evaluator.JoinCache.derive`
    so candidate evaluation on ``D'`` patches the original database's cached
    join instead of rebuilding it.
    """

    database: Database
    applied: list[AppliedModification] = field(default_factory=list)
    skipped_pairs: list[ClassPair] = field(default_factory=list)
    delta: TupleDelta = field(default_factory=TupleDelta)

    @property
    def modification_count(self) -> int:
        """Number of modified cells (attribute values)."""
        return len(self.applied)

    @property
    def modified_tuple_count(self) -> int:
        """Number of distinct modified base tuples (the ``µ`` of Section 3)."""
        return len({(m.table, m.tuple_id) for m in self.applied})

    @property
    def modified_relation_count(self) -> int:
        """Number of distinct modified relations (the ``n`` of Equation 3)."""
        return len({m.table for m in self.applied})

    @property
    def side_effect_count(self) -> int:
        """How many applied changes touched more than one joined row."""
        return sum(1 for m in self.applied if m.has_side_effects)


def _protected_columns(database: Database, table: str) -> set[str]:
    schema = database.schema
    protected = set(schema.table(table).primary_key)
    for fk in schema.foreign_keys:
        if fk.child_table == table:
            protected.update(fk.child_columns)
        if fk.parent_table == table:
            protected.update(fk.parent_columns)
    return protected


def _candidate_rows_for_pair(
    space: TupleClassSpace,
    pair: ClassPair,
    used_base_tuples: set[tuple[str, int]],
    prefer_no_side_effects: bool,
) -> list[int]:
    """Joined-row positions that could realize the pair, best candidates first."""
    joined = space.joined
    changed = space.changed_attributes(pair.source, pair.destination)
    candidates: list[tuple[tuple, int]] = []
    for position in space.rows_in_class(pair.source):
        fanouts = []
        conflict = False
        for attribute in changed:
            table = attribute.partition(".")[0]
            tuple_id = joined.base_tuple_of(position, table)
            if (table, tuple_id) in used_base_tuples:
                conflict = True
                break
            fanouts.append(joined.fanout_of(table, tuple_id))
        if conflict:
            continue
        max_fanout = max(fanouts) if fanouts else 1
        sort_key = (max_fanout, position) if prefer_no_side_effects else (0, position)
        candidates.append((sort_key, position))
    candidates.sort()
    return [position for _, position in candidates]


def _destination_values(
    space: TupleClassSpace,
    pair: ClassPair,
    current_value: Any,
    slot: int,
    column_type: AttributeType | None = None,
) -> list[Any]:
    """Candidate new values for one changed slot, preferred values first.

    Synthesized representatives of numeric domain blocks can be fractional;
    when the base column is integer-typed such a value is converted to the
    nearest integers that still fall in the destination block, so the
    modification remains type-correct.
    """
    attribute = space.selection_attributes[slot]
    partition = space.partitions[attribute]
    destination_index = pair.destination.subset_indexes[slot]
    subset = partition.subset(destination_index)
    values: list[Any] = []
    for value in subset.representatives:
        if values_equal(value, current_value):
            continue
        if (
            column_type is AttributeType.INTEGER
            and isinstance(value, float)
            and not float(value).is_integer()
        ):
            for rounded in (int(value), int(value) + 1):
                if (
                    partition.subset_of_value(rounded) == destination_index
                    and not values_equal(rounded, current_value)
                    and rounded not in values
                ):
                    values.append(rounded)
            continue
        values.append(value)
    return values


def materialize_pairs(
    space: TupleClassSpace,
    pairs: Sequence[ClassPair],
    original: Database,
    config: QFEConfig,
) -> MaterializationResult:
    """Apply a set of class pairs to a copy of *original*, returning ``D'``.

    Pairs that cannot be realized (protected key columns, no available source
    row, constraint violations for every candidate value) are recorded in
    ``skipped_pairs`` rather than failing the whole materialization.
    """
    modified = original.copy()
    result = MaterializationResult(database=modified)
    used_base_tuples: set[tuple[str, int]] = set()
    joined = space.joined

    for pair in pairs:
        changed_slots = pair.changed_slots()
        changed_attributes = space.changed_attributes(pair.source, pair.destination)
        # Protected key columns make the pair unrealizable under the default config.
        if config.protect_key_columns:
            blocked = False
            for attribute in changed_attributes:
                table, _, column = attribute.partition(".")
                if column in _protected_columns(original, table):
                    blocked = True
                    break
            if blocked:
                result.skipped_pairs.append(pair)
                continue

        applied_for_pair = _try_materialize_single_pair(
            space, pair, changed_slots, modified, used_base_tuples, config, joined
        )
        if applied_for_pair is None:
            result.skipped_pairs.append(pair)
            continue
        for modification in applied_for_pair:
            result.applied.append(modification)
            used_base_tuples.add((modification.table, modification.tuple_id))

    # Record the structured tuple delta of everything that stuck (rolled-back
    # attempts never reach ``result.applied``): one update per distinct
    # modified base tuple, carrying its final value row in ``D'``.
    for table, tuple_id in dict.fromkeys((m.table, m.tuple_id) for m in result.applied):
        result.delta.record_update(
            table, tuple_id, modified.relation(table).tuple_by_id(tuple_id).values
        )
    return result


def _try_materialize_single_pair(
    space: TupleClassSpace,
    pair: ClassPair,
    changed_slots: tuple[int, ...],
    modified: Database,
    used_base_tuples: set[tuple[str, int]],
    config: QFEConfig,
    joined,
) -> list[AppliedModification] | None:
    """Try candidate rows/values for one pair; mutate *modified* on success."""
    candidate_rows = _candidate_rows_for_pair(
        space, pair, used_base_tuples, config.prefer_no_side_effects
    )
    for position in candidate_rows:
        planned: list[AppliedModification] = []
        feasible = True
        for slot in changed_slots:
            attribute = space.selection_attributes[slot]
            table, _, column = attribute.partition(".")
            tuple_id = joined.base_tuple_of(position, table)
            relation = modified.relation(table)
            current_value = relation.value_of(relation.tuple_by_id(tuple_id), column)
            column_type = relation.schema.attribute(column).type
            values = _destination_values(space, pair, current_value, slot, column_type)
            if not values:
                feasible = False
                break
            planned.append(
                AppliedModification(
                    table=table,
                    tuple_id=tuple_id,
                    column=column,
                    old_value=current_value,
                    new_value=values[0],
                    joined_positions=joined.joined_positions_of(table, tuple_id),
                )
            )
        if not feasible:
            continue

        # Apply, validate, and roll back on constraint violation.
        applied_so_far: list[AppliedModification] = []
        type_error = False
        for modification in planned:
            try:
                modified.relation(modification.table).update_value(
                    modification.tuple_id, modification.column, modification.new_value
                )
            except TypeMismatchError:
                type_error = True
                break
            applied_so_far.append(modification)
        if type_error:
            for modification in applied_so_far:
                modified.relation(modification.table).update_value(
                    modification.tuple_id, modification.column, modification.old_value
                )
            continue
        if config.validate_constraints and not modification_is_valid(modified):
            for modification in planned:
                modified.relation(modification.table).update_value(
                    modification.tuple_id, modification.column, modification.old_value
                )
            continue
        return planned
    return None
