"""Execution backends for the round planner's candidate-modification search.

Every QFE round scores a deterministic sequence of *attempts* — candidate
class-pair sets, the Algorithm 4 subset first, then the skyline singles in
balance order — by concretely materializing each attempt against the base
database and computing the exact candidate-query partition it induces. The
attempts are independent, which makes the search embarrassingly parallel;
this module provides the two interchangeable substrates the
:class:`~repro.core.round_planner.RoundPlanner` runs it on:

* :class:`SerialBackend` evaluates attempts in order, in process, against the
  driver's own join cache. It is the differential oracle: the process-pool
  backend must produce bit-identical outcomes.
* :class:`ProcessPoolBackend` broadcasts a pickled
  :class:`~repro.relational.evaluator.BaseSnapshot` of the base database and
  its joins to each worker exactly once, shards the attempts into contiguous
  :class:`WorkUnit`\\ s, and merges worker outcomes back in attempt order.
  Workers evaluate purely by applying
  :class:`~repro.relational.delta.TupleDelta`\\ s to the snapshotted joins —
  zero full joins worker-side, pinned via
  :data:`~repro.relational.join.JOIN_STATS` and reported per outcome.

Determinism contract: attempt evaluation is a pure function of
``(base database, round context, attempt)`` — materialization, delta
application and fingerprinting contain no randomness — and outcomes are
merged by ascending attempt index, so the winning attempt is independent of
worker count, scheduling order and sharding. Any future stochastic scoring
must draw its seed from :func:`attempt_seed`, which depends only on the round
token and the absolute attempt index (not on the work-unit layout), keeping
the contract intact.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle
import threading
import weakref
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.core.config import BACKEND_CHOICES, QFEConfig, backend_name
from repro.obs.registry import REGISTRY, RegistryStats
from repro.obs.trace import get_tracer
from repro.core.materialize import materialize_pairs
from repro.core.modification import ClassPair
from repro.core.partitioner import partition_signature
from repro.core.tuple_class import TupleClassSpace
from repro.relational.database import Database
from repro.relational.evaluator import BaseSnapshot, JoinCache
from repro.relational.join import JOIN_STATS
from repro.relational.query import SPJQuery
from repro.sql.pushdown import (
    PUSHDOWN_STATS,
    PushdownExecutionError,
    PushdownUnsupportedError,
    RoundProgram,
    SqliteMirror,
    compile_round,
)

__all__ = [
    "BACKEND_STATS",
    "RoundContext",
    "RoundRequest",
    "WorkUnit",
    "AttemptOutcome",
    "RoundRuntime",
    "RoundSetup",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "SqlPushdownBackend",
    "BACKEND_CHOICES",
    "backend_name",
    "create_backend",
    "shard_attempts",
    "attempt_seed",
    "required_signatures",
    "build_round_runtime",
    "context_body_payload",
    "evaluate_attempt",
    "evaluate_work_unit",
]

Attempt = tuple[ClassPair, ...]


class BackendStats(RegistryStats):
    """Process-wide counters for backend state shipping and warm workers.

    Registry-backed (``qfe_backend_*``): increments made inside worker
    processes (installs, advances, warm plan hits, attempt timings) ride
    back to the driver with each reply's counter deltas and merge
    commutatively, so the totals are scheduling-independent. The context
    shipping counters (``context_*``) are shared between the classic
    :class:`ProcessPoolBackend` and the warm runtime's
    :class:`~repro.core.worker_runtime.WarmProcessPoolBackend` — both
    content-hash the round body and skip re-shipping bytes a resident
    worker already holds.
    """

    _PREFIX = "qfe_backend"
    _FIELDS = (
        "bytes_shipped",
        "shm_bytes_mapped",
        "snapshot_installs",
        "snapshot_advances",
        "warm_hits",
        "warm_misses",
        "context_pickles",
        "context_skips",
        "context_resends",
        "worker_resyncs",
        "pool_rebuilds",
        "rounds_planned",
        "units_dispatched",
        "attempts_evaluated",
        "attempt_micros",
    )
    _HELP = {
        "bytes_shipped": "Driver-side state bytes put on the wire (installs, deltas, round bodies).",
        "shm_bytes_mapped": "Bytes attached from shared-memory snapshot blocks (worker-side).",
        "snapshot_installs": "Full base installs performed by workers (fork-seeded installs included).",
        "snapshot_advances": "Delta advances applied by workers.",
        "warm_hits": "Worker plan-cache hits (prologue skipped entirely).",
        "warm_misses": "Worker plan-cache misses (prologue computed).",
        "context_pickles": "Round context bodies pickled by the driver.",
        "context_skips": "Rounds whose context body was already resident worker-side (no re-ship).",
        "context_resends": "Context bodies re-shipped after a worker body-cache miss.",
        "worker_resyncs": "need-sync replies answered with an authoritative install.",
        "pool_rebuilds": "Worker pools rebuilt after a crash (BrokenProcessPool).",
        "rounds_planned": "Rounds planned remotely by warm workers.",
        "units_dispatched": "Work units dispatched to warm workers.",
        "attempts_evaluated": "Attempts evaluated by warm workers.",
        "attempt_micros": "Microseconds warm workers spent evaluating attempts.",
    }


BACKEND_STATS = BackendStats()


# --------------------------------------------------------------------- payloads
@dataclass(frozen=True)
class RoundContext:
    """The picklable per-round description shipped to every backend.

    ``token`` identifies the round (workers key their rehydrated runtime on
    it); everything else is what a worker needs — besides the broadcast base
    snapshot — to rebuild the tuple-class space and score attempts.
    ``result_arity`` additionally lets a warm worker run the whole prologue
    (skyline + subset selection) remotely; classic backends ignore it.
    """

    token: str
    queries: tuple[SPJQuery, ...]
    config: QFEConfig
    referenced: tuple[str, ...]
    result_name: str
    result_arity: int = 0


@dataclass(frozen=True)
class WorkUnit:
    """A contiguous shard of the round's attempt sequence."""

    index: int
    start: int
    attempts: tuple[Attempt, ...]

    def __len__(self) -> int:
        return len(self.attempts)


@dataclass(frozen=True)
class AttemptOutcome:
    """The compact, picklable result of concretely scoring one attempt.

    Workers return these instead of materialized databases or result
    relations: the partition signature (canonical group id per query, see
    :func:`~repro.core.partitioner.partition_signature`) plus the
    modification counts are enough for the driver to rank attempts and
    re-materialize only the winner. ``full_joins`` reports how many full
    join materializations the evaluation performed — the delta-only worker
    protocol requires it to be zero.
    """

    attempt_index: int
    pairs: Attempt
    applied: bool
    distinguishes: bool
    signature: tuple[int, ...] | None
    group_sizes: tuple[int, ...]
    modification_count: int
    modified_tuple_count: int
    modified_relation_count: int
    side_effect_count: int
    skipped_pair_count: int
    db_cost: float
    full_joins: int


@dataclass
class RoundRuntime:
    """The state attempts are evaluated against (driver- or worker-side)."""

    database: Database
    space: TupleClassSpace
    join_cache: JoinCache


@dataclass
class RoundSetup:
    """Everything a backend needs to run one round's attempts.

    ``context`` is the picklable part; ``database``/``space``/``join_cache``
    are the driver-local live objects the serial backend evaluates against;
    ``snapshot_provider`` lazily captures (and memoizes, planner-side) the
    :class:`BaseSnapshot` the process-pool backend broadcasts.

    ``winner_store`` is an optional driver-local sink: an in-process backend
    that concretely scored the winning attempt may deposit the winner's
    :class:`MaterializationResult` (keys ``attempt_index`` and
    ``materialization``, with the derived cache entry left registered) so
    the planner's finalize step reuses it instead of re-materializing.
    Remote backends ignore it — their workers only ship compact outcomes.
    """

    context: RoundContext
    database: Database
    space: TupleClassSpace
    join_cache: JoinCache
    snapshot_provider: Callable[[], BaseSnapshot]
    winner_store: dict | None = None


@dataclass
class RoundRequest:
    """One whole round handed to a round-planning backend (``plans_rounds``).

    Unlike :class:`RoundSetup`, there is no pre-built tuple-class space and
    no attempt list: a round-planning backend runs the prologue (skyline +
    subset selection) itself, worker-side, from the context's queries and
    ``result_arity``. ``database`` and ``join_cache`` are the driver-local
    live base (for finalize-side bookkeeping); ``snapshot_provider`` is the
    same memoized capture the classic backends use — its identity doubles as
    the base-change signal.
    """

    context: RoundContext
    database: Database
    join_cache: JoinCache
    snapshot_provider: Callable[[], BaseSnapshot]


# --------------------------------------------------------------------- sharding
def shard_attempts(attempts: Sequence[Attempt], unit_count: int) -> list[WorkUnit]:
    """Split *attempts* into at most *unit_count* contiguous, balanced work units.

    Units preserve attempt order (unit ``i`` holds a contiguous slice that
    starts where unit ``i-1`` ended) and differ in size by at most one, so
    merging unit results by unit index reproduces the serial attempt order
    exactly — the invariant behind backend-independent winners.
    """
    total = len(attempts)
    if total == 0:
        return []
    unit_count = max(1, min(unit_count, total))
    base_size, remainder = divmod(total, unit_count)
    units: list[WorkUnit] = []
    start = 0
    for index in range(unit_count):
        size = base_size + (1 if index < remainder else 0)
        units.append(
            WorkUnit(
                index=index,
                start=start,
                attempts=tuple(tuple(attempt) for attempt in attempts[start : start + size]),
            )
        )
        start += size
    return units


def attempt_seed(token: str, attempt_index: int) -> int:
    """Deterministic RNG seed for one attempt, independent of sharding.

    Derived from the round token and the *absolute* attempt index — never
    from the work-unit layout — so any stochastic scoring seeded from it
    produces the same stream regardless of the worker count.
    """
    digest = hashlib.sha256(f"{token}:{attempt_index}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def context_body_payload(context: RoundContext) -> tuple[str, bytes]:
    """Pickle the round's *body* — the context with its token stripped.

    The token is the only per-round field; everything else (queries, config,
    referenced tables, result schema) is identical across the rounds of a
    session and across repeated sessions on the same workload pair. Hashing
    the token-free pickle gives a content key the pool backends use to skip
    re-shipping bodies their resident workers already hold: a task then
    carries ``(token, body_hash, None)`` and the worker rebuilds the full
    context as ``replace(body, token=token)``.
    """
    body = replace(context, token="")
    payload = pickle.dumps(body, protocol=pickle.HIGHEST_PROTOCOL)
    BACKEND_STATS.context_pickles += 1
    return hashlib.sha256(payload).hexdigest(), payload


def required_signatures(context: RoundContext) -> tuple[tuple[str, ...], ...]:
    """All join signatures a backend must be able to serve for the round."""
    signatures = {tuple(sorted(context.referenced))}
    for query in context.queries:
        signatures.add(tuple(sorted(query.join_signature)))
    return tuple(sorted(signatures))


# ------------------------------------------------------------------- evaluation
def build_round_runtime(
    database: Database, join_cache: JoinCache, context: RoundContext
) -> RoundRuntime:
    """Build (and warm) the evaluation state for one round.

    The tuple-class space is reconstructed from the cached join of the
    referenced tables — deterministic, so worker-side spaces match the
    driver's bit for bit. The base joins for every query signature are then
    warmed (at most once per live join instance, across rounds) so each
    attempt's delta-derived view patches cached term masks in O(|Δ|)
    instead of rebuilding them.
    """
    joined = join_cache.join_for(database, context.referenced)
    space = TupleClassSpace(joined, context.queries)
    ensure_base_masks_warm(database, join_cache, context)
    return RoundRuntime(database=database, space=space, join_cache=join_cache)


def warm_base_masks(database: Database, join_cache: JoinCache, context: RoundContext) -> None:
    """Evaluate the candidate batch once on the base to populate term masks."""
    join_cache.evaluate_batch(
        context.queries,
        database,
        set_semantics=context.config.set_semantics,
        name=context.result_name,
        with_fingerprints=False,
    )


# Base joins whose term masks were already warmed, tracked process-wide by
# join-object identity via weakrefs: a join served by a long-lived cache
# (driver or worker) is warmed once across all rounds — later rounds'
# candidates are (near-)subsets of the first round's, and a genuinely new
# term just builds lazily on the derived view as it always did — while a
# rebuilt join (``join_cache.invalidate`` after an in-place base mutation)
# is a new object and is warmed again. Dead or id-recycled joins can never
# satisfy the guard.
_WARMED_BASE_JOINS: dict[int, weakref.ref] = {}


def ensure_base_masks_warm(
    database: Database, join_cache: JoinCache, context: RoundContext
) -> None:
    """Warm the base term masks at most once per live join instance."""
    joined = join_cache.join_for(database, context.referenced)
    ref = _WARMED_BASE_JOINS.get(id(joined))
    if ref is not None and ref() is joined:
        return
    warm_base_masks(database, join_cache, context)
    for key, stale in list(_WARMED_BASE_JOINS.items()):
        if stale() is None:
            del _WARMED_BASE_JOINS[key]
    _WARMED_BASE_JOINS[id(joined)] = weakref.ref(joined)


def evaluate_attempt(
    runtime: RoundRuntime,
    context: RoundContext,
    attempt_index: int,
    pairs: Attempt,
    winner_store: dict | None = None,
) -> AttemptOutcome:
    """Concretely score one attempt: materialize, delta-derive, partition.

    The attempt's class pairs are materialized against a copy of the base
    database; the recorded update-only delta then patches the cached base
    join (via :meth:`JoinCache.derive`), the candidates are batch-evaluated
    on the derived state, and only the canonical partition signature plus
    modification counts survive. The derived cache entry is released before
    returning so a long shard never pins more than one candidate database —
    except when *winner_store* is given and the attempt wins (applied and
    distinguishing): then the materialization is deposited there with its
    derived entry kept registered, so an in-process caller can finalize the
    round without repeating the materialization.
    """
    config = context.config
    joins_before = JOIN_STATS.full_joins
    materialization = materialize_pairs(runtime.space, pairs, runtime.database, config)
    applied = bool(materialization.applied)
    signature: tuple[int, ...] | None = None
    group_sizes: tuple[int, ...] = ()
    distinguishes = False
    if applied:
        delta = materialization.delta
        if delta.is_update_only and not delta.is_empty:
            runtime.join_cache.derive(runtime.database, delta, materialization.database)
        try:
            batch = runtime.join_cache.evaluate_batch(
                context.queries,
                materialization.database,
                set_semantics=config.set_semantics,
                name=context.result_name,
            )
            signature = partition_signature(batch.fingerprints)
        except BaseException:
            runtime.join_cache.invalidate(materialization.database)
            raise
        sizes: dict[int, int] = {}
        for group_id in signature:
            sizes[group_id] = sizes.get(group_id, 0) + 1
        group_sizes = tuple(sorted(sizes.values(), reverse=True))
        distinguishes = len(sizes) > 1
        if winner_store is not None and distinguishes:
            winner_store["attempt_index"] = attempt_index
            winner_store["materialization"] = materialization
            winner_store["batch"] = batch
        else:
            runtime.join_cache.invalidate(materialization.database)
    return AttemptOutcome(
        attempt_index=attempt_index,
        pairs=tuple(pairs),
        applied=applied,
        distinguishes=distinguishes,
        signature=signature,
        group_sizes=group_sizes,
        modification_count=materialization.modification_count,
        modified_tuple_count=materialization.modified_tuple_count,
        modified_relation_count=materialization.modified_relation_count,
        side_effect_count=materialization.side_effect_count,
        skipped_pair_count=len(materialization.skipped_pairs),
        db_cost=materialization.modification_count
        + config.beta * materialization.modified_relation_count,
        full_joins=JOIN_STATS.full_joins - joins_before,
    )


def evaluate_work_unit(
    runtime: RoundRuntime, context: RoundContext, unit: WorkUnit
) -> tuple[AttemptOutcome, ...]:
    """Score every attempt of one work unit, in order."""
    return tuple(
        evaluate_attempt(runtime, context, unit.start + offset, pairs)
        for offset, pairs in enumerate(unit.attempts)
    )


# --------------------------------------------------------------------- backends
class ExecutionBackend(ABC):
    """Pluggable substrate the round planner runs attempt evaluation on."""

    name: str = "abstract"

    @abstractmethod
    def run_attempts(
        self, setup: RoundSetup, attempts: Sequence[Attempt], *, stop_at_first: bool
    ) -> list[AttemptOutcome]:
        """Score *attempts* and return their outcomes in ascending attempt order.

        With ``stop_at_first`` the backend may stop scheduling new work once
        an applied-and-distinguishing outcome is known, but the returned list
        must still contain every outcome for attempts preceding the winner.
        """

    def close(self) -> None:
        """Release any resources (worker pools); the backend stays reusable."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """In-process, in-order evaluation — the differential oracle."""

    name = "serial"

    def run_attempts(
        self, setup: RoundSetup, attempts: Sequence[Attempt], *, stop_at_first: bool
    ) -> list[AttemptOutcome]:
        runtime = RoundRuntime(
            database=setup.database, space=setup.space, join_cache=setup.join_cache
        )
        # Warm once per live join instance (shared guard with the worker
        # path); every attempt below then derives cached masks in O(|Δ|).
        ensure_base_masks_warm(runtime.database, runtime.join_cache, setup.context)
        outcomes: list[AttemptOutcome] = []
        # The winner sink is only honoured in stop-at-first mode, where the
        # first winning attempt ends the loop — an exhaustive sweep could
        # find many winners and must not pin their databases.
        winner_store = setup.winner_store if stop_at_first else None
        for attempt_index, pairs in enumerate(attempts):
            outcome = evaluate_attempt(
                runtime, setup.context, attempt_index, pairs, winner_store
            )
            outcomes.append(outcome)
            if stop_at_first and outcome.applied and outcome.distinguishes:
                break
        return outcomes


# Worker-process globals, populated once per pool by the initializer. One
# (context, runtime) pair is kept per round token; a new token evicts the
# previous round's space so long sessions never accumulate per-round state
# in workers. Round *bodies* (token-stripped contexts, keyed by content
# hash) are kept across rounds so a session's later rounds — whose bodies
# are byte-identical — never re-ship or re-unpickle the context.
_WORKER_DATABASE: Database | None = None
_WORKER_CACHE: JoinCache | None = None
_WORKER_ROUNDS: dict[str, tuple[RoundContext, RoundRuntime]] = {}
_WORKER_BODIES: dict[str, RoundContext] = {}
_WORKER_BODY_LIMIT = 8


def _process_worker_initialize(payload: bytes) -> None:
    """Rehydrate the broadcast base snapshot (runs once per worker process)."""
    global _WORKER_DATABASE, _WORKER_CACHE
    snapshot = BaseSnapshot.from_bytes(payload)
    _WORKER_DATABASE, _WORKER_CACHE = snapshot.restore()
    _WORKER_ROUNDS.clear()
    _WORKER_BODIES.clear()


def _worker_resolve_body(body_hash: str, body_payload: bytes | None) -> RoundContext | None:
    """Look up (or install) the round body; ``None`` asks for a resend."""
    body = _WORKER_BODIES.get(body_hash)
    if body is None:
        if body_payload is None:
            return None
        body = pickle.loads(body_payload)
        _WORKER_BODIES[body_hash] = body
        while len(_WORKER_BODIES) > _WORKER_BODY_LIMIT:
            del _WORKER_BODIES[next(iter(_WORKER_BODIES))]
    return body


def _process_worker_run(
    token: str, body_hash: str, body_payload: bytes | None, unit: WorkUnit
) -> tuple[tuple[AttemptOutcome, ...] | None, dict]:
    """Score one work unit against the rehydrated snapshot (worker-side).

    ``body_payload`` is the round's token-stripped context, pre-pickled once
    by the driver — and shipped at most once per pool: when the driver has
    already shipped a byte-identical body (same queries/config, any round)
    it sends ``None``, and a worker that happens not to hold the body for
    ``body_hash`` replies ``(None, deltas)`` so the driver resubmits the
    unit with the bytes attached. Workers cache the built runtime by token
    and bodies by content hash across rounds.

    Returns ``(outcomes, counter_deltas)``: the worker snapshots the metrics
    registry around the evaluation and ships the counter increments back with
    the outcomes, so instrumentation raised in this child process (zone-map
    skips, join delta-applies, ...) is merged into the driver's registry
    instead of dying with the worker.
    """
    if _WORKER_DATABASE is None or _WORKER_CACHE is None:  # pragma: no cover - defensive
        raise RuntimeError("worker process was not initialized with a base snapshot")
    counters_before = REGISTRY.counter_values()
    cached = _WORKER_ROUNDS.get(token)
    if cached is None:
        body = _worker_resolve_body(body_hash, body_payload)
        if body is None:
            return None, REGISTRY.counter_deltas(counters_before)
        context = replace(body, token=token)
        _WORKER_ROUNDS.clear()
        runtime = build_round_runtime(_WORKER_DATABASE, _WORKER_CACHE, context)
        _WORKER_ROUNDS[token] = (context, runtime)
    else:
        context, runtime = cached
    outcomes = evaluate_work_unit(runtime, context, unit)
    return outcomes, REGISTRY.counter_deltas(counters_before)


class ProcessPoolBackend(ExecutionBackend):
    """Shard attempt evaluation over a pool of snapshot-seeded processes.

    The pool is created lazily on first use and re-created only when the base
    snapshot changes (new base database, or a round referencing a join
    signature the broadcast snapshot does not cover). Work units are
    dispatched in waves; with ``stop_at_first`` no further wave is submitted
    once a resolved prefix contains a winner, bounding speculative work to
    one wave. Outcomes are merged by unit index, never by completion order.

    One pool may be **shared by many sessions** (the session service's
    multiplexing model): ``run_attempts`` and ``close`` serialize on an
    internal lock, so concurrent sessions' rounds execute one at a time over
    the pool — each round still fans its attempts out across every worker —
    and sessions over the same base database (sharing a snapshot through a
    :class:`~repro.relational.evaluator.SharedSnapshotCache`) reuse the
    broadcast seed instead of re-seeding on every session switch.
    """

    name = "process-pool"

    def __init__(
        self,
        workers: int,
        *,
        units_per_worker: int = 2,
        mp_context: multiprocessing.context.BaseContext | None = None,
    ) -> None:
        if workers < 2:
            raise ValueError("ProcessPoolBackend needs at least 2 workers")
        if units_per_worker < 1:
            raise ValueError("units_per_worker must be at least 1")
        self.workers = workers
        self.units_per_worker = units_per_worker
        self._mp_context = mp_context
        self._executor: ProcessPoolExecutor | None = None
        self._snapshot: BaseSnapshot | None = None
        # Content hashes of round bodies already shipped to the current pool
        # (worker body caches die with the pool, so close() clears this).
        self._shipped_bodies: set[str] = set()
        #: Size of the last pickled snapshot broadcast to the pool, or None
        #: before the first seed. Diagnostics: with typed column storage the
        #: dominant payload is the base relations' tuples, and the figure is
        #: what every worker pays to rehydrate on a re-seed.
        self.last_snapshot_bytes: int | None = None
        # Guards executor lifecycle and the wave loop: a pool shared across
        # sessions must run one round at a time (rounds still use every
        # worker; cross-session concurrency lives in the human think time).
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ pool
    def _context(self) -> multiprocessing.context.BaseContext:
        if self._mp_context is not None:
            return self._mp_context
        # fork is the cheap path (no re-import, snapshot bytes still pickled
        # explicitly so behaviour matches spawn); fall back where unavailable.
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context("fork" if "fork" in methods else "spawn")

    def _ensure_executor(self, setup: RoundSetup) -> ProcessPoolExecutor:
        # Ask the provider every round: it memoizes planner-side and returns
        # a *new* snapshot object exactly when the base state changed (new
        # database, uncovered signature, or joins invalidated/rebuilt after
        # an in-place mutation) — any of which must re-seed the pool, or the
        # workers would keep evaluating against stale joins.
        snapshot = setup.snapshot_provider()
        signatures = required_signatures(setup.context)
        if not snapshot.covers(signatures):  # pragma: no cover - defensive
            raise ValueError(
                "snapshot provider returned a snapshot that does not cover "
                f"the round's join signatures {signatures}"
            )
        if self._executor is None or snapshot is not self._snapshot:
            self.close()
            payload = snapshot.to_bytes()
            self.last_snapshot_bytes = len(payload)
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=self._context(),
                initializer=_process_worker_initialize,
                initargs=(payload,),
            )
            self._snapshot = snapshot
        return self._executor

    # ------------------------------------------------------------------- run
    def run_attempts(
        self, setup: RoundSetup, attempts: Sequence[Attempt], *, stop_at_first: bool
    ) -> list[AttemptOutcome]:
        if not attempts:
            return []
        with self._lock:
            return self._run_attempts_locked(setup, attempts, stop_at_first=stop_at_first)

    def _run_attempts_locked(
        self, setup: RoundSetup, attempts: Sequence[Attempt], *, stop_at_first: bool
    ) -> list[AttemptOutcome]:
        tracer = get_tracer()
        with tracer.span("backend.broadcast", backend=self.name) as broadcast_span:
            executor = self._ensure_executor(setup)
            if tracer.enabled and self.last_snapshot_bytes is not None:
                broadcast_span.set(snapshot_bytes=self.last_snapshot_bytes)
        if stop_at_first:
            # Single-attempt units: early exit wastes at most one wave.
            units = shard_attempts(attempts, len(attempts))
            wave_size = self.workers
        else:
            units = shard_attempts(attempts, self.workers * self.units_per_worker)
            wave_size = len(units)
        token = setup.context.token
        # The context *body* (token stripped) is pickled once per distinct
        # content and shipped at most once per pool: rounds of one session
        # share a byte-identical body, so every round after the first ships
        # only ``(token, hash, None)`` with each task. A worker that does
        # not hold the body (it never saw round one's tasks) replies with
        # ``None`` outcomes and the unit is resubmitted with the bytes.
        body_hash, body_payload = context_body_payload(setup.context)
        if body_hash in self._shipped_bodies:
            BACKEND_STATS.context_skips += 1
            shipped_payload: bytes | None = None
        else:
            self._shipped_bodies.add(body_hash)
            shipped_payload = body_payload
        outcomes_by_unit: dict[int, tuple[AttemptOutcome, ...]] = {}
        counter_deltas: list[dict] = []
        position = 0
        try:
            while position < len(units):
                wave = units[position : position + wave_size]
                with tracer.span(
                    "backend.wave", backend=self.name, units=len(wave)
                ):
                    futures = [
                        executor.submit(
                            _process_worker_run, token, body_hash, shipped_payload, unit
                        )
                        for unit in wave
                    ]
                    for unit, future in zip(wave, futures):
                        outcomes, deltas = future.result()
                        if deltas:
                            counter_deltas.append(deltas)
                        while outcomes is None:
                            BACKEND_STATS.context_resends += 1
                            retry = executor.submit(
                                _process_worker_run, token, body_hash, body_payload, unit
                            )
                            outcomes, deltas = retry.result()
                            if deltas:
                                counter_deltas.append(deltas)
                        outcomes_by_unit[unit.index] = outcomes
                position += len(wave)
                if stop_at_first and any(
                    outcome.applied and outcome.distinguishes
                    for resolved in outcomes_by_unit.values()
                    for outcome in resolved
                ):
                    break
        except BrokenProcessPool:
            # A crashed worker (OOM kill, hard fault) permanently breaks the
            # executor; drop it so the next round re-creates the pool
            # instead of resubmitting to a dead one forever.
            self.close()
            raise
        with tracer.span("backend.merge", backend=self.name):
            # Worker-side counter increments merge as commutative sums, so
            # the totals are independent of worker scheduling; outcomes merge
            # by unit index, never by completion order.
            for deltas in counter_deltas:
                REGISTRY.merge_counter_deltas(deltas)
            merged: list[AttemptOutcome] = []
            for index in sorted(outcomes_by_unit):
                merged.extend(outcomes_by_unit[index])
        return merged

    def close(self) -> None:
        """Shut the pool down; the next round transparently re-creates it."""
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
            self._snapshot = None
            self._shipped_bodies.clear()


class SqlPushdownBackend(ExecutionBackend):
    """Score attempts by compiling the round into SQLite passes.

    Instead of shuttling attempt evaluation to Python-side executors, the
    round is pushed down into the engine that already serves as the
    correctness oracle: the base database is loaded **once per session** into
    a persistent ``:memory:`` SQLite mirror (:class:`SqliteMirror`, rowids
    aliased to tuple ids, join keys indexed), each round's candidate batch is
    compiled **once** into per-join-signature aggregated SELECTs
    (:func:`~repro.sql.pushdown.compile_round`, cached by round token), and
    every attempt then costs one SAVEPOINT'd delta replay plus those SELECTs
    — the join, the predicates and the group counting all run at C speed.

    Determinism contract: materialization stays driver-side (it is what
    produces the :class:`~repro.relational.delta.TupleDelta` to replay), the
    compiled fingerprints induce exactly the evaluator's result-equality
    classes, and attempts are scored in order — so outcomes, winners and
    whole-session transcripts are bit-identical to :class:`SerialBackend`.
    The faithfulness ladder is conservative: a round whose predicates cannot
    be compiled with exact evaluator semantics (e.g. an ordering comparison
    the evaluator would surface as an evaluation error) falls back to the
    in-process path wholesale, and an attempt SQLite rejects at runtime is
    re-scored individually by :func:`evaluate_attempt` — both identical to
    serial by construction.

    The mirror is invalidated exactly like the process pool's broadcast
    snapshot: the planner's ``snapshot_provider`` memoizes per base state and
    returns a *new* snapshot object only when the base actually changed, so
    snapshot identity doubles as the reload signal (at most one base load per
    session, pinned by :data:`~repro.sql.pushdown.PUSHDOWN_STATS`).
    """

    name = "sql-pushdown"

    def __init__(self) -> None:
        self._serial = SerialBackend()
        self._mirror: SqliteMirror | None = None
        self._snapshot: BaseSnapshot | None = None
        self._base_unsupported = False
        # One compiled program per round, keyed by token; a new round evicts
        # the previous entry (tokens are process-unique, rounds sequential).
        # ``None`` records a round whose batch cannot be compiled faithfully.
        self._programs: dict[str, RoundProgram | None] = {}

    # ----------------------------------------------------------------- mirror
    def _ensure_mirror(self, setup: RoundSetup) -> SqliteMirror | None:
        snapshot = setup.snapshot_provider()
        if snapshot is not self._snapshot:
            # Base state changed (new database, uncovered signature, or joins
            # invalidated after an in-place mutation): reload the mirror.
            self._discard_mirror()
            self._snapshot = snapshot
        if self._mirror is None and not self._base_unsupported:
            try:
                self._mirror = SqliteMirror(setup.database)
            except PushdownUnsupportedError:
                self._base_unsupported = True
        return self._mirror

    def _discard_mirror(self) -> None:
        if self._mirror is not None:
            self._mirror.close()
            self._mirror = None
        self._base_unsupported = False
        self._programs.clear()

    def _program_for(self, setup: RoundSetup) -> RoundProgram | None:
        token = setup.context.token
        if token not in self._programs:
            self._programs.clear()
            try:
                program: RoundProgram | None = compile_round(
                    setup.context.queries,
                    setup.database,
                    set_semantics=setup.context.config.set_semantics,
                )
            except PushdownUnsupportedError:
                program = None
            self._programs[token] = program
        return self._programs[token]

    # -------------------------------------------------------------------- run
    def run_attempts(
        self, setup: RoundSetup, attempts: Sequence[Attempt], *, stop_at_first: bool
    ) -> list[AttemptOutcome]:
        mirror = self._ensure_mirror(setup)
        program = self._program_for(setup) if mirror is not None else None
        if mirror is None or program is None:
            PUSHDOWN_STATS.python_fallbacks += 1
            return self._serial.run_attempts(setup, attempts, stop_at_first=stop_at_first)
        runtime = RoundRuntime(
            database=setup.database, space=setup.space, join_cache=setup.join_cache
        )
        winner_store = setup.winner_store if stop_at_first else None
        outcomes: list[AttemptOutcome] = []
        for attempt_index, pairs in enumerate(attempts):
            outcome = self._evaluate_attempt_sql(
                mirror, program, runtime, setup.context, attempt_index, pairs, winner_store
            )
            outcomes.append(outcome)
            if stop_at_first and outcome.applied and outcome.distinguishes:
                break
        return outcomes

    def _evaluate_attempt_sql(
        self,
        mirror: SqliteMirror,
        program: RoundProgram,
        runtime: RoundRuntime,
        context: RoundContext,
        attempt_index: int,
        pairs: Attempt,
        winner_store: dict | None,
    ) -> AttemptOutcome:
        """Score one attempt through the mirror (Python fallback on failure).

        Materialization stays in process — it is the deterministic source of
        the delta the mirror replays — but the candidate batch never touches
        the Python evaluator: the partition comes from the compiled program's
        fingerprints, so the attempt performs zero Python-side joins.
        """
        config = context.config
        joins_before = JOIN_STATS.full_joins
        materialization = materialize_pairs(runtime.space, pairs, runtime.database, config)
        applied = bool(materialization.applied)
        signature: tuple[int, ...] | None = None
        group_sizes: tuple[int, ...] = ()
        distinguishes = False
        if applied:
            try:
                with mirror.attempt(materialization.delta) as cursor:
                    fingerprints = program.fingerprints(cursor)
            except PushdownExecutionError:
                PUSHDOWN_STATS.python_fallbacks += 1
                return evaluate_attempt(runtime, context, attempt_index, pairs, winner_store)
            PUSHDOWN_STATS.attempt_batches += 1
            signature = partition_signature(fingerprints)
            sizes: dict[int, int] = {}
            for group_id in signature:
                sizes[group_id] = sizes.get(group_id, 0) + 1
            group_sizes = tuple(sorted(sizes.values(), reverse=True))
            distinguishes = len(sizes) > 1
            if winner_store is not None and distinguishes:
                # Finalize-ready deposit: warm the base term masks (once per
                # live join, shared guard with the other backends) and keep
                # the winner's derived cache entry registered, so the
                # planner's ``partition_queries`` evaluates the feedback
                # partition on the O(|Δ|) patched state. Only the winner pays
                # this — losing attempts never touch the Python evaluator.
                ensure_base_masks_warm(runtime.database, runtime.join_cache, context)
                delta = materialization.delta
                if delta.is_update_only and not delta.is_empty:
                    runtime.join_cache.derive(
                        runtime.database, delta, materialization.database
                    )
                winner_store["attempt_index"] = attempt_index
                winner_store["materialization"] = materialization
        return AttemptOutcome(
            attempt_index=attempt_index,
            pairs=tuple(pairs),
            applied=applied,
            distinguishes=distinguishes,
            signature=signature,
            group_sizes=group_sizes,
            modification_count=materialization.modification_count,
            modified_tuple_count=materialization.modified_tuple_count,
            modified_relation_count=materialization.modified_relation_count,
            side_effect_count=materialization.side_effect_count,
            skipped_pair_count=len(materialization.skipped_pairs),
            db_cost=materialization.modification_count
            + config.beta * materialization.modified_relation_count,
            full_joins=JOIN_STATS.full_joins - joins_before,
        )

    def close(self) -> None:
        """Drop the mirror connection; the next round transparently reloads."""
        self._discard_mirror()
        self._snapshot = None


def create_backend(workers: int | None, backend: str = "auto") -> ExecutionBackend:
    """The backend for a worker count and backend name.

    ``auto`` keeps the historical worker-count rule — serial for ``0``/``1``
    workers, a process pool otherwise. An explicit name always wins:
    ``serial`` and ``sql`` ignore the worker count entirely, while
    ``process`` and ``warm`` raise the count to the pools' minimum of two
    when needed.
    """
    name = backend_name(backend)
    if name == "serial":
        return SerialBackend()
    if name == "sql":
        return SqlPushdownBackend()
    if name == "process":
        return ProcessPoolBackend(max(2, workers or 0))
    if name == "warm":
        # Imported lazily: worker_runtime imports this module at load time.
        from repro.core.worker_runtime import WarmProcessPoolBackend

        return WarmProcessPoolBackend(max(2, workers or 0))
    if workers is None or workers <= 1:
        return SerialBackend()
    return ProcessPoolBackend(workers)
