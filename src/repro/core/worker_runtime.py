"""Warm persistent worker runtime: delta-shipped rounds over a live pool.

The classic :class:`~repro.core.execution_backend.ProcessPoolBackend` treats
workers as stateless attempt evaluators: the base snapshot is re-broadcast
whenever its identity changes, every round re-ships the pickled round context
with every task, and sharding is a fixed ``workers × units_per_worker``. This
module restructures that path into a **worker runtime** whose child processes
live for the whole session and hold *versioned* base state:

* **Install once, advance by delta.** Each worker owns a resident
  :class:`~repro.relational.evaluator.BaseSnapshot` (database + joins +
  columnar views). The initial install is free under ``fork`` (the snapshot
  is inherited copy-on-write), a raw-buffer map under the shared-memory
  variant (:meth:`BaseSnapshot.to_shared_memory`), or one pickle otherwise.
  When the host advances the base in place it publishes only the
  :class:`~repro.relational.delta.TupleDelta`
  (:meth:`WarmProcessPoolBackend.advance_base`); workers replay it with
  :meth:`BaseSnapshot.advance` — cross-version traffic is O(|Δ|), never
  O(|D|). (A QFE session never mutates its base, so *within* a session the
  protocol ships no base bytes at all; the delta path serves base-evolving
  hosts — service pair updates, long benchmark suites — and pool rebuilds.)

* **Versioned lazy sync.** Every task carries the driver's base version.
  Recent delta ops piggyback on tasks while any worker may lag; a worker that
  cannot catch up replies ``need-sync`` and the driver resubmits with an
  authoritative install payload. No global barrier, no pool teardown.

* **Round planning in the worker.** A round-planning backend
  (``plans_rounds``) receives only a content-hashed round *body* (queries +
  config, token stripped); the worker runs the prologue
  (:func:`~repro.core.round_planner.compute_prologue` — the exact driver
  code) against its resident joins and keeps the result in a content-keyed
  plan cache. A repeated round body — resumed sessions, repeated pairs on a
  shared service pool — is a **warm hit**: no context bytes shipped, no
  skyline/selection recomputed anywhere. The worker ships back compact attempt
  specs, outcomes, and the winner's delta + batch; the driver replays the
  delta to finalize. Prologue, evaluation and merge order are all
  deterministic, so transcripts stay bit-identical to serial.

* **Cost-model work units.** Fixed sharding is replaced by units sized from a
  measured per-attempt EWMA (:class:`AttemptCostModel`), seeded by round 1
  and updated from per-unit timings merged back with the worker counter
  deltas (``qfe_backend_attempt_micros`` / ``qfe_backend_attempts_evaluated``).

Everything observable lives in :data:`BACKEND_STATS` (``qfe_backend_*``
registry counters — e.g. ``qfe_backend_bytes_shipped``,
``qfe_backend_warm_hits``), so worker-side increments merge into the driver
registry exactly like the columnar and join stats do.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Any, Callable, Sequence

import multiprocessing

from repro.core.execution_backend import (
    BACKEND_STATS,
    Attempt,
    AttemptOutcome,
    ExecutionBackend,
    RoundContext,
    RoundRequest,
    RoundRuntime,
    RoundSetup,
    WorkUnit,
    build_round_runtime,
    context_body_payload,
    ensure_base_masks_warm,
    evaluate_attempt,
    required_signatures,
    shard_attempts,
)
from repro.exceptions import DatabaseGenerationError
from repro.obs.registry import REGISTRY, register_worker_stats_participant
from repro.obs.trace import get_tracer
from repro.relational.evaluator import BaseSnapshot, JoinCache, SharedSnapshotHandle

__all__ = [
    "BACKEND_STATS",
    "AttemptCostModel",
    "WarmProcessPoolBackend",
    "RemoteRound",
    "RemotePlan",
    "RemoteWinner",
    "advance_base_in_place",
]


# ------------------------------------------------------------------ cost model
class AttemptCostModel:
    """EWMA estimate of per-attempt seconds, driving work-unit sizing.

    Seeded by the first round's measured unit timings; before any
    observation, :meth:`unit_count` falls back to the classic
    ``workers × 2`` oversharding. Afterwards a unit is sized to
    ``target_unit_seconds`` of estimated work — long enough to amortize task
    dispatch, short enough that early-stop waste and stragglers stay bounded
    — clamped so a round with enough attempts always occupies every worker.
    """

    def __init__(
        self,
        *,
        alpha: float = 0.3,
        target_unit_seconds: float = 0.02,
        default_attempt_seconds: float = 0.005,
    ) -> None:
        if not (0.0 < alpha <= 1.0):
            raise ValueError("alpha must be in (0, 1]")
        if target_unit_seconds <= 0.0:
            raise ValueError("target_unit_seconds must be positive")
        self.alpha = alpha
        self.target_unit_seconds = target_unit_seconds
        self.default_attempt_seconds = default_attempt_seconds
        self._ewma: float | None = None
        self.observations = 0

    @property
    def seeded(self) -> bool:
        return self._ewma is not None

    @property
    def attempt_seconds(self) -> float:
        """Current per-attempt estimate (the default before any observation)."""
        return self._ewma if self._ewma is not None else self.default_attempt_seconds

    def observe(self, attempts: int, seconds: float) -> None:
        """Fold one measured unit (attempt count, wall seconds) into the EWMA."""
        if attempts <= 0 or seconds < 0.0:
            return
        sample = seconds / attempts
        if self._ewma is None:
            self._ewma = sample
        else:
            self._ewma = self.alpha * sample + (1.0 - self.alpha) * self._ewma
        self.observations += 1

    def unit_count(self, total_attempts: int, workers: int) -> int:
        """How many units to shard *total_attempts* into for *workers*."""
        if total_attempts <= 0:
            return 0
        if self._ewma is None:
            # Round 1: no measurements yet — classic oversharding.
            return min(total_attempts, workers * 2)
        per_unit = max(1, round(self.target_unit_seconds / max(self._ewma, 1e-9)))
        count = -(-total_attempts // per_unit)  # ceil
        return max(min(workers, total_attempts), min(count, total_attempts))


# ------------------------------------------------------------- wire dataclasses
@dataclass(frozen=True)
class _Install:
    """Authoritative full base install: one pickle or one shm manifest."""

    version: int
    snapshot_bytes: bytes | None
    shm_manifest: dict | None


@dataclass(frozen=True)
class _SyncOps:
    """Recent delta ops ((target_version, pickled TupleDelta), ascending)."""

    ops: tuple[tuple[int, bytes], ...]


@dataclass(frozen=True)
class _PlanTask:
    version: int
    token: str
    body_hash: str
    body: bytes | None
    sync: "_Install | _SyncOps | None"


@dataclass(frozen=True)
class _RunTask:
    version: int
    token: str
    body_hash: str
    body: bytes | None
    unit: WorkUnit
    stop_at_first: bool
    sync: "_Install | _SyncOps | None"


@dataclass(frozen=True)
class _NeedSync:
    """Worker cannot reach the task's base version with what it was given."""

    pid: int
    version: int
    counter_deltas: dict


@dataclass(frozen=True)
class _NeedContext:
    """Worker lacks the round body for the task's hash (ship the bytes)."""

    pid: int
    version: int
    body_hash: str
    counter_deltas: dict


@dataclass(frozen=True)
class RemoteWinner:
    """The winning attempt's finalize payload, shipped from the worker.

    ``delta`` replays onto a copy of the driver's base to reproduce the exact
    modified database (tuple ids included — see
    :meth:`~repro.relational.delta.TupleDelta.apply_to`); ``batch`` carries
    the winner's per-candidate result relations and fingerprints so the
    driver builds the feedback partition without evaluating anything.
    """

    attempt_index: int
    delta: Any
    batch: Any
    modification_count: int
    modified_tuple_count: int
    modified_relation_count: int
    side_effect_count: int
    skipped_pair_count: int


@dataclass(frozen=True)
class _PlanReply:
    pid: int
    version: int
    cache_hit: bool
    error: str | None
    skyline_pair_count: int
    chosen_pairs: tuple
    chosen_cost: Any
    attempts: tuple[Attempt, ...]
    skyline_seconds: float
    selection_seconds: float
    counter_deltas: dict


@dataclass(frozen=True)
class _RunReply:
    pid: int
    version: int
    outcomes: tuple[AttemptOutcome, ...]
    winner: RemoteWinner | None
    elapsed: float
    counter_deltas: dict


@dataclass(frozen=True)
class RemotePlan:
    """Compact prologue summary for one remotely planned round."""

    cache_hit: bool
    skyline_pair_count: int
    chosen_pairs: tuple
    chosen_cost: Any
    attempts: tuple[Attempt, ...]
    skyline_seconds: float
    selection_seconds: float


@dataclass(frozen=True)
class RemoteRound:
    """Everything :meth:`WarmProcessPoolBackend.run_round` hands the planner."""

    plan: RemotePlan
    outcomes: list[AttemptOutcome]
    winner: RemoteWinner | None


# --------------------------------------------------------------- worker globals
_OPS_HISTORY = 8
_PLAN_CACHE_LIMIT = 8
_ROUND_LIMIT = 4
_BODY_LIMIT = 8
_SYNC_RETRIES = 6


class _ForkSeed:
    """Driver-side seed inherited by fork-started workers (zero bytes shipped)."""

    __slots__ = ("version", "snapshot")

    def __init__(self, version: int, snapshot: BaseSnapshot) -> None:
        self.version = version
        self.snapshot = snapshot


class _WorkerBase:
    """A worker's resident base: versioned snapshot, database, seeded cache."""

    __slots__ = ("version", "snapshot", "database", "cache")

    def __init__(
        self, version: int, snapshot: BaseSnapshot, database: Any, cache: JoinCache
    ) -> None:
        self.version = version
        self.snapshot = snapshot
        self.database = database
        self.cache = cache


@dataclass
class _PlanEntry:
    """One cached prologue: the built runtime plus the compact summaries."""

    runtime: RoundRuntime
    attempts: tuple[Attempt, ...]
    skyline_pair_count: int
    chosen_pairs: tuple
    chosen_cost: Any
    skyline_seconds: float
    selection_seconds: float


_FORK_SEED: _ForkSeed | None = None
_BASE: _WorkerBase | None = None
_PLANS: "OrderedDict[tuple[int, str], _PlanEntry]" = OrderedDict()
_ROUNDS: "OrderedDict[str, tuple[RoundContext, RoundRuntime]]" = OrderedDict()
_BODIES: "OrderedDict[str, RoundContext]" = OrderedDict()
#: Counter values this worker last shipped to the driver. Reporting against
#: this high-water mark (instead of a per-task snapshot) means increments
#: raised *between* tasks — the fork-seeded install in the pool initializer —
#: ride back with the next reply instead of being lost.
_LAST_REPORT: dict = {}


def _report_deltas() -> dict:
    """Counter increments since this worker's previous reply."""
    global _LAST_REPORT
    deltas = REGISTRY.counter_deltas(_LAST_REPORT)
    _LAST_REPORT = REGISTRY.counter_values()
    return deltas


def _set_fork_seed(version: int, snapshot: BaseSnapshot) -> None:
    global _FORK_SEED
    _FORK_SEED = _ForkSeed(version, snapshot)


def _install_snapshot(version: int, snapshot: BaseSnapshot) -> None:
    global _BASE
    database, cache = snapshot.restore()
    _BASE = _WorkerBase(version, snapshot, database, cache)
    _PLANS.clear()
    _ROUNDS.clear()
    BACKEND_STATS.snapshot_installs += 1


def _warm_worker_initialize() -> None:
    """Install the fork-inherited base, if any (runs once per worker process).

    Under the fork start method the driver's :data:`_FORK_SEED` — version and
    live snapshot object — arrives copy-on-write with the address space, so
    the install ships zero bytes. Under spawn the global is unset and the
    worker starts base-less: its first task replies ``need-sync`` and the
    driver ships an authoritative install (pickle or shm manifest).
    """
    global _LAST_REPORT
    # A forked child inherits the driver's registry *values*; baseline them
    # out first or the first reply would ship the driver's own pre-fork
    # counts back as increments (double counting). The fork-seed install
    # below lands after the baseline, so it is reported correctly.
    _LAST_REPORT = REGISTRY.counter_values()
    seed = _FORK_SEED
    if seed is not None:
        _install_snapshot(seed.version, seed.snapshot)


def _apply_advance(delta: Any, target_version: int) -> None:
    base = _BASE
    assert base is not None
    # The snapshot advances its joins incrementally and mutates the database
    # in place; the identity-keyed cache must drop the pre-advance joins (and
    # any derived children) first, then re-adopt the patched ones.
    base.cache.invalidate(base.database)
    base.snapshot.advance(delta)
    for signature, joined in base.snapshot.joins.items():
        base.cache.adopt(base.database, signature, joined)
    base.version = target_version
    _PLANS.clear()
    _ROUNDS.clear()
    BACKEND_STATS.snapshot_advances += 1


def _sync_to(version: int, sync: "_Install | _SyncOps | None") -> bool:
    """Bring the resident base to *version*; True when current afterwards."""
    if _BASE is not None and _BASE.version == version:
        return True
    if isinstance(sync, _Install) and sync.version == version:
        if sync.shm_manifest is not None:
            snapshot = BaseSnapshot.from_shared_memory(sync.shm_manifest)
            BACKEND_STATS.shm_bytes_mapped += int(sync.shm_manifest["total"])
        elif sync.snapshot_bytes is not None:
            snapshot = BaseSnapshot.from_bytes(sync.snapshot_bytes)
        else:  # pragma: no cover - driver always fills one variant
            return False
        _install_snapshot(version, snapshot)
        return True
    if isinstance(sync, _SyncOps) and _BASE is not None:
        for target, payload in sync.ops:
            if target <= _BASE.version:
                continue
            if target != _BASE.version + 1:
                break  # gap: this worker is too far behind the op window
            _apply_advance(pickle.loads(payload), target)
        return _BASE is not None and _BASE.version == version
    return False


def _context_for(task: "_PlanTask | _RunTask") -> RoundContext | None:
    """Resolve the task's round context from the body cache (None = resend)."""
    body = _BODIES.get(task.body_hash)
    if body is None:
        if task.body is None:
            return None
        body = pickle.loads(task.body)
        _BODIES[task.body_hash] = body
        while len(_BODIES) > _BODY_LIMIT:
            _BODIES.popitem(last=False)
    else:
        _BODIES.move_to_end(task.body_hash)
    return replace(body, token=task.token)


def _register_round(token: str, context: RoundContext, runtime: RoundRuntime) -> None:
    _ROUNDS[token] = (context, runtime)
    _ROUNDS.move_to_end(token)
    while len(_ROUNDS) > _ROUND_LIMIT:
        _ROUNDS.popitem(last=False)


def _handle_plan(task: _PlanTask, context: RoundContext) -> _PlanReply:
    # Imported here (not at module top) to keep the module importable from
    # execution_backend without a cycle: round_planner imports
    # execution_backend, and only worker processes ever reach this path.
    from repro.core.round_planner import compute_prologue

    base = _BASE
    assert base is not None
    key = (base.version, task.body_hash)
    entry = _PLANS.get(key)
    cache_hit = entry is not None
    if entry is not None:
        _PLANS.move_to_end(key)
        BACKEND_STATS.warm_hits += 1
    else:
        BACKEND_STATS.warm_misses += 1
        try:
            prologue = compute_prologue(base.database, base.cache, context)
        except DatabaseGenerationError as exc:
            return _PlanReply(
                pid=os.getpid(),
                version=base.version,
                cache_hit=False,
                error=str(exc),
                skyline_pair_count=0,
                chosen_pairs=(),
                chosen_cost=None,
                attempts=(),
                skyline_seconds=0.0,
                selection_seconds=0.0,
                counter_deltas=_report_deltas(),
            )
        ensure_base_masks_warm(base.database, base.cache, context)
        entry = _PlanEntry(
            runtime=RoundRuntime(
                database=base.database, space=prologue.space, join_cache=base.cache
            ),
            attempts=prologue.attempts,
            skyline_pair_count=prologue.skyline.pair_count,
            chosen_pairs=tuple(prologue.selection.chosen_pairs),
            chosen_cost=prologue.selection.chosen_cost,
            skyline_seconds=prologue.skyline_seconds,
            selection_seconds=prologue.selection_seconds,
        )
        _PLANS[key] = entry
        while len(_PLANS) > _PLAN_CACHE_LIMIT:
            _PLANS.popitem(last=False)
    _register_round(task.token, context, entry.runtime)
    return _PlanReply(
        pid=os.getpid(),
        version=base.version,
        cache_hit=cache_hit,
        error=None,
        skyline_pair_count=entry.skyline_pair_count,
        chosen_pairs=entry.chosen_pairs,
        chosen_cost=entry.chosen_cost,
        attempts=entry.attempts,
        skyline_seconds=entry.skyline_seconds,
        selection_seconds=entry.selection_seconds,
        counter_deltas=_report_deltas(),
    )


def _handle_run(task: _RunTask, context: RoundContext) -> _RunReply:
    base = _BASE
    assert base is not None
    state = _ROUNDS.get(task.token)
    if state is not None:
        _ROUNDS.move_to_end(task.token)
        context, runtime = state
    else:
        # This worker never saw the round's plan (another worker planned it,
        # or the caller uses the classic run_attempts interface): build the
        # evaluation runtime — space + warm masks, no skyline — against the
        # resident base, reusing a content-matched plan entry when present.
        entry = _PLANS.get((base.version, task.body_hash))
        if entry is not None:
            _PLANS.move_to_end((base.version, task.body_hash))
            runtime = entry.runtime
        else:
            runtime = build_round_runtime(base.database, base.cache, context)
        _register_round(task.token, context, runtime)
    ensure_base_masks_warm(base.database, base.cache, context)
    start = time.perf_counter()
    outcomes: list[AttemptOutcome] = []
    winner: RemoteWinner | None = None
    for offset, pairs in enumerate(task.unit.attempts):
        attempt_index = task.unit.start + offset
        if task.stop_at_first:
            store: dict = {}
            outcome = evaluate_attempt(runtime, context, attempt_index, pairs, store)
            outcomes.append(outcome)
            if outcome.applied and outcome.distinguishes:
                materialization = store["materialization"]
                winner = RemoteWinner(
                    attempt_index=attempt_index,
                    delta=materialization.delta,
                    batch=store["batch"],
                    modification_count=materialization.modification_count,
                    modified_tuple_count=materialization.modified_tuple_count,
                    modified_relation_count=materialization.modified_relation_count,
                    side_effect_count=materialization.side_effect_count,
                    skipped_pair_count=len(materialization.skipped_pairs),
                )
                # The deposit kept the winner's derived entry registered so an
                # in-process caller could reuse it; here the driver gets the
                # delta instead — release the entry so the resident cache
                # never pins a candidate database across rounds.
                runtime.join_cache.invalidate(materialization.database)
                break
        else:
            outcomes.append(evaluate_attempt(runtime, context, attempt_index, pairs))
    elapsed = time.perf_counter() - start
    BACKEND_STATS.attempts_evaluated += len(outcomes)
    BACKEND_STATS.attempt_micros += int(elapsed * 1e6)
    return _RunReply(
        pid=os.getpid(),
        version=base.version,
        outcomes=tuple(outcomes),
        winner=winner,
        elapsed=elapsed,
        counter_deltas=_report_deltas(),
    )


def _warm_call(task: "_PlanTask | _RunTask"):
    """Single worker entry point: sync, resolve context, plan or run."""
    if not _sync_to(task.version, task.sync):
        return _NeedSync(
            pid=os.getpid(),
            version=-1 if _BASE is None else _BASE.version,
            counter_deltas=_report_deltas(),
        )
    context = _context_for(task)
    if context is None:
        return _NeedContext(
            pid=os.getpid(),
            version=_BASE.version if _BASE is not None else -1,
            body_hash=task.body_hash,
            counter_deltas=_report_deltas(),
        )
    if isinstance(task, _PlanTask):
        return _handle_plan(task, context)
    return _handle_run(task, context)


def _warm_reset_counters() -> int:
    """Zero this worker's registry (warm-worker-aware reset); returns the pid.

    The short sleep keeps a burst of reset tasks from being drained by one
    idle worker before its siblings pick theirs up.
    """
    global _LAST_REPORT
    REGISTRY.reset()
    _LAST_REPORT = REGISTRY.counter_values()
    time.sleep(0.005)
    return os.getpid()


# --------------------------------------------------------------------- backend
class WarmProcessPoolBackend(ExecutionBackend):
    """Persistent warm worker pool: versioned base state, remote round planning.

    Differences from :class:`~repro.core.execution_backend.ProcessPoolBackend`:

    * the pool is never torn down on base change — workers upgrade lazily via
      the versioned sync protocol (delta ops piggybacked on tasks, full
      install only as the need-sync fallback);
    * ``plans_rounds`` is set, so :class:`~repro.core.round_planner.\
RoundPlanner` delegates whole rounds via :meth:`run_round`: the prologue runs
      (and is content-cached) worker-side, and only compact specs, outcomes
      and the winner's delta + batch cross the process boundary;
    * work units are sized by the measured :class:`AttemptCostModel` instead
      of a fixed ``units_per_worker``;
    * with ``use_shared_memory`` the install payload is a raw-buffer
      shared-memory block (typed columns exported zero-pickle, attached with
      one ``frombytes`` copy per column) instead of a snapshot pickle.

    The determinism contract is unchanged: outcomes merge by attempt order,
    the prologue is the identical deterministic code on identical replicated
    state, and the winner's delta replays the exact winning database — so
    transcripts are bit-identical to :class:`SerialBackend` at any worker
    count, before and after crashes (a :class:`BrokenProcessPool` rebuilds
    the pool from the current fork seed and deterministically retries the
    round once).
    """

    name = "warm-pool"
    plans_rounds = True

    def __init__(
        self,
        workers: int,
        *,
        mp_context: multiprocessing.context.BaseContext | None = None,
        target_unit_seconds: float = 0.02,
        ewma_alpha: float = 0.3,
        use_shared_memory: bool = False,
    ) -> None:
        if workers < 2:
            raise ValueError("WarmProcessPoolBackend needs at least 2 workers")
        self.workers = workers
        self.use_shared_memory = use_shared_memory
        self.cost_model = AttemptCostModel(
            alpha=ewma_alpha, target_unit_seconds=target_unit_seconds
        )
        self._mp_context = mp_context
        self._executor: ProcessPoolExecutor | None = None
        self._snapshot: BaseSnapshot | None = None
        self._version = 0
        self._ops: list[tuple[int, bytes]] = []
        self._install_bytes: bytes | None = None
        self._shm_handle: SharedSnapshotHandle | None = None
        self._worker_versions: dict[int, int] = {}
        self._shipped_bodies: set[str] = set()
        self._current_body: tuple[str, bytes] | None = None
        self.last_snapshot_bytes: int | None = None
        self._lock = threading.RLock()
        # Join the warm-worker-aware reset fan-out: reset_all_stats() zeroes
        # the resident workers' registries too, not just the driver's.
        register_worker_stats_participant(self)

    # ------------------------------------------------------------------- pool
    def _context(self) -> multiprocessing.context.BaseContext:
        if self._mp_context is not None:
            return self._mp_context
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context("fork" if "fork" in methods else "spawn")

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            # Workers fork at first submit, inheriting the *current* fork
            # seed — _ensure_base always runs first, so the seed is fresh.
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=self._context(),
                initializer=_warm_worker_initialize,
            )
            self._worker_versions.clear()
        return self._executor

    def _teardown_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._worker_versions.clear()

    def _drop_install_cache(self) -> None:
        self._install_bytes = None
        if self._shm_handle is not None:
            self._shm_handle.unlink()
            self._shm_handle = None

    # ------------------------------------------------------------------- base
    def _ensure_base(self, snapshot: BaseSnapshot, signatures) -> None:
        if not snapshot.covers(signatures):  # pragma: no cover - defensive
            raise ValueError(
                "snapshot provider returned a snapshot that does not cover "
                f"the round's join signatures {tuple(signatures)}"
            )
        if snapshot is not self._snapshot:
            # Structurally new base (new database, uncovered signature, or
            # joins rebuilt after an in-place mutation the host did not
            # publish as a delta): bump the version and let workers pull a
            # full install lazily. The pool itself stays up.
            self._version += 1
            self._snapshot = snapshot
            self._ops.clear()
            self._drop_install_cache()
            _set_fork_seed(self._version, snapshot)

    def advance_base(self, delta) -> None:
        """Publish an in-place base advance as a delta (O(|Δ|) to sync).

        Contract: the caller has already advanced the live base this backend
        was seeded with — database, snapshot and driver-side join cache — via
        :meth:`BaseSnapshot.advance` (see :func:`advance_base_in_place` for
        the full dance). Workers replay only the delta; a worker that missed
        too many ops falls back to a full install via need-sync.
        """
        with self._lock:
            if self._snapshot is None:
                raise RuntimeError("advance_base requires an installed base")
            payload = pickle.dumps(delta, protocol=pickle.HIGHEST_PROTOCOL)
            self._version += 1
            self._ops.append((self._version, payload))
            del self._ops[:-_OPS_HISTORY]
            self._drop_install_cache()
            seed = _FORK_SEED
            if seed is not None and seed.snapshot is self._snapshot:
                seed.version = self._version
            BACKEND_STATS.bytes_shipped += len(payload)
            with get_tracer().span(
                "backend.advance", backend=self.name, delta_bytes=len(payload)
            ):
                pass

    def _install_payload(self) -> _Install:
        snapshot = self._snapshot
        assert snapshot is not None
        if self.use_shared_memory:
            if self._shm_handle is None:
                self._shm_handle = snapshot.to_shared_memory()
                self.last_snapshot_bytes = self._shm_handle.total_bytes
                manifest_bytes = len(
                    pickle.dumps(self._shm_handle.manifest, protocol=pickle.HIGHEST_PROTOCOL)
                )
                # Only the manifest crosses the pipe; the buffers are mapped.
                BACKEND_STATS.bytes_shipped += manifest_bytes
            return _Install(
                version=self._version,
                snapshot_bytes=None,
                shm_manifest=self._shm_handle.manifest,
            )
        if self._install_bytes is None:
            self._install_bytes = snapshot.to_bytes()
            self.last_snapshot_bytes = len(self._install_bytes)
        BACKEND_STATS.bytes_shipped += len(self._install_bytes)
        return _Install(
            version=self._version,
            snapshot_bytes=self._install_bytes,
            shm_manifest=None,
        )

    def _sync_ops(self) -> _SyncOps | None:
        if not self._ops:
            return None
        versions = self._worker_versions
        if len(versions) >= self.workers and min(versions.values()) >= self._version:
            return None  # every known worker already caught up
        return _SyncOps(ops=tuple(self._ops))

    # ---------------------------------------------------------------- context
    def _body_for(self, context: RoundContext) -> tuple[str, bytes | None]:
        digest, payload = context_body_payload(context)
        self._current_body = (digest, payload)
        if digest in self._shipped_bodies:
            BACKEND_STATS.context_skips += 1
            return digest, None
        self._shipped_bodies.add(digest)
        return digest, payload

    # --------------------------------------------------------------- dispatch
    def _note_reply(self, reply) -> None:
        self._worker_versions[reply.pid] = reply.version
        if reply.counter_deltas:
            REGISTRY.merge_counter_deltas(reply.counter_deltas)

    def _account_task(self, task) -> None:
        if isinstance(task, _RunTask):
            BACKEND_STATS.units_dispatched += 1
        if task.body is not None:
            BACKEND_STATS.bytes_shipped += len(task.body)

    def _resolve(self, executor: ProcessPoolExecutor, tasks: list) -> list:
        """Submit tasks and drive the need-sync / need-context resubmit loop."""
        for task in tasks:
            self._account_task(task)
        pending = {index: executor.submit(_warm_call, task) for index, task in enumerate(tasks)}
        tasks = list(tasks)
        tries = [0] * len(tasks)
        replies: list = [None] * len(tasks)
        while pending:
            for index in sorted(pending):
                reply = pending.pop(index).result()
                self._note_reply(reply)
                if isinstance(reply, _NeedSync):
                    BACKEND_STATS.worker_resyncs += 1
                    tries[index] += 1
                    if tries[index] > _SYNC_RETRIES:
                        raise RuntimeError(
                            "warm worker failed to synchronize after repeated installs"
                        )
                    tasks[index] = replace(tasks[index], sync=self._install_payload())
                    pending[index] = executor.submit(_warm_call, tasks[index])
                elif isinstance(reply, _NeedContext):
                    BACKEND_STATS.context_resends += 1
                    tries[index] += 1
                    if tries[index] > _SYNC_RETRIES:  # pragma: no cover - defensive
                        raise RuntimeError("warm worker failed to receive the round context")
                    current = self._current_body
                    if current is None or current[0] != reply.body_hash:  # pragma: no cover
                        raise RuntimeError("worker requested an unknown round body")
                    BACKEND_STATS.bytes_shipped += len(current[1])
                    tasks[index] = replace(tasks[index], body=current[1])
                    pending[index] = executor.submit(_warm_call, tasks[index])
                else:
                    replies[index] = reply
        return replies

    # -------------------------------------------------------------- run units
    def _run_units_stop_first(
        self,
        executor: ProcessPoolExecutor,
        token: str,
        body_hash: str,
        body: bytes | None,
        attempts: Sequence[Attempt],
    ) -> tuple[list[AttemptOutcome], RemoteWinner | None]:
        outcomes_by_unit: dict[int, tuple[AttemptOutcome, ...]] = {}
        winners: dict[int, RemoteWinner] = {}

        def run_units(units: list[WorkUnit]) -> None:
            tasks = [
                _RunTask(
                    version=self._version,
                    token=token,
                    body_hash=body_hash,
                    body=body,
                    unit=unit,
                    stop_at_first=True,
                    sync=self._sync_ops(),
                )
                for unit in units
            ]
            for unit, reply in zip(units, self._resolve(executor, tasks)):
                self.cost_model.observe(len(reply.outcomes), reply.elapsed)
                outcomes_by_unit[unit.index] = reply.outcomes
                if reply.winner is not None:
                    winners[unit.index] = reply.winner

        # Wave 1: the Algorithm-4 subset attempt alone — the expected winner.
        # Matching the serial backend's work exactly here means a typical
        # round performs zero speculative evaluations.
        run_units([WorkUnit(index=0, start=0, attempts=(tuple(attempts[0]),))])
        if not winners and len(attempts) > 1:
            rest = tuple(attempts[1:])
            units = [
                WorkUnit(index=unit.index + 1, start=unit.start + 1, attempts=unit.attempts)
                for unit in shard_attempts(rest, self.cost_model.unit_count(len(rest), self.workers))
            ]
            run_units(units)
        merged: list[AttemptOutcome] = []
        for index in sorted(outcomes_by_unit):
            merged.extend(outcomes_by_unit[index])
        winning = next((o for o in merged if o.applied and o.distinguishes), None)
        payload: RemoteWinner | None = None
        if winning is not None:
            for index in sorted(winners):
                if winners[index].attempt_index == winning.attempt_index:
                    payload = winners[index]
                    break
        return merged, payload

    # ------------------------------------------------------------- run a round
    def run_round(self, request: RoundRequest) -> RemoteRound:
        """Plan and search one round entirely on the warm pool.

        Ships the content-hashed round body (bytes only if unseen), receives
        the prologue summary + attempt specs (a plan-cache hit skips the
        prologue computation entirely), then dispatches cost-model-sized work
        units and returns merged outcomes plus the winner's finalize payload.
        """
        with self._lock:
            try:
                return self._run_round_locked(request)
            except BrokenProcessPool:
                BACKEND_STATS.pool_rebuilds += 1
                self._teardown_executor()
                # Deterministic round: the rebuilt pool (re-seeded from the
                # current fork seed, or need-sync installs) reproduces the
                # identical result.
                return self._run_round_locked(request)

    def _run_round_locked(self, request: RoundRequest) -> RemoteRound:
        tracer = get_tracer()
        with tracer.span("backend.broadcast", backend=self.name):
            self._ensure_base(
                request.snapshot_provider(), required_signatures(request.context)
            )
            executor = self._ensure_executor()
        token = request.context.token
        body_hash, body = self._body_for(request.context)
        BACKEND_STATS.rounds_planned += 1
        with tracer.span("backend.plan", backend=self.name) as plan_span:
            plan_reply: _PlanReply = self._resolve(
                executor,
                [
                    _PlanTask(
                        version=self._version,
                        token=token,
                        body_hash=body_hash,
                        body=body,
                        sync=self._sync_ops(),
                    )
                ],
            )[0]
            if tracer.enabled:
                plan_span.set(cache_hit=plan_reply.cache_hit)
        if plan_reply.error is not None:
            raise DatabaseGenerationError(plan_reply.error)
        outcomes, winner = self._run_units_stop_first(
            executor, token, body_hash, body, plan_reply.attempts
        )
        with tracer.span("backend.merge", backend=self.name):
            plan = RemotePlan(
                cache_hit=plan_reply.cache_hit,
                skyline_pair_count=plan_reply.skyline_pair_count,
                chosen_pairs=plan_reply.chosen_pairs,
                chosen_cost=plan_reply.chosen_cost,
                attempts=plan_reply.attempts,
                skyline_seconds=plan_reply.skyline_seconds,
                selection_seconds=plan_reply.selection_seconds,
            )
        return RemoteRound(plan=plan, outcomes=outcomes, winner=winner)

    # ------------------------------------------------- classic attempt interface
    def run_attempts(
        self, setup: RoundSetup, attempts: Sequence[Attempt], *, stop_at_first: bool
    ) -> list[AttemptOutcome]:
        if not attempts:
            return []
        with self._lock:
            try:
                return self._run_attempts_locked(setup, attempts, stop_at_first=stop_at_first)
            except BrokenProcessPool:
                BACKEND_STATS.pool_rebuilds += 1
                self._teardown_executor()
                return self._run_attempts_locked(setup, attempts, stop_at_first=stop_at_first)

    def _run_attempts_locked(
        self, setup: RoundSetup, attempts: Sequence[Attempt], *, stop_at_first: bool
    ) -> list[AttemptOutcome]:
        tracer = get_tracer()
        with tracer.span("backend.broadcast", backend=self.name):
            self._ensure_base(
                setup.snapshot_provider(), required_signatures(setup.context)
            )
            executor = self._ensure_executor()
        token = setup.context.token
        body_hash, body = self._body_for(setup.context)
        if stop_at_first:
            merged, _ = self._run_units_stop_first(
                executor, token, body_hash, body, tuple(attempts)
            )
            return merged
        units = shard_attempts(
            attempts, self.cost_model.unit_count(len(attempts), self.workers)
        )
        tasks = [
            _RunTask(
                version=self._version,
                token=token,
                body_hash=body_hash,
                body=body,
                unit=unit,
                stop_at_first=False,
                sync=self._sync_ops(),
            )
            for unit in units
        ]
        replies = self._resolve(executor, tasks)
        with tracer.span("backend.merge", backend=self.name):
            merged: list[AttemptOutcome] = []
            for unit, reply in zip(units, replies):
                self.cost_model.observe(len(reply.outcomes), reply.elapsed)
                merged.extend(reply.outcomes)
        return merged

    # ---------------------------------------------------------------- plumbing
    def reset_worker_stats(self) -> None:
        """Zero the resident workers' registries (joined to reset_all_stats).

        Best-effort by design: a reset that cannot reach a worker (pool being
        torn down, crashed child) must never raise — the caller is a bench
        harness zeroing counters between groups.
        """
        with self._lock:
            executor = self._executor
            if executor is None:
                return
            try:
                expected: set[int] = set(getattr(executor, "_processes", None) or ())
            except Exception:  # pragma: no cover - implementation detail probe
                expected = set()
            seen: set[int] = set()
            for _ in range(10):
                try:
                    futures = [executor.submit(_warm_reset_counters) for _ in range(self.workers)]
                    for future in futures:
                        seen.add(future.result(timeout=60))
                except Exception:  # pragma: no cover - defensive: reset must not raise
                    return
                if not expected or expected <= seen:
                    return

    def release_base(self, database) -> None:
        """Forget the installed base if it is *database* (service pair eviction).

        The next round installs fresh; resident workers upgrade lazily via
        need-sync. Called by hosts that evict a shared base (e.g. the session
        service pruning a workload pair) so the backend never pins a dead
        database through its snapshot reference.
        """
        with self._lock:
            if self._snapshot is not None and self._snapshot.database is database:
                self._snapshot = None
                self._ops.clear()
                self._drop_install_cache()

    def worker_pids(self) -> tuple[int, ...]:
        """Live child process ids (fault-injection tests kill one of these)."""
        with self._lock:
            if self._executor is None:
                return ()
            processes = getattr(self._executor, "_processes", None) or {}
            return tuple(processes)

    def close(self) -> None:
        """Shut the pool down and release shared memory; stays reusable."""
        with self._lock:
            self._teardown_executor()
            self._snapshot = None
            self._ops.clear()
            self._drop_install_cache()
            self._shipped_bodies.clear()
            self._current_body = None


def advance_base_in_place(
    snapshot: BaseSnapshot,
    delta,
    *,
    join_cache: JoinCache | None = None,
    backend: ExecutionBackend | None = None,
) -> None:
    """Advance a live base everywhere it is cached, shipping only the delta.

    The one dance base-evolving hosts need: advance the snapshot (joins
    patched incrementally, database mutated in place), re-adopt the advanced
    joins into the driver's identity-keyed *join_cache* (so a
    :class:`~repro.relational.evaluator.SharedSnapshotCache` holding this
    snapshot stays *current* and no re-capture/re-broadcast is triggered),
    and publish the delta to the warm *backend* so resident workers advance
    their replicas in O(|Δ|).
    """
    snapshot.advance(delta)
    if join_cache is not None:
        join_cache.invalidate(snapshot.database)
        for signature, joined in snapshot.joins.items():
            join_cache.adopt(snapshot.database, signature, joined)
    if backend is not None and hasattr(backend, "advance_base"):
        backend.advance_base(delta)
