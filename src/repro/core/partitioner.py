"""Partition candidate queries by their results on a (modified) database.

At each QFE iteration the surviving candidates ``QC'`` are partitioned into
result-equivalence classes on the newly generated database ``D'``: two
queries land in the same class exactly when they produce the same result on
``D'`` (Section 2). This module computes that partition by exact *batch*
evaluation: all candidates sharing a join schema are evaluated in one columnar
pass over the cached join (:meth:`~repro.relational.evaluator.JoinCache.evaluate_batch`),
with term masks, result materialization and fingerprints shared between
candidates. The per-class results the Result Feedback module presents come
straight from the batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.relational.database import Database
from repro.relational.evaluator import JoinCache
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation

__all__ = [
    "QueryGroup",
    "QueryPartition",
    "partition_queries",
    "partition_from_batch",
    "partition_signature",
]


def partition_signature(fingerprints: Sequence[object]) -> tuple[int, ...]:
    """Canonical group ids induced by per-query result fingerprints.

    Queries with equal fingerprints share a group id; ids are assigned by
    first occurrence in query order, so the signature is a pure function of
    the fingerprint sequence — two processes that evaluate the same candidate
    modification produce the identical signature, which is what lets the
    parallel round planner compare and merge worker results deterministically
    without shipping the materialized result relations back.
    """
    ids: dict[object, int] = {}
    return tuple(ids.setdefault(fingerprint, len(ids)) for fingerprint in fingerprints)


@dataclass(frozen=True)
class QueryGroup:
    """One result-equivalence class: the queries and their common result."""

    query_indexes: tuple[int, ...]
    queries: tuple[SPJQuery, ...]
    result: Relation

    def __len__(self) -> int:
        return len(self.queries)


@dataclass(frozen=True)
class QueryPartition:
    """The full partition of a candidate set induced by one database instance."""

    groups: tuple[QueryGroup, ...]

    @property
    def group_count(self) -> int:
        """The number of distinct results (the ``k`` shown to the user)."""
        return len(self.groups)

    @property
    def group_sizes(self) -> tuple[int, ...]:
        """Sizes of the groups, largest first."""
        return tuple(sorted((len(group) for group in self.groups), reverse=True))

    @property
    def distinguishes(self) -> bool:
        """Whether the database tells at least two candidates apart."""
        return self.group_count > 1

    def largest_group(self) -> QueryGroup:
        """The group with the most queries (worst-case user feedback picks this)."""
        return max(self.groups, key=lambda group: (len(group), -self.groups.index(group)))

    def group_containing(self, query: SPJQuery) -> QueryGroup | None:
        """The group containing *query* (by query equality), if any."""
        for group in self.groups:
            if any(candidate == query for candidate in group.queries):
                return group
        return None


def partition_queries(
    queries: Sequence[SPJQuery],
    database: Database,
    *,
    set_semantics: bool = False,
    result_name: str = "Result",
    join_cache: JoinCache | None = None,
) -> QueryPartition:
    """Group *queries* by their (bag or set) results on *database*.

    All candidates are evaluated in one batch per join schema: the columnar
    engine evaluates each distinct selection term once per join and
    fingerprints each distinct result once, instead of paying per candidate.
    """
    cache = join_cache or JoinCache()
    batch = cache.evaluate_batch(
        queries, database, set_semantics=set_semantics, name=result_name
    )
    return partition_from_batch(queries, batch)


def partition_from_batch(queries: Sequence[SPJQuery], batch) -> QueryPartition:
    """Group *queries* by the fingerprints of an existing batch evaluation.

    Exposed so a caller that already evaluated the batch (e.g. the round
    planner scoring the winning attempt) can build the partition without
    re-evaluating; :func:`partition_queries` is this plus the evaluation.
    """
    signature = partition_signature(batch.fingerprints)
    buckets: dict[int, list[int]] = {}
    results: dict[int, Relation] = {}
    for index, group_id in enumerate(signature):
        if group_id not in buckets:
            buckets[group_id] = []
            results[group_id] = batch.results[index]
        buckets[group_id].append(index)
    groups = []
    for group_id, indexes in buckets.items():
        groups.append(
            QueryGroup(
                query_indexes=tuple(indexes),
                queries=tuple(queries[i] for i in indexes),
                result=results[group_id],
            )
        )
    ordered = tuple(sorted(groups, key=lambda group: (-len(group), group.query_indexes)))
    return QueryPartition(ordered)
