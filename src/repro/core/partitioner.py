"""Partition candidate queries by their results on a (modified) database.

At each QFE iteration the surviving candidates ``QC'`` are partitioned into
result-equivalence classes on the newly generated database ``D'``: two
queries land in the same class exactly when they produce the same result on
``D'`` (Section 2). This module computes that partition by exact *batch*
evaluation: all candidates sharing a join schema are evaluated in one columnar
pass over the cached join (:meth:`~repro.relational.evaluator.JoinCache.evaluate_batch`),
with term masks, result materialization and fingerprints shared between
candidates. The per-class results the Result Feedback module presents come
straight from the batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.relational.database import Database
from repro.relational.evaluator import JoinCache
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation

__all__ = ["QueryGroup", "QueryPartition", "partition_queries"]


@dataclass(frozen=True)
class QueryGroup:
    """One result-equivalence class: the queries and their common result."""

    query_indexes: tuple[int, ...]
    queries: tuple[SPJQuery, ...]
    result: Relation

    def __len__(self) -> int:
        return len(self.queries)


@dataclass(frozen=True)
class QueryPartition:
    """The full partition of a candidate set induced by one database instance."""

    groups: tuple[QueryGroup, ...]

    @property
    def group_count(self) -> int:
        """The number of distinct results (the ``k`` shown to the user)."""
        return len(self.groups)

    @property
    def group_sizes(self) -> tuple[int, ...]:
        """Sizes of the groups, largest first."""
        return tuple(sorted((len(group) for group in self.groups), reverse=True))

    @property
    def distinguishes(self) -> bool:
        """Whether the database tells at least two candidates apart."""
        return self.group_count > 1

    def largest_group(self) -> QueryGroup:
        """The group with the most queries (worst-case user feedback picks this)."""
        return max(self.groups, key=lambda group: (len(group), -self.groups.index(group)))

    def group_containing(self, query: SPJQuery) -> QueryGroup | None:
        """The group containing *query* (by query equality), if any."""
        for group in self.groups:
            if any(candidate == query for candidate in group.queries):
                return group
        return None


def partition_queries(
    queries: Sequence[SPJQuery],
    database: Database,
    *,
    set_semantics: bool = False,
    result_name: str = "Result",
    join_cache: JoinCache | None = None,
) -> QueryPartition:
    """Group *queries* by their (bag or set) results on *database*.

    All candidates are evaluated in one batch per join schema: the columnar
    engine evaluates each distinct selection term once per join and
    fingerprints each distinct result once, instead of paying per candidate.
    """
    cache = join_cache or JoinCache()
    batch = cache.evaluate_batch(
        queries, database, set_semantics=set_semantics, name=result_name
    )
    buckets: dict[object, list[int]] = {}
    results: dict[object, Relation] = {}
    for index in range(len(queries)):
        fingerprint = batch.fingerprints[index]
        if fingerprint not in buckets:
            buckets[fingerprint] = []
            results[fingerprint] = batch.results[index]
        buckets[fingerprint].append(index)
    groups = []
    for fingerprint, indexes in buckets.items():
        groups.append(
            QueryGroup(
                query_indexes=tuple(indexes),
                queries=tuple(queries[i] for i in indexes),
                result=results[fingerprint],
            )
        )
    ordered = tuple(sorted(groups, key=lambda group: (-len(group), group.query_indexes)))
    return QueryPartition(ordered)
