"""QFE core: the paper's primary contribution.

Tuple classes (Section 5.1), the user-effort cost model (Section 3), skyline
enumeration of candidate modifications (Algorithm 3), subset selection
(Algorithm 4), materialization into valid modified databases, result-feedback
presentation and the end-to-end interaction loop (Algorithm 1).
"""

from repro.core.alternative_cost import max_partitions_score
from repro.core.config import IterationEstimator, QFEConfig
from repro.core.cost_model import (
    CostBreakdown,
    balance_score,
    cost_of_effect,
    estimate_iterations,
    estimate_iterations_naive,
    estimate_iterations_refined,
)
from repro.core.database_generator import DatabaseGenerationResult, DatabaseGenerator
from repro.core.execution_backend import (
    AttemptOutcome,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    create_backend,
)
from repro.core.extensions import GroupedSessionResult, group_by_join_schema, run_grouped_session
from repro.core.feedback import (
    NONE_OF_THE_ABOVE,
    CallbackSelector,
    FeedbackRound,
    OracleSelector,
    ResultOption,
    ResultSelector,
    ScriptedSelector,
    WorstCaseSelector,
    build_feedback_round,
)
from repro.core.materialize import AppliedModification, MaterializationResult, materialize_pairs
from repro.core.modification import ClassPair, PairSetEffect, simulate_pair_set
from repro.core.partitioner import QueryGroup, QueryPartition, partition_queries, partition_signature
from repro.core.round_planner import RoundPlan, RoundPlanner
from repro.core.session import (
    IterationRecord,
    PendingRound,
    QFESession,
    RoundStats,
    SessionResult,
    StepResult,
)
from repro.core.skyline import SkylineResult, skyline_stc_dtc_pairs
from repro.core.timing import Stopwatch, monotonic_seconds
from repro.core.subset_selection import SubsetSelectionResult, pick_stc_dtc_subset
from repro.core.tuple_class import DomainPartition, DomainSubset, TupleClass, TupleClassSpace

__all__ = [
    "QFEConfig",
    "IterationEstimator",
    "QFESession",
    "SessionResult",
    "IterationRecord",
    "PendingRound",
    "RoundStats",
    "StepResult",
    "DatabaseGenerator",
    "DatabaseGenerationResult",
    "DomainSubset",
    "DomainPartition",
    "TupleClass",
    "TupleClassSpace",
    "ClassPair",
    "PairSetEffect",
    "simulate_pair_set",
    "CostBreakdown",
    "balance_score",
    "cost_of_effect",
    "estimate_iterations",
    "estimate_iterations_naive",
    "estimate_iterations_refined",
    "skyline_stc_dtc_pairs",
    "SkylineResult",
    "pick_stc_dtc_subset",
    "SubsetSelectionResult",
    "materialize_pairs",
    "MaterializationResult",
    "AppliedModification",
    "partition_queries",
    "partition_signature",
    "QueryPartition",
    "QueryGroup",
    "RoundPlanner",
    "RoundPlan",
    "AttemptOutcome",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "create_backend",
    "Stopwatch",
    "monotonic_seconds",
    "build_feedback_round",
    "FeedbackRound",
    "ResultOption",
    "ResultSelector",
    "WorstCaseSelector",
    "OracleSelector",
    "CallbackSelector",
    "ScriptedSelector",
    "NONE_OF_THE_ABOVE",
    "max_partitions_score",
    "group_by_join_schema",
    "run_grouped_session",
    "GroupedSessionResult",
]
