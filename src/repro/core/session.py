"""Algorithm 1: the end-to-end QFE interaction loop.

:class:`QFESession` drives the whole approach for one example pair ``(D, R)``:

1. obtain candidate queries ``QC`` (either supplied by the caller or produced
   by the :class:`~repro.qbo.generator.QueryGenerator`);
2. repeat: generate a distinguishing modified database ``D'`` (Algorithm 2),
   partition the surviving candidates by their results on ``D'``, present the
   deltas, obtain the user's choice, and keep only the chosen subset;
3. stop when a single candidate remains (or when the remaining candidates can
   no longer be distinguished, which the session reports explicitly).

Every iteration is recorded as an :class:`IterationRecord` carrying exactly
the quantities the paper's Table 1 reports (candidate count, subset count,
skyline pair count, execution time, dbCost, resultCost, avgResultCost) plus
the finer-grained timings behind Tables 4 and 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.config import QFEConfig
from repro.core.database_generator import DatabaseGenerationResult, DatabaseGenerator
from repro.core.timing import Stopwatch
from repro.core.feedback import NONE_OF_THE_ABOVE, FeedbackRound, ResultSelector, build_feedback_round
from repro.core.partitioner import QueryPartition
from repro.core.subset_selection import ScoreFunction
from repro.exceptions import DatabaseGenerationError, FeedbackError, QFESessionError
from repro.qbo.config import QBOConfig
from repro.qbo.generator import QueryGenerator
from repro.qbo.mutation import expand_candidate_set
from repro.relational.database import Database
from repro.relational.evaluator import JoinCache
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation

__all__ = ["IterationRecord", "SessionResult", "QFESession"]


@dataclass(frozen=True)
class IterationRecord:
    """Per-iteration statistics (one row of the paper's Table 1)."""

    iteration: int
    candidate_count: int
    subset_count: int
    skyline_pair_count: int
    execution_seconds: float
    skyline_seconds: float
    selection_seconds: float
    materialize_seconds: float
    db_cost: float
    result_cost: float
    modified_attribute_count: int
    modified_relation_count: int
    modified_tuple_count: int
    chosen_option: int
    remaining_candidates: int

    @property
    def avg_result_cost(self) -> float:
        """``resultCost / k`` — the per-result modification cost shown in Table 1."""
        if self.subset_count == 0:
            return 0.0
        return self.result_cost / self.subset_count

    @property
    def modification_cost(self) -> float:
        """Database plus result modification cost of the round."""
        return self.db_cost + self.result_cost


@dataclass
class SessionResult:
    """The outcome of a full QFE session."""

    identified_query: SPJQuery | None
    remaining_queries: tuple[SPJQuery, ...]
    iterations: list[IterationRecord] = field(default_factory=list)
    converged: bool = False
    exhausted: bool = False
    query_generation_seconds: float = 0.0
    initial_candidate_count: int = 0

    @property
    def iteration_count(self) -> int:
        """Number of feedback rounds the user went through."""
        return len(self.iterations)

    @property
    def total_seconds(self) -> float:
        """Query generation plus all per-iteration execution time.

        Every summand is measured on the monotonic clock
        (:mod:`repro.core.timing`), never the wall clock — wall-clock skew
        would corrupt the total once rounds fan out across worker processes.
        """
        return self.query_generation_seconds + sum(r.execution_seconds for r in self.iterations)

    @property
    def total_modification_cost(self) -> float:
        """Sum of database and result modification costs over all rounds."""
        return sum(record.modification_cost for record in self.iterations)

    @property
    def total_db_cost(self) -> float:
        """Sum of dbCost over all rounds."""
        return sum(record.db_cost for record in self.iterations)

    @property
    def total_result_cost(self) -> float:
        """Sum of resultCost over all rounds."""
        return sum(record.result_cost for record in self.iterations)


class QFESession:
    """Drive Algorithm 1 for one example database–result pair."""

    def __init__(
        self,
        database: Database,
        result: Relation,
        *,
        candidates: Sequence[SPJQuery] | None = None,
        config: QFEConfig | None = None,
        qbo_config: QBOConfig | None = None,
        score: ScoreFunction | None = None,
        workers: int | None = None,
    ) -> None:
        self.database = database
        self.result = result
        self.config = config or QFEConfig()
        self.qbo_config = qbo_config or QBOConfig()
        self._provided_candidates = list(candidates) if candidates is not None else None
        # One join cache for the whole session: the original database's
        # foreign-key join (and its columnar term masks) is built once and
        # reused by every iteration's Database Generator run and by candidate
        # replenishment. Each iteration's modified database D' is evaluated
        # through a *delta-derived* entry patched out of that base entry
        # (``JoinCache.derive``), so no iteration after the first pays a cold
        # join or term-mask build. The session never mutates ``self.database``.
        self.join_cache = JoinCache()
        # How many processes the round planner's candidate-modification
        # search fans out over: the explicit argument wins, then the config
        # field; 0/1 select the serial in-process backend. The worker pool
        # (when any) is seeded once with a snapshot of ``self.database`` and
        # released at the end of each run().
        self.workers = self.config.workers if workers is None else workers
        self._generator = DatabaseGenerator(
            self.config, score=score, join_cache=self.join_cache, workers=self.workers
        )
        self.last_rounds: list[FeedbackRound] = []

    # -------------------------------------------------------------- candidates
    def _initial_candidates(self, session: SessionResult) -> list[SPJQuery]:
        if self._provided_candidates is not None:
            session.query_generation_seconds = 0.0
            return list(self._provided_candidates)
        watch = Stopwatch()
        generator = QueryGenerator(self.qbo_config)
        candidates = generator.generate(
            self.database, self.result, set_semantics=self.config.set_semantics
        )
        session.query_generation_seconds = watch.elapsed()
        return candidates

    def _replenish_candidates(self, current: list[SPJQuery]) -> list[SPJQuery]:
        """Section 2's escape hatch: generate additional candidates on demand."""
        expanded = expand_candidate_set(
            self.database,
            self.result,
            current,
            target_size=len(current) * 2 + 5,
            set_semantics=self.config.set_semantics,
            join_cache=self.join_cache,
        )
        return expanded

    # --------------------------------------------------------------------- run
    def run(self, selector: ResultSelector) -> SessionResult:
        """Execute the full interaction loop with the given result selector."""
        session = SessionResult(identified_query=None, remaining_queries=())
        candidates = self._initial_candidates(session)
        if not candidates:
            raise QFESessionError("no candidate queries available for the example pair")
        session.initial_candidate_count = len(candidates)
        self.last_rounds = []

        iteration = 0
        try:
            while len(candidates) > 1 and iteration < self.config.max_iterations:
                iteration += 1
                iteration_watch = Stopwatch()
                try:
                    generation = self._generator.generate(self.database, self.result, candidates)
                except DatabaseGenerationError:
                    # The remaining candidates cannot be distinguished by any
                    # modification within budget; report them all.
                    session.exhausted = True
                    break

                round_ = build_feedback_round(
                    iteration, self.database, self.result, generation.database, generation.partition
                )
                self.last_rounds.append(round_)
                # The round's presentation data (results, deltas) is fully
                # materialized; release D' from the join cache so a session that
                # keeps every round alive does not also pin one derived join per
                # iteration. The base entry stays warm for the next round.
                self.join_cache.invalidate(generation.database)
                execution_seconds = iteration_watch.elapsed()
                choice = selector.select(round_, generation.partition)

                if choice == NONE_OF_THE_ABOVE:
                    replenished = self._replenish_candidates(candidates)
                    if len(replenished) == len(candidates):
                        raise FeedbackError(
                            "user rejected every presented result and no further candidate "
                            "queries could be generated"
                        )
                    candidates = replenished
                    continue
                if not 0 <= choice < generation.partition.group_count:
                    raise FeedbackError(f"selector returned invalid option index {choice}")

                chosen_group = generation.partition.groups[choice]
                record = self._record_iteration(
                    iteration, candidates, generation, choice, chosen_group.queries, execution_seconds
                )
                session.iterations.append(record)
                candidates = list(chosen_group.queries)
        finally:
            # Release the worker pool (if any); the serial backend is a no-op
            # and a later run() transparently re-creates the pool.
            self._generator.close()

        session.remaining_queries = tuple(candidates)
        if len(candidates) == 1:
            session.identified_query = candidates[0]
            session.converged = True
        return session

    # ------------------------------------------------------------------ stats
    def _record_iteration(
        self,
        iteration: int,
        candidates: Sequence[SPJQuery],
        generation: DatabaseGenerationResult,
        choice: int,
        chosen_queries: Sequence[SPJQuery],
        execution_seconds: float,
    ) -> IterationRecord:
        round_ = self.last_rounds[-1]
        db_cost = round_.database_delta.cost + self.config.beta * round_.database_delta.modified_relation_count
        result_cost = float(sum(option.delta.cost for option in round_.options))
        return IterationRecord(
            iteration=iteration,
            candidate_count=len(candidates),
            subset_count=generation.partition.group_count,
            skyline_pair_count=generation.skyline.pair_count,
            execution_seconds=execution_seconds,
            skyline_seconds=generation.skyline_seconds,
            selection_seconds=generation.selection_seconds,
            materialize_seconds=generation.materialize_seconds,
            db_cost=float(db_cost),
            result_cost=result_cost,
            modified_attribute_count=generation.materialization.modification_count,
            modified_relation_count=generation.materialization.modified_relation_count,
            modified_tuple_count=generation.materialization.modified_tuple_count,
            chosen_option=choice,
            remaining_candidates=len(chosen_queries),
        )
