"""Algorithm 1: the end-to-end QFE interaction loop, as a resumable state machine.

:class:`QFESession` drives the whole approach for one example pair ``(D, R)``.
The paper's user study shows human response time dominating per-iteration wall
clock (92.4 % on average), so the session core is *inverted*: instead of a
blocking ``run(selector)`` loop that pins a process (pool, snapshot and all)
while a user thinks, the session exposes two explicit steps:

* :meth:`QFESession.propose` runs one round of Algorithm 2 — via the
  :class:`~repro.core.round_planner.RoundPlanner` and its execution backend —
  and returns a :class:`PendingRound`: the feedback presentation plus the
  candidate partition, with no selector anywhere in sight. ``None`` means the
  session is finished (converged, exhausted, or out of iterations).
* :meth:`QFESession.submit` applies the user's choice for the pending round
  and returns a :class:`StepResult`, recording the
  :class:`IterationRecord` and shrinking the surviving candidate set (or
  replenishing it on :data:`~repro.core.feedback.NONE_OF_THE_ABOVE`).

Between the two calls the session is *suspended*: its entire interaction
state (config, surviving candidates, transcript, pending round) is exposed by
:meth:`QFESession.capture_state` / :meth:`QFESession.from_state`, which the
service layer's checkpoint serializers (:mod:`repro.service.checkpoint`) use
to persist and resume sessions across processes. The classic blocking
:meth:`QFESession.run` remains as a thin wrapper over propose/submit with
identical semantics and transcripts.

Every iteration is recorded as an :class:`IterationRecord` carrying exactly
the quantities the paper's Table 1 reports (candidate count, subset count,
skyline pair count, execution time, dbCost, resultCost, avgResultCost) plus
the finer-grained timings behind Tables 4 and 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.config import QFEConfig
from repro.core.database_generator import DatabaseGenerationResult, DatabaseGenerator
from repro.core.execution_backend import ExecutionBackend
from repro.core.timing import Stopwatch
from repro.core.feedback import NONE_OF_THE_ABOVE, FeedbackRound, ResultSelector, build_feedback_round
from repro.core.partitioner import QueryPartition
from repro.core.subset_selection import ScoreFunction
from repro.exceptions import DatabaseGenerationError, FeedbackError, QFESessionError
from repro.obs.trace import get_tracer
from repro.qbo.config import QBOConfig
from repro.qbo.generator import QueryGenerator
from repro.qbo.mutation import expand_candidate_set
from repro.relational.database import Database
from repro.relational.evaluator import JoinCache, SharedSnapshotCache
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation

__all__ = [
    "IterationRecord",
    "SessionResult",
    "RoundStats",
    "PendingRound",
    "StepResult",
    "QFESession",
]


@dataclass(frozen=True)
class IterationRecord:
    """Per-iteration statistics (one row of the paper's Table 1)."""

    iteration: int
    candidate_count: int
    subset_count: int
    skyline_pair_count: int
    execution_seconds: float
    skyline_seconds: float
    selection_seconds: float
    materialize_seconds: float
    db_cost: float
    result_cost: float
    modified_attribute_count: int
    modified_relation_count: int
    modified_tuple_count: int
    chosen_option: int
    remaining_candidates: int

    @property
    def avg_result_cost(self) -> float:
        """``resultCost / k`` — the per-result modification cost shown in Table 1."""
        if self.subset_count == 0:
            return 0.0
        return self.result_cost / self.subset_count

    @property
    def modification_cost(self) -> float:
        """Database plus result modification cost of the round."""
        return self.db_cost + self.result_cost


@dataclass
class SessionResult:
    """The outcome of a full QFE session."""

    identified_query: SPJQuery | None
    remaining_queries: tuple[SPJQuery, ...]
    iterations: list[IterationRecord] = field(default_factory=list)
    converged: bool = False
    exhausted: bool = False
    query_generation_seconds: float = 0.0
    initial_candidate_count: int = 0

    @property
    def iteration_count(self) -> int:
        """Number of feedback rounds the user went through."""
        return len(self.iterations)

    @property
    def total_seconds(self) -> float:
        """Query generation plus all per-iteration execution time.

        Every summand is measured on the monotonic clock
        (:mod:`repro.core.timing`), never the wall clock — wall-clock skew
        would corrupt the total once rounds fan out across worker processes.
        """
        return self.query_generation_seconds + sum(r.execution_seconds for r in self.iterations)

    @property
    def total_modification_cost(self) -> float:
        """Sum of database and result modification costs over all rounds."""
        return sum(record.modification_cost for record in self.iterations)

    @property
    def total_db_cost(self) -> float:
        """Sum of dbCost over all rounds."""
        return sum(record.db_cost for record in self.iterations)

    @property
    def total_result_cost(self) -> float:
        """Sum of resultCost over all rounds."""
        return sum(record.result_cost for record in self.iterations)


@dataclass(frozen=True)
class RoundStats:
    """The scalar Database Generator diagnostics of one proposed round.

    Exactly what :class:`IterationRecord` needs beyond the feedback round
    itself — kept as plain numbers (never the heavyweight
    :class:`~repro.core.round_planner.DatabaseGenerationResult`) so a pending
    round checkpoints compactly.
    """

    skyline_pair_count: int
    skyline_seconds: float
    selection_seconds: float
    materialize_seconds: float
    modification_count: int
    modified_relation_count: int
    modified_tuple_count: int

    @classmethod
    def from_generation(cls, generation: DatabaseGenerationResult) -> "RoundStats":
        return cls(
            skyline_pair_count=generation.skyline.pair_count,
            skyline_seconds=generation.skyline_seconds,
            selection_seconds=generation.selection_seconds,
            materialize_seconds=generation.materialize_seconds,
            modification_count=generation.materialization.modification_count,
            modified_relation_count=generation.materialization.modified_relation_count,
            modified_tuple_count=generation.materialization.modified_tuple_count,
        )


@dataclass
class PendingRound:
    """One proposed feedback round awaiting the user's choice.

    Fully self-contained and picklable: the presentation
    (:class:`~repro.core.feedback.FeedbackRound`), the candidate partition
    the choice indexes into, and the scalar diagnostics for the eventual
    :class:`IterationRecord`. A session suspended between
    :meth:`QFESession.propose` and :meth:`QFESession.submit` carries its
    pending round inside its checkpoint, so resuming never re-runs the round
    search.
    """

    iteration: int
    candidate_count: int
    round: FeedbackRound
    partition: QueryPartition
    stats: RoundStats
    execution_seconds: float

    @property
    def option_count(self) -> int:
        """How many distinct results the round offers."""
        return self.round.option_count


@dataclass(frozen=True)
class StepResult:
    """The session's reaction to one submitted choice."""

    status: str  # "chosen" | "replenished" | "converged"
    record: IterationRecord | None
    remaining_candidates: int
    done: bool


class QFESession:
    """Drive Algorithm 1 for one example database–result pair.

    The session is a resumable state machine: :meth:`propose` produces the
    next :class:`PendingRound` (or ``None`` when finished), :meth:`submit`
    applies a choice. :meth:`run` wraps the two into the classic blocking
    loop. :meth:`capture_state`/:meth:`from_state` expose the full
    interaction state for checkpointing.

    Resource ownership: by default the session owns its
    :class:`~repro.relational.evaluator.JoinCache` and execution backend
    (created from ``workers``) and releases both in :meth:`close` — which is
    idempotent, exception-safe, and also invoked by ``__del__`` and the
    context-manager protocol. A service multiplexing many sessions passes
    shared ``backend``/``join_cache``/``snapshot_cache`` instances instead;
    the session then never tears the shared resources down.
    """

    def __init__(
        self,
        database: Database,
        result: Relation,
        *,
        candidates: Sequence[SPJQuery] | None = None,
        config: QFEConfig | None = None,
        qbo_config: QBOConfig | None = None,
        score: ScoreFunction | None = None,
        workers: int | None = None,
        backend: ExecutionBackend | None = None,
        join_cache: JoinCache | None = None,
        snapshot_cache: SharedSnapshotCache | None = None,
    ) -> None:
        self.database = database
        self.result = result
        self.config = config or QFEConfig()
        self.qbo_config = qbo_config or QBOConfig()
        self._provided_candidates = list(candidates) if candidates is not None else None
        # One join cache for the whole session: the original database's
        # foreign-key join (and its columnar term masks) is built once and
        # reused by every iteration's Database Generator run and by candidate
        # replenishment. Each iteration's modified database D' is evaluated
        # through a *delta-derived* entry patched out of that base entry
        # (``JoinCache.derive``), so no iteration after the first pays a cold
        # join or term-mask build. The session never mutates ``self.database``.
        # A shared cache (service mode) extends the same property across
        # sessions over the same base database.
        self._owns_join_cache = join_cache is None
        self.join_cache = join_cache if join_cache is not None else JoinCache()
        # How many processes the round planner's candidate-modification
        # search fans out over: the explicit argument wins, then the config
        # field; 0/1 select the serial in-process backend. An explicitly
        # injected backend (service mode: one pool, many sessions) overrides
        # both and is *not* owned: run()/close() leave it running.
        self.workers = self.config.workers if workers is None else workers
        self._owns_backend = backend is None
        self._generator = DatabaseGenerator(
            self.config,
            score=score,
            join_cache=self.join_cache,
            workers=self.workers,
            backend=backend,
            snapshot_cache=snapshot_cache,
        )
        self.last_rounds: list[FeedbackRound] = []
        self._result = SessionResult(identified_query=None, remaining_queries=())
        self._candidates: list[SPJQuery] | None = None
        self._iteration = 0
        self._pending: PendingRound | None = None
        self._done = False

    # ----------------------------------------------------------------- status
    @property
    def done(self) -> bool:
        """Whether the interaction loop has finished."""
        return self._done

    @property
    def status(self) -> str:
        """``new`` | ``active`` | ``awaiting-choice`` | ``converged`` | ``exhausted`` | ``stalled``."""
        if self._done:
            if self._result.converged:
                return "converged"
            if self._result.exhausted:
                return "exhausted"
            return "stalled"
        if self._pending is not None:
            return "awaiting-choice"
        if self._candidates is None:
            return "new"
        return "active"

    @property
    def outcome(self) -> SessionResult:
        """The session result accumulated so far (final once :attr:`done`)."""
        return self._result

    @property
    def pending_round(self) -> PendingRound | None:
        """The proposed round awaiting a choice, if any."""
        return self._pending

    @property
    def remaining_candidates(self) -> int:
        """Number of surviving candidate queries (0 before the session starts)."""
        return len(self._candidates) if self._candidates is not None else 0

    # -------------------------------------------------------------- candidates
    def _initial_candidates(self, session: SessionResult) -> list[SPJQuery]:
        if self._provided_candidates is not None:
            session.query_generation_seconds = 0.0
            return list(self._provided_candidates)
        watch = Stopwatch()
        generator = QueryGenerator(self.qbo_config)
        candidates = generator.generate(
            self.database, self.result, set_semantics=self.config.set_semantics
        )
        session.query_generation_seconds = watch.elapsed()
        return candidates

    def _replenish_candidates(self, current: list[SPJQuery]) -> list[SPJQuery]:
        """Section 2's escape hatch: generate additional candidates on demand."""
        expanded = expand_candidate_set(
            self.database,
            self.result,
            current,
            target_size=len(current) * 2 + 5,
            set_semantics=self.config.set_semantics,
            join_cache=self.join_cache,
        )
        return expanded

    def _ensure_started(self) -> list[SPJQuery]:
        if self._candidates is None:
            candidates = self._initial_candidates(self._result)
            if not candidates:
                raise QFESessionError("no candidate queries available for the example pair")
            self._result.initial_candidate_count = len(candidates)
            self._candidates = list(candidates)
        return self._candidates

    def _finalize(self) -> SessionResult:
        candidates = self._candidates or []
        self._result.remaining_queries = tuple(candidates)
        if len(candidates) == 1:
            self._result.identified_query = candidates[0]
            self._result.converged = True
        self._done = True
        return self._result

    # ------------------------------------------------------------ state machine
    def propose(self) -> PendingRound | None:
        """Run one round of Algorithm 2 and return the presentation to judge.

        Idempotent while a round is pending (the same :class:`PendingRound`
        comes back until :meth:`submit` consumes it). Returns ``None`` when
        the session is finished — because a single candidate remains, the
        surviving candidates cannot be distinguished (``exhausted``), or the
        iteration budget ran out — at which point :attr:`outcome` is final.
        """
        if self._pending is not None:
            return self._pending
        if self._done:
            return None
        candidates = self._ensure_started()
        if len(candidates) <= 1 or self._iteration >= self.config.max_iterations:
            self._finalize()
            return None

        self._iteration += 1
        watch = Stopwatch()
        tracer = get_tracer()
        with tracer.span(
            "session.propose", iteration=self._iteration, candidates=len(candidates)
        ):
            try:
                generation = self._generator.generate(self.database, self.result, candidates)
            except DatabaseGenerationError:
                # The remaining candidates cannot be distinguished by any
                # modification within budget; report them all.
                self._result.exhausted = True
                self._finalize()
                return None

            with tracer.span("round.present"):
                round_ = build_feedback_round(
                    self._iteration,
                    self.database,
                    self.result,
                    generation.database,
                    generation.partition,
                )
        self.last_rounds.append(round_)
        # The round's presentation data (results, deltas) is fully
        # materialized; release D' from the join cache so a session that
        # keeps every round alive does not also pin one derived join per
        # iteration. The base entry stays warm for the next round.
        self.join_cache.invalidate(generation.database)
        self._pending = PendingRound(
            iteration=self._iteration,
            candidate_count=len(candidates),
            round=round_,
            partition=generation.partition,
            stats=RoundStats.from_generation(generation),
            execution_seconds=watch.elapsed(),
        )
        return self._pending

    def submit(self, choice: int) -> StepResult:
        """Apply the user's choice for the pending round.

        ``choice`` is a 0-based option index, or
        :data:`~repro.core.feedback.NONE_OF_THE_ABOVE` to reject every
        presented result (which replenishes the candidate set and re-plans).
        An out-of-range choice raises :class:`~repro.exceptions.FeedbackError`
        and *keeps the round pending*, so an interactive caller — or a service
        fielding a bad request — can simply retry.
        """
        if self._done:
            raise QFESessionError("the session has already finished")
        pending = self._pending
        if pending is None:
            raise QFESessionError("no pending round: call propose() first")
        candidates = self._candidates or []

        with get_tracer().span(
            "session.submit", iteration=pending.iteration, choice=choice
        ):
            if choice == NONE_OF_THE_ABOVE:
                replenished = self._replenish_candidates(candidates)
                if len(replenished) == len(candidates):
                    raise FeedbackError(
                        "user rejected every presented result and no further candidate "
                        "queries could be generated"
                    )
                self._candidates = replenished
                self._pending = None
                return StepResult(
                    status="replenished",
                    record=None,
                    remaining_candidates=len(replenished),
                    done=False,
                )

            if not 0 <= choice < pending.partition.group_count:
                raise FeedbackError(f"selector returned invalid option index {choice}")

            chosen_group = pending.partition.groups[choice]
            record = self._record_iteration(pending, choice, chosen_group.queries)
            self._result.iterations.append(record)
            self._candidates = list(chosen_group.queries)
            self._pending = None
            if len(self._candidates) == 1:
                self._finalize()
                return StepResult(
                    status="converged", record=record, remaining_candidates=1, done=True
                )
            return StepResult(
                status="chosen",
                record=record,
                remaining_candidates=len(self._candidates),
                done=False,
            )

    def reset(self) -> None:
        """Discard all interaction state; the next round starts from scratch."""
        self._result = SessionResult(identified_query=None, remaining_queries=())
        self._candidates = None
        self._iteration = 0
        self._pending = None
        self._done = False
        self.last_rounds = []

    # --------------------------------------------------------------------- run
    def run(self, selector: ResultSelector) -> SessionResult:
        """Execute the full interaction loop with the given result selector.

        A thin wrapper over :meth:`propose`/:meth:`submit` — transcripts are
        identical to driving the state machine by hand. Always starts from
        the initial candidate set (repeated calls re-run the session), and —
        when the session owns its backend — releases the worker pool on the
        way out exactly as the historical blocking loop did; a later ``run()``
        transparently re-creates it.
        """
        self.reset()
        try:
            while True:
                pending = self.propose()
                if pending is None:
                    break
                choice = selector.select(pending.round, pending.partition)
                self.submit(choice)
        finally:
            # Release the worker pool (if any, and if owned); the serial
            # backend is a no-op and a later run() re-creates the pool.
            if self._owns_backend:
                self._generator.close()
        return self._result

    # ------------------------------------------------------------------ close
    def close(self) -> None:
        """Release the session's pooled resources.

        Idempotent and exception-safe: closes the execution backend (worker
        pool) and clears the join cache, but only the instances this session
        owns — shared service resources are left untouched. Safe to call
        twice, from ``__del__``, and from the context-manager protocol; the
        session itself stays usable (a later round lazily re-creates what it
        needs).
        """
        # getattr-guarded: __del__ may run on a partially constructed session.
        generator = getattr(self, "_generator", None)
        if generator is not None and getattr(self, "_owns_backend", False):
            generator.close()
        join_cache = getattr(self, "join_cache", None)
        if join_cache is not None and getattr(self, "_owns_join_cache", False):
            join_cache.clear()

    def __enter__(self) -> "QFESession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent timing
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------ checkpointing
    def capture_state(self) -> dict:
        """The session's full interaction state as one picklable dict.

        Everything :meth:`from_state` needs to resume the session in another
        process *except* the example pair itself (``database``/``result``)
        and process-local resources (backend, caches, score function), which
        the resuming side re-binds. The returned dict references the live
        objects — serialize it promptly (see
        :mod:`repro.service.checkpoint`).
        """
        return {
            "config": self.config,
            "qbo_config": self.qbo_config,
            "workers": self.workers,
            "provided_candidates": (
                list(self._provided_candidates)
                if self._provided_candidates is not None
                else None
            ),
            "candidates": list(self._candidates) if self._candidates is not None else None,
            "iteration": self._iteration,
            "pending": self._pending,
            "result": self._result,
            "rounds": list(self.last_rounds),
            "done": self._done,
        }

    @classmethod
    def from_state(
        cls,
        database: Database,
        result: Relation,
        state: dict,
        *,
        score: ScoreFunction | None = None,
        workers: int | None = None,
        backend: ExecutionBackend | None = None,
        join_cache: JoinCache | None = None,
        snapshot_cache: SharedSnapshotCache | None = None,
    ) -> "QFESession":
        """Rebuild a session from :meth:`capture_state` output.

        The caller re-binds the example pair and any process-local resources;
        the restored session continues exactly where the captured one stopped
        (pending round included), producing a bit-identical transcript.
        """
        session = cls(
            database,
            result,
            candidates=state["provided_candidates"],
            config=state["config"],
            qbo_config=state["qbo_config"],
            score=score,
            workers=state["workers"] if workers is None else workers,
            backend=backend,
            join_cache=join_cache,
            snapshot_cache=snapshot_cache,
        )
        session._candidates = (
            list(state["candidates"]) if state["candidates"] is not None else None
        )
        session._iteration = state["iteration"]
        session._pending = state["pending"]
        session._result = state["result"]
        session.last_rounds = list(state["rounds"])
        session._done = state["done"]
        return session

    # ------------------------------------------------------------------ stats
    def _record_iteration(
        self,
        pending: PendingRound,
        choice: int,
        chosen_queries: Sequence[SPJQuery],
    ) -> IterationRecord:
        round_ = pending.round
        stats = pending.stats
        db_cost = round_.database_delta.cost + self.config.beta * round_.database_delta.modified_relation_count
        result_cost = float(sum(option.delta.cost for option in round_.options))
        return IterationRecord(
            iteration=pending.iteration,
            candidate_count=pending.candidate_count,
            subset_count=pending.partition.group_count,
            skyline_pair_count=stats.skyline_pair_count,
            execution_seconds=pending.execution_seconds,
            skyline_seconds=stats.skyline_seconds,
            selection_seconds=stats.selection_seconds,
            materialize_seconds=stats.materialize_seconds,
            db_cost=float(db_cost),
            result_cost=result_cost,
            modified_attribute_count=stats.modification_count,
            modified_relation_count=stats.modified_relation_count,
            modified_tuple_count=stats.modified_tuple_count,
            chosen_option=choice,
            remaining_candidates=len(chosen_queries),
        )
