"""Algorithm 3: Skyline-STC-DTC-Pairs.

Enumerate candidate single-tuple modifications — (source tuple class,
destination tuple class) pairs — in order of non-descending minimum edit cost
``i = 1..n`` (number of modified selection attributes). Within each edit cost
the algorithm keeps the pairs whose single-pair balance score matches the best
balance seen so far (the paper's pseudocode keeps a running ``minbalance``
across iterations), which yields a skyline over (balance, minEdit): a pair
with a higher edit cost survives only if it achieves a strictly better
balance than every cheaper pair.

The enumeration is bounded by the wall-clock threshold ``δ``
(``config.delta_seconds``) exactly as in the paper — when the budget is
exhausted the pairs found so far are returned — plus a hard cap on the number
of returned pairs (``config.max_skyline_pairs``) that Table 5 shows is
harmless for partitioning quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from repro.core.config import QFEConfig
from repro.core.modification import ClassPair, PairSetSimulator
from repro.core.tuple_class import TupleClassSpace

__all__ = ["SkylineResult", "skyline_stc_dtc_pairs"]


@dataclass
class SkylineResult:
    """Output of Algorithm 3 plus the diagnostics the cost model and tables need."""

    pairs: list[ClassPair]
    pair_balances: dict[ClassPair, float]
    enumerated_pairs: int
    elapsed_seconds: float
    truncated_by_time: bool
    truncated_by_cap: bool
    most_balanced_binary_x: int | None

    @property
    def pair_count(self) -> int:
        """Number of skyline pairs returned (the |SP| of Tables 1 and 4)."""
        return len(self.pairs)

    def singles_ordered_by_balance(self) -> list[ClassPair]:
        """Skyline pairs in the deterministic fallback order of the round planner.

        Ordered by (single-pair balance, textual representation): the order in
        which single-pair materialization attempts are tried when the chosen
        subset fails to distinguish concretely. The round planner shards this
        exact sequence into work units, so the order also fixes the merge
        order that keeps parallel and serial planning bit-identical.
        """
        return sorted(
            self.pairs,
            key=lambda pair: (self.pair_balances.get(pair, float("inf")), str(pair)),
        )


def skyline_stc_dtc_pairs(
    space: TupleClassSpace,
    config: QFEConfig,
    *,
    result_arity: int,
    simulator: PairSetSimulator | None = None,
) -> SkylineResult:
    """Run Algorithm 3 over the tuple-class space of the current iteration."""
    simulator = simulator or PairSetSimulator(space, result_arity=result_arity)
    started = perf_counter()
    deadline = started + config.delta_seconds
    pairs: list[ClassPair] = []
    balances: dict[ClassPair, float] = {}
    min_balance = float("inf")
    enumerated = 0
    truncated_time = False
    truncated_cap = False
    best_binary_x: int | None = None
    query_count = len(space.queries)

    source_classes = space.source_tuple_classes()
    attribute_count = space.attribute_count

    for modified_slots in range(1, attribute_count + 1):
        level_pairs: list[ClassPair] = []
        for source in source_classes:
            for destination in space.destination_classes(source, modified_slots):
                enumerated += 1
                pair = ClassPair(source, destination)
                effect = simulator.effect([pair])
                balance = effect.balance
                balances[pair] = balance
                # Track the most balanced *binary* partitioning for Lemma 3.1.
                if effect.group_count == 2:
                    smaller = min(effect.group_sizes)
                    if smaller < query_count and (best_binary_x is None or smaller > best_binary_x):
                        best_binary_x = smaller
                if balance < min_balance:
                    level_pairs = [pair]
                    min_balance = balance
                elif balance == min_balance and balance != float("inf"):
                    level_pairs.append(pair)
                if enumerated % 64 == 0 and perf_counter() > deadline:
                    truncated_time = True
                    break
            if truncated_time:
                break
        pairs.extend(level_pairs)
        if len(pairs) >= config.max_skyline_pairs:
            truncated_cap = True
            pairs = pairs[: config.max_skyline_pairs]
            break
        if truncated_time:
            break
        if perf_counter() > deadline:
            truncated_time = True
            break

    elapsed = perf_counter() - started
    return SkylineResult(
        pairs=pairs,
        pair_balances={p: balances[p] for p in pairs},
        enumerated_pairs=enumerated,
        elapsed_seconds=elapsed,
        truncated_by_time=truncated_time,
        truncated_by_cap=truncated_cap,
        most_balanced_binary_x=best_binary_x,
    )
