"""Algorithm 4: Pick-STC-DTC-Subset.

Given the skyline pairs ``SP`` produced by Algorithm 3, select the subset
``S_opt ⊆ SP`` whose simulated Equation (5) cost is minimal, breaking ties by
the lowest balance score. The search grows candidate pair sets one pair at a
time, but a grown set is only kept for the next level when it *strictly
improves* the balance score of the set it extends — the paper's pruning
heuristic that keeps the worst-case ``O(2^|SP|)`` search small in practice
(Section 5.4, Table 4/5).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Sequence

from repro.core.config import QFEConfig
from repro.core.cost_model import CostBreakdown, cost_of_effect
from repro.core.modification import ClassPair, PairSetEffect, PairSetSimulator
from repro.core.tuple_class import TupleClassSpace

__all__ = ["SubsetSelectionResult", "pick_stc_dtc_subset"]

# A scoring function maps the simulated effect and its cost breakdown to a
# comparable key; the subset with the smallest key wins. The default is the
# paper's cost model; the user-study baseline plugs in an alternative.
ScoreFunction = Callable[[PairSetEffect, CostBreakdown], tuple]


def _default_score(effect: PairSetEffect, cost: CostBreakdown) -> tuple:
    return (cost.total,)


@dataclass
class SubsetSelectionResult:
    """Output of Algorithm 4 plus its diagnostics."""

    chosen_pairs: tuple[ClassPair, ...]
    chosen_effect: PairSetEffect | None
    chosen_cost: CostBreakdown | None
    sets_evaluated: int
    elapsed_seconds: float

    @property
    def found(self) -> bool:
        """Whether any distinguishing subset was found."""
        return self.chosen_effect is not None


def pick_stc_dtc_subset(
    space: TupleClassSpace,
    skyline_pairs: Sequence[ClassPair],
    config: QFEConfig,
    *,
    result_arity: int,
    most_balanced_binary_x: int | None = None,
    score: ScoreFunction | None = None,
    simulator: PairSetSimulator | None = None,
    max_sets_per_level: int | None = None,
) -> SubsetSelectionResult:
    """Run Algorithm 4 and return the best pair subset under the scoring function.

    Two safety valves beyond the paper's pseudocode keep the pure-Python search
    bounded on adversarial inputs: each cardinality level's frontier is capped
    at ``config.max_sets_per_level`` (keeping the best-balanced sets), and only
    the ``config.growth_pool_size`` best-balanced skyline pairs are eligible to
    extend existing sets. Every single skyline pair is still scored on its own.
    """
    started = perf_counter()
    scorer = score or _default_score
    simulator = simulator or PairSetSimulator(space, result_arity=result_arity)
    max_sets_per_level = max_sets_per_level or config.max_sets_per_level
    pairs = list(skyline_pairs)
    # The single-pair scoring below populates the simulator's per-pair cache
    # (one compiled-predicate match vector per distinct tuple class, covering
    # all candidates at once); the frontier growth then only combines cached
    # per-pair reaction keys.
    sets_evaluated = 0

    best_sets: list[tuple[frozenset[int], PairSetEffect, CostBreakdown]] = []
    best_key: tuple | None = None

    def consider(index_set: frozenset[int], effect: PairSetEffect, cost: CostBreakdown) -> None:
        nonlocal best_key, best_sets
        if not effect.partitions_queries:
            return
        key = scorer(effect, cost)
        if best_key is None or key < best_key:
            best_key = key
            best_sets = [(index_set, effect, cost)]
        elif key == best_key:
            best_sets.append((index_set, effect, cost))

    # ------------------------------------------------------------ single pairs
    frontier: list[tuple[frozenset[int], PairSetEffect]] = []
    single_effects: dict[int, PairSetEffect] = {}
    for index, pair in enumerate(pairs):
        effect = simulator.effect([pair])
        cost = cost_of_effect(effect, config, most_balanced_binary_x=most_balanced_binary_x)
        sets_evaluated += 1
        consider(frozenset([index]), effect, cost)
        frontier.append((frozenset([index]), effect))
        single_effects[index] = effect

    # --------------------------------------------------------- grow pair sets
    # Only the best-balanced pairs are allowed to extend existing sets; every
    # pair above was already considered on its own.
    growth_pool = sorted(range(len(pairs)), key=lambda i: (single_effects[i].balance, i))
    growth_pool = growth_pool[: config.growth_pool_size]
    max_size = min(config.max_subset_size, len(pairs))
    seen: set[frozenset[int]] = {index_set for index_set, _ in frontier}
    for _size in range(2, max_size + 1):
        next_frontier: list[tuple[frozenset[int], PairSetEffect]] = []
        for index_set, effect in frontier:
            for index in growth_pool:
                if index in index_set:
                    continue
                grown = index_set | {index}
                if grown in seen:
                    continue
                seen.add(grown)
                grown_pairs = [pairs[i] for i in sorted(grown)]
                grown_effect = simulator.effect(grown_pairs)
                sets_evaluated += 1
                # Balance-improvement pruning: only keep the grown set when it
                # is more balanced than the set it extends.
                if grown_effect.balance < effect.balance:
                    next_frontier.append((grown, grown_effect))
                    grown_cost = cost_of_effect(
                        grown_effect, config, most_balanced_binary_x=most_balanced_binary_x
                    )
                    consider(grown, grown_effect, grown_cost)
        if not next_frontier:
            break
        if len(next_frontier) > max_sets_per_level:
            next_frontier.sort(key=lambda item: item[1].balance)
            next_frontier = next_frontier[:max_sets_per_level]
        frontier = next_frontier

    elapsed = perf_counter() - started
    if not best_sets:
        return SubsetSelectionResult((), None, None, sets_evaluated, elapsed)

    # Tie-break (step 22): among minimum-cost sets pick the lowest balance.
    best_sets.sort(key=lambda item: (item[1].balance, sorted(item[0])))
    chosen_indexes, chosen_effect, chosen_cost = best_sets[0]
    chosen_pairs = tuple(pairs[i] for i in sorted(chosen_indexes))
    return SubsetSelectionResult(chosen_pairs, chosen_effect, chosen_cost, sets_evaluated, elapsed)
