"""The alternative database-generation objective used in the user study.

Section 7.7: "we compared it against an alternative cost model that aims to
reduce both the size of query subsets as well as the number of iterations by
choosing data modifications to maximize the number of partitioned query
subsets". This module provides that objective as a scoring function for
Algorithm 4: prefer modifications that split the surviving candidates into as
many result-equivalence classes as possible, tie-breaking by smaller database
edits.
"""

from __future__ import annotations

from repro.core.cost_model import CostBreakdown
from repro.core.modification import PairSetEffect

__all__ = ["max_partitions_score"]


def max_partitions_score(effect: PairSetEffect, cost: CostBreakdown) -> tuple:
    """Score for the maximize-number-of-subsets baseline (lower is better).

    Primary key: negative subset count (more subsets first). Ties are broken
    by the size of the largest surviving subset (smaller is better), then by
    the database edit cost, so among equally-splitting modifications the least
    disruptive one is used.
    """
    largest = max(effect.group_sizes) if effect.group_sizes else 0
    return (-effect.group_count, largest, effect.min_edit, cost.total)
