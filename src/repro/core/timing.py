"""Monotonic timing for the session and round-planner instrumentation.

Every duration the paper's tables report (execution time per iteration, the
skyline/selection/materialization split, query-generation time) is measured
with the process-wide *monotonic* performance counter — never the wall clock.
Wall-clock time can jump backwards or forwards (NTP adjustments, suspend/
resume, leap smearing), which matters twice over once rounds fan out across
worker processes: a backwards jump would report a negative round duration,
and summing skewed per-round readings would corrupt
:attr:`~repro.core.session.SessionResult.total_seconds`.

:class:`Stopwatch` additionally clamps at zero, so even a hostile clock
source can never surface a negative duration in an
:class:`~repro.core.session.IterationRecord`.
"""

from __future__ import annotations

from time import perf_counter

__all__ = ["monotonic_seconds", "Stopwatch"]


def monotonic_seconds() -> float:
    """The monotonic clock reading used for all session/round durations."""
    return perf_counter()


class Stopwatch:
    """Measure non-negative elapsed durations on the monotonic clock."""

    __slots__ = ("_started",)

    def __init__(self) -> None:
        self._started = monotonic_seconds()

    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`restart`), clamped at 0."""
        return max(0.0, monotonic_seconds() - self._started)

    def restart(self) -> float:
        """Return the elapsed duration and reset the start point to now."""
        elapsed = self.elapsed()
        self._started = monotonic_seconds()
        return elapsed
