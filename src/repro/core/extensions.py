"""Section 6 extensions: different join schemas and set semantics.

Section 6.2 — *queries with different join schemas*: when the candidate set
mixes join schemas, QFE partitions the candidates into groups sharing a join
schema and runs the winnowing loop group by group, processing groups in
non-ascending size order (the target is assumed more likely to live in a
larger group) and stopping as soon as one group converges with a confirmed
target. :func:`run_grouped_session` implements that strategy on top of
:class:`~repro.core.session.QFESession`.

Section 6.1 — *set semantics*: handled by the ``set_semantics`` flag of
:class:`~repro.core.config.QFEConfig` (candidate results are compared as
sets and the oracle/partitioner fingerprints ignore duplicates); the helper
:func:`group_by_join_schema` is shared by both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.config import QFEConfig
from repro.core.feedback import ResultSelector
from repro.core.session import QFESession, SessionResult
from repro.qbo.config import QBOConfig
from repro.relational.database import Database
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation

__all__ = ["group_by_join_schema", "GroupedSessionResult", "run_grouped_session"]


def group_by_join_schema(queries: Sequence[SPJQuery]) -> list[list[SPJQuery]]:
    """Partition candidates into groups sharing the same join schema.

    Groups are ordered by non-ascending size (the paper's processing order),
    ties broken by the join signature for determinism.
    """
    groups: dict[tuple[str, ...], list[SPJQuery]] = {}
    for query in queries:
        groups.setdefault(query.join_signature, []).append(query)
    ordered = sorted(groups.items(), key=lambda item: (-len(item[1]), item[0]))
    return [group for _, group in ordered]


@dataclass
class GroupedSessionResult:
    """The outcome of the per-join-schema divide-and-conquer strategy."""

    identified_query: SPJQuery | None
    group_results: list[SessionResult] = field(default_factory=list)
    groups_processed: int = 0

    @property
    def converged(self) -> bool:
        """Whether a single target query was identified in some group."""
        return self.identified_query is not None

    @property
    def total_iterations(self) -> int:
        """Total feedback rounds across all processed groups."""
        return sum(result.iteration_count for result in self.group_results)


def run_grouped_session(
    database: Database,
    result: Relation,
    candidates: Sequence[SPJQuery],
    selector_factory,
    *,
    config: QFEConfig | None = None,
    qbo_config: QBOConfig | None = None,
    accept_group=None,
) -> GroupedSessionResult:
    """Run QFE per join-schema group until a group converges (Section 6.2).

    ``selector_factory`` is called with the group's candidate list and must
    return a :class:`~repro.core.feedback.ResultSelector` for that group.
    ``accept_group`` (optional) decides whether a converged group's single
    query is the user's target — by default the first converged group wins,
    which matches a user confirming the final query. Groups with one candidate
    are accepted immediately.
    """
    config = config or QFEConfig()
    outcome = GroupedSessionResult(identified_query=None)
    for group in group_by_join_schema(candidates):
        outcome.groups_processed += 1
        if len(group) == 1:
            candidate = group[0]
            if accept_group is None or accept_group(candidate):
                outcome.identified_query = candidate
                return outcome
            continue
        session = QFESession(
            database,
            result,
            candidates=group,
            config=config,
            qbo_config=qbo_config,
        )
        selector: ResultSelector = selector_factory(group)
        session_result = session.run(selector)
        outcome.group_results.append(session_result)
        if session_result.converged and session_result.identified_query is not None:
            candidate = session_result.identified_query
            if accept_group is None or accept_group(candidate):
                outcome.identified_query = candidate
                return outcome
    return outcome
