"""The Result Feedback module: presenting ``(D', R_1..R_k)`` and collecting choices.

Section 2: rather than showing the full modified database and every candidate
result, QFE presents their *differences* from the original pair ``(D, R)``.
:class:`FeedbackRound` packages one iteration's presentation — the database
delta plus one :class:`ResultOption` per distinct candidate result, each with
its own delta — and the selector classes model how a user answers:

* :class:`WorstCaseSelector` — always picks the option backed by the most
  candidate queries (the paper's automated worst-case feedback, Section 7);
* :class:`OracleSelector` — picks the option matching the target query's
  result on ``D'`` (the paper's target-aware automated feedback);
* :class:`CallbackSelector` — delegates to a callable (interactive examples);
* :class:`ScriptedSelector` — replays a fixed list of choices (tests).

A selector may also return :data:`NONE_OF_THE_ABOVE` to signal that no
presented result matches the intended query, which makes the session trigger
another round of candidate generation (Section 2's "not shown in Algorithm 1"
escape hatch).

Serialization contract: a :class:`FeedbackRound` (with its options and
deltas) travels inside the session's pending-round state when a suspended
session is checkpointed (:mod:`repro.service.checkpoint`), so everything it
transitively references must stay picklable; selectors, by contrast, are
process-local and are never checkpointed — a resumed session is re-driven by
whatever selector (or HTTP user) the resuming side supplies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

from repro.core.partitioner import QueryPartition
from repro.exceptions import FeedbackError
from repro.relational.database import Database
from repro.relational.delta import DatabaseDelta, ResultDelta, database_delta, result_delta
from repro.relational.evaluator import JoinCache, result_fingerprint
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation

__all__ = [
    "NONE_OF_THE_ABOVE",
    "ResultOption",
    "FeedbackRound",
    "build_feedback_round",
    "ResultSelector",
    "WorstCaseSelector",
    "OracleSelector",
    "CallbackSelector",
    "ScriptedSelector",
]

NONE_OF_THE_ABOVE = -1
"""Selector return value meaning "none of the presented results is correct"."""


@dataclass(frozen=True)
class ResultOption:
    """One candidate result shown to the user, with its diff from the original ``R``."""

    index: int
    result: Relation
    delta: ResultDelta
    query_count: int

    def pretty(self) -> str:
        """A text block: the option header followed by its result delta."""
        lines = [f"Result option {self.index + 1} (consistent with {self.query_count} candidate queries):"]
        lines.extend(f"  {line}" for line in self.delta.describe())
        return "\n".join(lines)


@dataclass(frozen=True)
class FeedbackRound:
    """Everything presented to the user in one QFE iteration."""

    iteration: int
    modified_database: Database
    database_delta: DatabaseDelta
    options: tuple[ResultOption, ...]

    @property
    def option_count(self) -> int:
        """How many distinct results are on offer (the ``k`` of the iteration)."""
        return len(self.options)

    def pretty(self) -> str:
        """The full text presentation of the round (used by interactive examples)."""
        lines = [f"=== Iteration {self.iteration}: database changes ==="]
        lines.extend(f"  {line}" for line in self.database_delta.describe())
        for option in self.options:
            lines.append("")
            lines.append(option.pretty())
        return "\n".join(lines)


def build_feedback_round(
    iteration: int,
    original_database: Database,
    original_result: Relation,
    modified_database: Database,
    partition: QueryPartition,
) -> FeedbackRound:
    """Assemble the deltas shown to the user for one iteration."""
    db_delta = database_delta(original_database, modified_database)
    options = []
    for index, group in enumerate(partition.groups):
        options.append(
            ResultOption(
                index=index,
                result=group.result,
                delta=result_delta(original_result, group.result),
                query_count=len(group),
            )
        )
    return FeedbackRound(iteration, modified_database, db_delta, tuple(options))


class ResultSelector(Protocol):
    """How a (possibly simulated) user picks the correct result in a round."""

    def select(self, round_: FeedbackRound, partition: QueryPartition) -> int:
        """Return the chosen option index, or :data:`NONE_OF_THE_ABOVE`."""
        ...  # pragma: no cover - protocol definition


class WorstCaseSelector:
    """Always choose the option backed by the largest candidate subset.

    This is the paper's automated worst-case feedback: it maximizes the number
    of remaining candidates each round, giving an upper bound on iterations.
    """

    def select(self, round_: FeedbackRound, partition: QueryPartition) -> int:
        best_index = 0
        best_count = -1
        for option in round_.options:
            if option.query_count > best_count:
                best_count = option.query_count
                best_index = option.index
        return best_index


class OracleSelector:
    """Choose the option whose result equals the target query's result on ``D'``.

    This models a user who can recognize the correct output of their intended
    query — exactly the paper's minimal requirement on users.
    """

    def __init__(self, target_query: SPJQuery, *, set_semantics: bool = False) -> None:
        self.target_query = target_query
        self.set_semantics = set_semantics
        self._cache = JoinCache()

    def select(self, round_: FeedbackRound, partition: QueryPartition) -> int:
        expected = self._cache.evaluate(self.target_query, round_.modified_database)
        expected_fingerprint = result_fingerprint(expected, set_semantics=self.set_semantics)
        for option in round_.options:
            fingerprint = result_fingerprint(option.result, set_semantics=self.set_semantics)
            if fingerprint == expected_fingerprint:
                return option.index
        return NONE_OF_THE_ABOVE


class CallbackSelector:
    """Delegate the choice to a callable ``(round, partition) -> int``."""

    def __init__(self, callback: Callable[[FeedbackRound, QueryPartition], int]) -> None:
        self.callback = callback

    def select(self, round_: FeedbackRound, partition: QueryPartition) -> int:
        return self.callback(round_, partition)


class ScriptedSelector:
    """Replay a fixed sequence of option indexes (for tests and demos)."""

    def __init__(self, choices: Sequence[int]) -> None:
        self.choices = list(choices)
        self._position = 0

    def select(self, round_: FeedbackRound, partition: QueryPartition) -> int:
        if self._position >= len(self.choices):
            raise FeedbackError("scripted selector ran out of choices")
        choice = self.choices[self._position]
        self._position += 1
        if choice != NONE_OF_THE_ABOVE and not 0 <= choice < round_.option_count:
            raise FeedbackError(
                f"scripted choice {choice} is out of range for {round_.option_count} options"
            )
        return choice
