"""Configuration of the QFE interaction loop and Database Generator.

The paper exposes two tunables — the relation-count scale factor ``β`` of
Equation (3) and the time threshold ``δ`` bounding Algorithm 3 — and fixes a
number of behavioural choices (worst-case automated feedback, refined
iteration estimate, side-effect-aware costing). :class:`QFEConfig` captures
all of them so experiments can vary each independently, including the
ablations listed in DESIGN.md.
"""

from __future__ import annotations

import argparse
import enum
from dataclasses import dataclass

__all__ = [
    "IterationEstimator",
    "QFEConfig",
    "nonnegative_int",
    "BACKEND_CHOICES",
    "backend_name",
]

#: Execution-backend names accepted everywhere a worker count is accepted
#: (``QFEConfig.backend``, every ``--backend`` flag, the service config).
BACKEND_CHOICES = ("auto", "serial", "process", "sql", "warm")


class _BackendNameError(ValueError, argparse.ArgumentTypeError):
    """Unknown backend name.

    Doubly derived so programmatic callers can catch the conventional
    ``ValueError`` while ``argparse`` (which only preserves the message of an
    ``ArgumentTypeError``) still shows the list of valid choices in its usage
    error instead of a bare "invalid value".
    """


def backend_name(text: str) -> str:
    """Parse/validate a backend name (``argparse`` type for ``--backend``).

    Validates at parse time — before any dataset is loaded — so an unknown
    name exits with a usage message instead of failing mid-session.
    """
    normalized = text.strip().lower()
    if normalized not in BACKEND_CHOICES:
        raise _BackendNameError(
            f"unknown backend {text!r}; choose from {', '.join(BACKEND_CHOICES)}"
        )
    return normalized


def nonnegative_int(text: str) -> int:
    """``argparse`` type for counts that must be ≥ 0 (e.g. ``--workers``).

    Validates at parse time — before any dataset is loaded — and keeps the
    invariant in one place for every CLI; a bad value makes ``argparse``
    exit with status 2 and a usage message on stderr.
    """
    value = int(text)
    if value < 0:
        raise ValueError("must be non-negative")
    return value


class IterationEstimator(enum.Enum):
    """Which estimate of the number of remaining iterations the cost model uses."""

    NAIVE = "naive"  # Equation (6): log2 of the largest subset
    REFINED = "refined"  # Equations (7)-(9) using Lemma 3.1's bound


@dataclass(frozen=True)
class QFEConfig:
    """Tunable parameters of a QFE session.

    Attributes
    ----------
    beta:
        The scale parameter ``β`` of Equation (3): how many attribute
        modifications one additional modified *relation* is worth. The paper's
        default is 1.
    delta_seconds:
        The time threshold ``δ`` bounding Algorithm 3 (skyline enumeration).
        The paper's default is 1 second.
    iteration_estimator:
        Whether the cost model uses the naive Equation (6) or the refined
        Equations (7)–(9) estimate of remaining iterations.
    max_iterations:
        Safety bound on the number of feedback rounds before the session
        aborts (the paper's sessions finish in at most ~11 rounds).
    max_skyline_pairs:
        Hard cap on the number of skyline (STC, DTC) pairs handed to
        Algorithm 4; Table 5 shows Algorithm 4's runtime grows quickly with
        |SP| while partitioning quality saturates around 50–100 pairs.
    max_subset_size:
        Upper bound on the cardinality of the (STC, DTC) subset picked by
        Algorithm 4 (the loop of Algorithm 4 is additionally pruned by its
        balance-improvement rule).
    growth_pool_size:
        How many skyline pairs (ordered by their single-pair balance) are
        eligible to *extend* an existing pair set in Algorithm 4. A pure
        Python guard on the quadratic expansion step; Table 5 shows the
        chosen partitioning is insensitive to considering more pairs.
    max_sets_per_level:
        Cap on Algorithm 4's frontier per cardinality level (best-balance
        sets are kept), bounding the worst case of the set-growth loop.
    prefer_no_side_effects:
        Prefer base-tuple modifications whose join-index fanout is 1, so a
        single tuple-class modification changes a single joined row
        (Section 5.4.1 "tuple-class modifications that have no side-effects
        are preferred").
    validate_constraints:
        Reject materialized modifications that violate primary-key or
        foreign-key constraints (Section 6.3).
    set_semantics:
        Treat candidate queries under set semantics (Section 6.1) instead of
        the default bag semantics.
    protect_key_columns:
        Never modify primary-key or foreign-key columns when materializing a
        destination tuple class (keeps every generated database trivially
        valid; disable to exercise the constraint checker instead).
    workers:
        How many worker processes the round planner's candidate-modification
        search fans out over. ``0`` (the default) and ``1`` run the serial
        in-process backend; ``2`` or more shard the search over a process
        pool seeded with a delta-replicated snapshot of the base database.
        Results are bit-identical regardless of the worker count.
    backend:
        Which execution backend the search runs on: ``"auto"`` (the default)
        derives it from ``workers`` as above, ``"serial"`` forces the
        in-process oracle, ``"process"`` forces the worker pool, and
        ``"sql"`` compiles each round into SQLite passes over a persistent
        in-memory mirror, and ``"warm"`` runs rounds on a persistent warm
        worker pool (workers keep versioned base state across rounds and
        sessions; the driver ships deltas and content-hashed round bodies,
        never re-pickled snapshots). Every backend produces bit-identical
        transcripts.
    """

    beta: float = 1.0
    delta_seconds: float = 1.0
    iteration_estimator: IterationEstimator = IterationEstimator.REFINED
    max_iterations: int = 50
    max_skyline_pairs: int = 130
    max_subset_size: int = 6
    growth_pool_size: int = 48
    max_sets_per_level: int = 96
    prefer_no_side_effects: bool = True
    validate_constraints: bool = True
    set_semantics: bool = False
    protect_key_columns: bool = True
    workers: int = 0
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.beta < 0:
            raise ValueError("beta must be non-negative")
        if self.delta_seconds <= 0:
            raise ValueError("delta_seconds must be positive")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if self.max_skyline_pairs < 1:
            raise ValueError("max_skyline_pairs must be at least 1")
        if self.max_subset_size < 1:
            raise ValueError("max_subset_size must be at least 1")
        if self.growth_pool_size < 1:
            raise ValueError("growth_pool_size must be at least 1")
        if self.max_sets_per_level < 1:
            raise ValueError("max_sets_per_level must be at least 1")
        if self.workers < 0:
            raise ValueError("workers must be non-negative")
        if self.backend not in BACKEND_CHOICES:
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"choose from {', '.join(BACKEND_CHOICES)}"
            )

    def with_overrides(self, **overrides) -> "QFEConfig":
        """A copy of this configuration with selected fields replaced."""
        from dataclasses import replace

        return replace(self, **overrides)
