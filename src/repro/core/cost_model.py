"""The user-effort cost model of Section 3.

The Database Generator selects the modification (a set of class pairs) that
minimizes the modelled user effort

``cost(D') = currentCost + residualCost``                          (Eq. 1)

with

* ``currentCost = dbCost + resultCost``                            (Eq. 2)
* ``dbCost      = minEdit(D, D') + β·n``                           (Eq. 3)
* ``resultCost  = Σ_i minEdit(R, R_i)``                            (Eq. 4)
* ``residualCost = N · (minEdit(D,D')/µ + β + (2/k)·Σ_i minEdit(R,R_i))``
  (the conservative per-future-iteration estimate of Section 3)      (Eq. 5)

``N`` is the estimated number of remaining iterations, either the naive
Equation (6) (``log2`` of the largest induced query subset) or the refined
Equations (7)–(9), which exploit Lemma 3.1: once the most balanced *binary*
partitioning available in the current iteration removes only ``x`` false
positives, no later iteration can remove more than ``x`` either.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.config import IterationEstimator, QFEConfig
from repro.core.modification import PairSetEffect

__all__ = [
    "CostBreakdown",
    "balance_score",
    "estimate_iterations_naive",
    "estimate_iterations_refined",
    "estimate_iterations",
    "cost_of_effect",
]


def balance_score(group_sizes: Sequence[int]) -> float:
    """``balance(D') = σ/|C|`` over the induced query-subset sizes.

    A single-group "partition" (the modification does not distinguish any
    queries) scores +infinity so it can never be selected.
    """
    if len(group_sizes) <= 1:
        return float("inf")
    mean = sum(group_sizes) / len(group_sizes)
    variance = sum((size - mean) ** 2 for size in group_sizes) / len(group_sizes)
    return (variance ** 0.5) / len(group_sizes)


def estimate_iterations_naive(group_sizes: Sequence[int]) -> float:
    """Equation (6): ``N = log2(max_i |QC_i|)``."""
    largest = max(group_sizes) if group_sizes else 1
    if largest <= 1:
        return 0.0
    return math.log2(largest)


def estimate_iterations_refined(group_sizes: Sequence[int], x: int | None) -> float:
    """Equations (7)–(9): the Lemma 3.1 refinement of the iteration estimate.

    ``x`` is the size of the smaller subset produced by the most balanced
    *binary* partitioning available in the current iteration; when no binary
    partitioning exists (``x`` is ``None``) the naive estimate is used, as the
    paper prescribes.
    """
    largest = max(group_sizes) if group_sizes else 1
    if largest <= 1:
        return 0.0
    if not x or x <= 0:
        return estimate_iterations_naive(group_sizes)
    n1 = max(largest // x - 1, 0)
    remaining = largest - x * n1
    n2 = math.ceil(math.log2(remaining)) if remaining > 1 else 0
    return float(n1 + n2)


def estimate_iterations(
    group_sizes: Sequence[int],
    config: QFEConfig,
    *,
    most_balanced_binary_x: int | None = None,
) -> float:
    """Dispatch to the configured iteration estimator."""
    if config.iteration_estimator is IterationEstimator.NAIVE:
        return estimate_iterations_naive(group_sizes)
    return estimate_iterations_refined(group_sizes, most_balanced_binary_x)


@dataclass(frozen=True)
class CostBreakdown:
    """All components of Equation (5) for one candidate modification."""

    db_cost: float
    result_cost: float
    residual_cost: float
    estimated_iterations: float
    balance: float
    group_sizes: tuple[int, ...]
    min_edit_db: int
    modified_relation_count: int
    modified_tuple_count: int

    @property
    def current_cost(self) -> float:
        """Equation (2): effort for the current iteration."""
        return self.db_cost + self.result_cost

    @property
    def total(self) -> float:
        """Equation (1): current plus estimated residual effort."""
        return self.current_cost + self.residual_cost


def cost_of_effect(
    effect: PairSetEffect,
    config: QFEConfig,
    *,
    most_balanced_binary_x: int | None = None,
) -> CostBreakdown:
    """Evaluate Equation (5) for a simulated pair-set effect.

    All quantities come from the tuple-class-level simulation: ``minEdit(D,
    D')`` is the total number of modified selection attributes, ``n`` the
    number of modified relations, ``µ`` the number of modified base tuples
    (one per pair), ``k`` the number of induced query subsets and the result
    edit costs the per-group estimates of
    :func:`repro.core.modification.simulate_pair_set`.
    """
    min_edit_db = effect.min_edit
    n_relations = len(effect.modified_tables)
    mu = max(effect.modified_tuple_estimate, 1)
    k = max(effect.group_count, 1)

    db_cost = min_edit_db + config.beta * n_relations
    result_cost = effect.estimated_result_cost
    iterations = estimate_iterations(
        effect.group_sizes, config, most_balanced_binary_x=most_balanced_binary_x
    )
    per_iteration_db = min_edit_db / mu + config.beta
    per_iteration_result = 2.0 * result_cost / k
    residual = iterations * (per_iteration_db + per_iteration_result)
    return CostBreakdown(
        db_cost=float(db_cost),
        result_cost=float(result_cost),
        residual_cost=float(residual),
        estimated_iterations=float(iterations),
        balance=effect.balance,
        group_sizes=effect.group_sizes,
        min_edit_db=min_edit_db,
        modified_relation_count=n_relations,
        modified_tuple_count=mu,
    )
