"""The Round Planner: one QFE iteration's candidate-modification search.

Each iteration of Algorithm 1 must produce a modified database ``D'`` that
distinguishes the surviving candidate queries. The planner decomposes that
round into three phases:

1. **Prologue (driver).** Materialize/reuse the cached foreign-key join of
   the referenced tables, build the tuple-class space, run Algorithm 3
   (skyline enumeration) and Algorithm 4 (subset selection) over the shared
   pair-set simulator, and lay out the deterministic *attempt sequence*: the
   selected subset first, then every skyline pair singly in balance order —
   exactly the fallback order the serial generator always used.
2. **Candidate-modification search (execution backend).** Score attempts by
   concrete materialization + delta-derived partitioning until one
   distinguishes. The serial backend runs this in process; the process-pool
   backend shards the attempts over workers that hold a delta-replicated
   snapshot of the base state and return compact ``(pairs, partition
   signature, cost)`` outcomes. Merging is by attempt index, so the winning
   attempt — and therefore the whole session transcript — is bit-identical
   for every backend and worker count.
3. **Finalize (driver).** Re-materialize only the winning attempt locally
   (materialization is deterministic, so this reproduces the exact database
   the winning outcome scored), derive the cached join, and compute the full
   partition with result relations for the feedback round.

:class:`~repro.core.database_generator.DatabaseGenerator` remains the public
Algorithm 2 entry point; it is now a thin shell over this planner.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Sequence

from repro.core.config import QFEConfig
from repro.core.cost_model import CostBreakdown
from repro.core.execution_backend import (
    Attempt,
    AttemptOutcome,
    ExecutionBackend,
    RoundContext,
    RoundRequest,
    RoundSetup,
    SerialBackend,
    required_signatures,
)
from repro.core.materialize import MaterializationResult, materialize_pairs
from repro.core.modification import ClassPair, PairSetSimulator
from repro.core.partitioner import QueryPartition, partition_from_batch, partition_queries
from repro.core.skyline import SkylineResult, skyline_stc_dtc_pairs
from repro.core.subset_selection import ScoreFunction, SubsetSelectionResult, pick_stc_dtc_subset
from repro.core.timing import Stopwatch
from repro.core.tuple_class import TupleClassSpace
from repro.exceptions import DatabaseGenerationError
from repro.obs.trace import get_tracer
from repro.relational.database import Database
from repro.relational.evaluator import BaseSnapshot, JoinCache, SharedSnapshotCache
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation

__all__ = [
    "DatabaseGenerationResult",
    "RoundPlan",
    "RoundPlanner",
    "PrologueResult",
    "compute_prologue",
    "candidate_pair_attempts",
]

#: Process-wide source of unique round tokens (worker runtimes key on them).
_ROUND_TOKENS = count()


@dataclass
class DatabaseGenerationResult:
    """The modified database of one iteration plus all per-step diagnostics."""

    database: Database
    partition: QueryPartition
    materialization: MaterializationResult
    skyline: SkylineResult
    selection: SubsetSelectionResult
    chosen_pairs: tuple[ClassPair, ...]
    chosen_cost: CostBreakdown | None
    skyline_seconds: float
    selection_seconds: float
    materialize_seconds: float
    fallback_attempts: int = 0

    @property
    def total_seconds(self) -> float:
        """Combined Database Generator time for the iteration."""
        return self.skyline_seconds + self.selection_seconds + self.materialize_seconds


@dataclass
class RoundPlan:
    """The prologue's output: everything the search phase needs, plus diagnostics."""

    context: RoundContext
    original: Database
    result: Relation
    space: TupleClassSpace
    simulator: PairSetSimulator
    skyline: SkylineResult
    selection: SubsetSelectionResult
    attempts: tuple[Attempt, ...]
    skyline_seconds: float
    selection_seconds: float

    @property
    def attempt_count(self) -> int:
        """How many candidate modifications the search phase may score."""
        return len(self.attempts)


def candidate_pair_attempts(
    space: TupleClassSpace, *, max_pairs: int | None = None
) -> tuple[Attempt, ...]:
    """The (STC, DTC) candidate space as single-pair attempts, enumeration order.

    Follows Algorithm 3's deterministic order exactly — ascending edit cost,
    then sorted source classes, then destination choices — optionally capped
    at *max_pairs* (the space grows combinatorially with the number of
    selection attributes, so unbounded concrete scoring is rarely feasible).
    This is the round planner's heavy sweep workload: Algorithm 3 only ever
    scores these pairs through the tuple-class *abstraction*; scoring a
    bounded prefix concretely (exact materialization + exact partition) is
    what the process-parallel backend makes affordable.
    """
    attempts: list[Attempt] = []
    source_classes = space.source_tuple_classes()
    for modified_slots in range(1, space.attribute_count + 1):
        for source in source_classes:
            for destination in space.destination_classes(source, modified_slots):
                attempts.append((ClassPair(source, destination),))
                if max_pairs is not None and len(attempts) >= max_pairs:
                    return tuple(attempts)
    return tuple(attempts)


@dataclass
class PrologueResult:
    """Output of the round prologue (Algorithms 3 + 4 over the shared join).

    Produced by :func:`compute_prologue` — on the driver by
    :meth:`RoundPlanner.prepare_round`, or inside a warm worker process when
    a round-planning backend runs the prologue remotely. Both sides run the
    identical deterministic code over identical state (the worker's joins are
    snapshot replicas of the driver's), so the attempt sequence — and hence
    the session transcript — is independent of where the prologue ran.
    """

    space: TupleClassSpace
    simulator: PairSetSimulator
    skyline: SkylineResult
    selection: SubsetSelectionResult
    attempts: tuple[Attempt, ...]
    skyline_seconds: float
    selection_seconds: float


def compute_prologue(
    database: Database,
    join_cache: JoinCache,
    context: RoundContext,
    *,
    score: ScoreFunction | None = None,
) -> PrologueResult:
    """Run one round's prologue: join → tuple-class space → skyline → subset.

    Pure function of ``(database, cached joins, context)`` plus the optional
    score override: materializes/reuses the referenced join, builds the
    tuple-class space, runs Algorithm 3 and Algorithm 4, and lays out the
    deterministic attempt sequence (chosen subset first, then the skyline
    singles by balance). Raises :class:`DatabaseGenerationError` with the
    exact historical messages on every dead end, so callers on either side of
    a process boundary surface identical failures.
    """
    config = context.config
    queries = context.queries
    referenced = context.referenced
    try:
        joined = join_cache.join_for(database, referenced)
        # Pre-warm the per-query signatures too: partitioning (driver- or
        # worker-side) groups candidates by their own join signature, and
        # a warm base entry is what keeps every candidate evaluation on
        # the O(|Δ|) delta-derived path.
        for query in queries:
            join_cache.join_for(database, query.join_signature)
    except DatabaseGenerationError:
        raise
    except Exception as exc:
        raise DatabaseGenerationError(
            f"cannot materialize the join of {list(referenced)}: {exc}"
        ) from exc
    space = TupleClassSpace(joined, queries)
    if space.attribute_count == 0:
        raise DatabaseGenerationError(
            "candidate queries have no selection predicates to distinguish"
        )
    result_arity = context.result_arity
    simulator = PairSetSimulator(space, result_arity=result_arity)

    watch = Stopwatch()
    skyline = skyline_stc_dtc_pairs(
        space, config, result_arity=result_arity, simulator=simulator
    )
    skyline_seconds = watch.restart()
    if not skyline.pairs:
        raise DatabaseGenerationError("Algorithm 3 found no distinguishing tuple-class pairs")

    selection = pick_stc_dtc_subset(
        space,
        skyline.pairs,
        config,
        result_arity=result_arity,
        most_balanced_binary_x=skyline.most_balanced_binary_x,
        score=score,
        simulator=simulator,
    )
    selection_seconds = watch.restart()
    if not selection.found:
        raise DatabaseGenerationError("Algorithm 4 found no distinguishing pair subset")

    # Attempt sequence: the chosen subset first; if the concrete database
    # fails to split the candidates (side effects, value collisions), fall
    # back to the skyline pairs singly, ordered by single-pair balance.
    attempts: list[Attempt] = [tuple(selection.chosen_pairs)]
    attempts.extend(
        (pair,)
        for pair in skyline.singles_ordered_by_balance()
        if (pair,) != selection.chosen_pairs
    )
    return PrologueResult(
        space=space,
        simulator=simulator,
        skyline=skyline,
        selection=selection,
        attempts=tuple(attempts),
        skyline_seconds=skyline_seconds,
        selection_seconds=selection_seconds,
    )


@dataclass(frozen=True)
class _RemoteSkylineSummary:
    """Stand-in for :class:`SkylineResult` when the prologue ran remotely.

    A round-planning backend ships back only the scalar the session's round
    stats read (``pair_count``); the full pair list stays worker-side. The
    count is computed by the identical Algorithm 3 code on replicated state,
    so transcripts stay bit-identical to the driver-side prologue.
    """

    pair_count: int


@dataclass(frozen=True)
class _RemoteSelectionSummary:
    """Stand-in for :class:`SubsetSelectionResult` after a remote prologue."""

    found: bool
    chosen_pairs: tuple[ClassPair, ...]
    chosen_cost: CostBreakdown | None


@dataclass(frozen=True)
class _RemoteMaterializationSummary:
    """Stand-in for :class:`MaterializationResult` after a remote search.

    ``database`` is the driver-side replay of the winner's shipped
    :class:`~repro.relational.delta.TupleDelta` onto a copy of the base —
    byte-identical to the worker's materialized database because delta
    replay is exact (tuple ids included). The scalar counts are the worker's
    measurements of the same deterministic materialization.
    """

    database: Database
    delta: object
    modification_count: int
    modified_tuple_count: int
    modified_relation_count: int
    side_effect_count: int
    skipped_pair_count: int


class RoundPlanner:
    """Plan one feedback round over a pluggable execution backend.

    The planner owns the session-wide join cache (base joins and their term
    masks stay warm across rounds) and, for parallel backends, the memoized
    :class:`BaseSnapshot` broadcast to workers — captured once per base
    database and re-captured only if a later round references a join
    signature the snapshot does not cover (candidate replenishment never
    changes table sets in practice, so this is a cold-path guard).
    """

    def __init__(
        self,
        config: QFEConfig | None = None,
        *,
        score: ScoreFunction | None = None,
        join_cache: JoinCache | None = None,
        backend: ExecutionBackend | None = None,
        snapshot_cache: SharedSnapshotCache | None = None,
    ) -> None:
        self.config = config or QFEConfig()
        self.score = score
        self.join_cache = join_cache if join_cache is not None else JoinCache()
        self.backend = backend if backend is not None else SerialBackend()
        # Snapshot memoization lives in a SharedSnapshotCache: private by
        # default (one planner, one session — the pre-service behaviour), or
        # injected by the session service so that many sessions over the same
        # base database share one snapshot object — and therefore one
        # broadcast — on a shared worker pool. Currency (same live database,
        # covered signatures, identity-same joins as the driver cache) is
        # checked by the cache; an in-place base mutation followed by
        # ``join_cache.invalidate`` still forces a re-capture and a pool
        # re-broadcast exactly as before.
        self.snapshot_cache = (
            snapshot_cache if snapshot_cache is not None else SharedSnapshotCache()
        )

    def close(self) -> None:
        """Release backend resources (worker pools); the planner stays usable."""
        self.backend.close()

    def memory_report(self) -> dict:
        """Resident storage footprint of the session's cached joins.

        Delegates to :meth:`~repro.relational.evaluator.JoinCache.\
        memory_report`: per cached join, the typed-column (or boxed-object)
        bytes of its built columnar view, plus the bytes-per-joined-row
        aggregate. Never forces a view build, so calling it between rounds is
        free — the service layer and the scenario sweep use it to report the
        engine's in-memory footprint alongside timings.
        """
        return self.join_cache.memory_report()

    # ------------------------------------------------------------- snapshotting
    def _snapshot_for(
        self, database: Database, signatures: Sequence[tuple[str, ...]]
    ) -> BaseSnapshot:
        return self.snapshot_cache.snapshot_for(database, signatures, self.join_cache)

    # ---------------------------------------------------------------- prologue
    def prepare_round(
        self,
        original: Database,
        result: Relation,
        queries: Sequence[SPJQuery],
    ) -> RoundPlan:
        """Run the driver-side prologue and lay out the attempt sequence."""
        if len(queries) < 2:
            raise DatabaseGenerationError("need at least two candidate queries to distinguish")
        with get_tracer().span("round.prepare", candidates=len(queries)):
            return self._prepare_round(original, result, queries)

    def _context_for(
        self, result: Relation, queries: tuple[SPJQuery, ...]
    ) -> RoundContext:
        # Join only the relations the candidates actually reference (Section 5
        # assumes a shared join schema; this also keeps databases with
        # unrelated extra tables usable).
        referenced = tuple(sorted({table for query in queries for table in query.tables}))
        return RoundContext(
            token=f"round-{next(_ROUND_TOKENS)}",
            queries=queries,
            config=self.config,
            referenced=referenced,
            result_name=result.schema.name,
            result_arity=result.schema.arity,
        )

    def _prepare_round(
        self,
        original: Database,
        result: Relation,
        queries: Sequence[SPJQuery],
    ) -> RoundPlan:
        context = self._context_for(result, tuple(queries))
        prologue = compute_prologue(original, self.join_cache, context, score=self.score)
        return RoundPlan(
            context=context,
            original=original,
            result=result,
            space=prologue.space,
            simulator=prologue.simulator,
            skyline=prologue.skyline,
            selection=prologue.selection,
            attempts=prologue.attempts,
            skyline_seconds=prologue.skyline_seconds,
            selection_seconds=prologue.selection_seconds,
        )

    # ------------------------------------------------------------------ search
    def execute(
        self,
        plan: RoundPlan,
        *,
        attempts: Sequence[Attempt] | None = None,
        stop_at_first: bool = True,
        backend: ExecutionBackend | None = None,
        winner_store: dict | None = None,
    ) -> list[AttemptOutcome]:
        """Score the plan's attempts (or an explicit attempt sequence) on a backend."""
        active = backend if backend is not None else self.backend
        setup = RoundSetup(
            context=plan.context,
            database=plan.original,
            space=plan.space,
            join_cache=self.join_cache,
            snapshot_provider=lambda: self._snapshot_for(
                plan.original, required_signatures(plan.context)
            ),
            winner_store=winner_store,
        )
        chosen = plan.attempts if attempts is None else tuple(attempts)
        with get_tracer().span(
            "round.search", backend=active.name, attempts=len(chosen)
        ):
            return active.run_attempts(setup, chosen, stop_at_first=stop_at_first)

    def score_candidates(
        self,
        original: Database,
        result: Relation,
        queries: Sequence[SPJQuery],
    ) -> list[AttemptOutcome]:
        """Exhaustively score every fallback attempt of one round.

        Unlike :meth:`plan_round` this never stops early — it is a
        diagnostic: the exact concrete effect of the Algorithm 4 subset and
        every skyline single, serially or fanned out.
        """
        plan = self.prepare_round(original, result, queries)
        return self.execute(plan, stop_at_first=False)

    def score_candidate_space(
        self,
        original: Database,
        result: Relation,
        queries: Sequence[SPJQuery],
        *,
        max_pairs: int | None = 192,
    ) -> list[AttemptOutcome]:
        """Concretely score a bounded prefix of the full (STC, DTC) space.

        Algorithm 3 enumerates thousands of class pairs per round but only
        scores them through the tuple-class abstraction; this sweep
        materializes each of the first *max_pairs* pairs for real and
        computes its exact partition signature — the workload the
        ``round-planner`` benchmark group measures serial vs process-pool.
        """
        plan = self.prepare_round(original, result, queries)
        attempts = candidate_pair_attempts(plan.space, max_pairs=max_pairs)
        return self.execute(plan, attempts=attempts, stop_at_first=False)

    # ---------------------------------------------------------------- finalize
    def plan_round(
        self,
        original: Database,
        result: Relation,
        queries: Sequence[SPJQuery],
    ) -> DatabaseGenerationResult:
        """Produce ``D'`` distinguishing *queries*; raises if no modification helps."""
        # A round-planning backend (``plans_rounds``) runs the whole round —
        # prologue included — on its warm workers; only compact summaries,
        # outcomes and the winner's delta + batch cross the process boundary.
        # A custom score function cannot be shipped (it may close over
        # arbitrary driver state), so those planners keep the driver-side
        # prologue and the backend's classic ``run_attempts`` interface.
        if getattr(self.backend, "plans_rounds", False) and self.score is None:
            return self._plan_round_remote(original, result, tuple(queries))
        plan = self.prepare_round(original, result, queries)
        watch = Stopwatch()
        winner_store: dict = {}
        outcomes = self.execute(plan, stop_at_first=True, winner_store=winner_store)
        winner: AttemptOutcome | None = None
        for outcome in outcomes:
            if outcome.applied and outcome.distinguishes:
                winner = outcome
                break
        if winner is None:
            last_error = "no class pair could be materialized"
            if outcomes and outcomes[-1].applied:
                last_error = "materialized database did not distinguish any candidates"
            raise DatabaseGenerationError(
                f"could not generate a distinguishing database: {last_error} "
                f"after {len(outcomes)} attempts"
            )

        # An in-process backend deposits the winning materialization and its
        # batch evaluation (with the derived cache entry still registered)
        # so the winner is built and evaluated exactly once. A remote
        # backend only ships compact outcomes, so the winner is
        # re-materialized here — materialization is a deterministic function
        # of (space, pairs, config), so this reproduces exactly the database
        # the winning outcome scored.
        with get_tracer().span("round.materialize", attempt=winner.attempt_index):
            materialization = batch = None
            if winner_store.get("attempt_index") == winner.attempt_index:
                materialization = winner_store.get("materialization")
                batch = winner_store.get("batch")
            if materialization is None:
                materialization = materialize_pairs(
                    plan.space, winner.pairs, original, self.config
                )
                if materialization.delta.is_update_only and not materialization.delta.is_empty:
                    self.join_cache.derive(
                        original, materialization.delta, materialization.database
                    )
            if batch is not None:
                partition = partition_from_batch(plan.context.queries, batch)
            else:
                partition = partition_queries(
                    plan.context.queries,
                    materialization.database,
                    set_semantics=self.config.set_semantics,
                    result_name=plan.context.result_name,
                    join_cache=self.join_cache,
                )
            if not partition.distinguishes:  # pragma: no cover - determinism guard
                raise DatabaseGenerationError(
                    "winning attempt no longer distinguishes on re-materialization; "
                    "attempt evaluation is expected to be deterministic"
                )
        materialize_seconds = watch.elapsed()
        chosen_pairs = tuple(winner.pairs)
        return DatabaseGenerationResult(
            database=materialization.database,
            partition=partition,
            materialization=materialization,
            skyline=plan.skyline,
            selection=plan.selection,
            chosen_pairs=chosen_pairs,
            chosen_cost=(
                plan.selection.chosen_cost
                if chosen_pairs == plan.selection.chosen_pairs
                else None
            ),
            skyline_seconds=plan.skyline_seconds,
            selection_seconds=plan.selection_seconds,
            materialize_seconds=materialize_seconds,
            fallback_attempts=winner.attempt_index,
        )

    def _plan_round_remote(
        self,
        original: Database,
        result: Relation,
        queries: tuple[SPJQuery, ...],
    ) -> DatabaseGenerationResult:
        """One whole round on a round-planning backend (warm worker pool).

        The prologue (Algorithm 3 + 4), the candidate-modification search and
        the winner's evaluation all run worker-side against the replicated
        base; the driver ships a content-hashed round body, receives compact
        outcomes plus the winner's delta + batch, and finalizes by replaying
        the delta onto a copy of the base — the same deterministic database
        the worker scored, without re-materializing or re-evaluating
        anything driver-side.
        """
        if len(queries) < 2:
            raise DatabaseGenerationError("need at least two candidate queries to distinguish")
        context = self._context_for(result, queries)
        request = RoundRequest(
            context=context,
            database=original,
            join_cache=self.join_cache,
            snapshot_provider=lambda: self._snapshot_for(
                original, required_signatures(context)
            ),
        )
        with get_tracer().span("round.search", backend=self.backend.name):
            remote = self.backend.run_round(request)
        watch = Stopwatch()
        winner: AttemptOutcome | None = None
        for outcome in remote.outcomes:
            if outcome.applied and outcome.distinguishes:
                winner = outcome
                break
        if winner is None:
            last_error = "no class pair could be materialized"
            if remote.outcomes and remote.outcomes[-1].applied:
                last_error = "materialized database did not distinguish any candidates"
            raise DatabaseGenerationError(
                f"could not generate a distinguishing database: {last_error} "
                f"after {len(remote.outcomes)} attempts"
            )
        payload = remote.winner
        with get_tracer().span("round.materialize", attempt=winner.attempt_index):
            if payload is None or payload.attempt_index != winner.attempt_index:
                # pragma: no cover - backend contract violation
                raise DatabaseGenerationError(
                    "round-planning backend returned no finalize payload "
                    "for the winning attempt"
                )
            derived = original.copy()
            payload.delta.apply_to(derived)
            partition = partition_from_batch(context.queries, payload.batch)
            if not partition.distinguishes:  # pragma: no cover - determinism guard
                raise DatabaseGenerationError(
                    "winning attempt no longer distinguishes on re-materialization; "
                    "attempt evaluation is expected to be deterministic"
                )
        materialize_seconds = watch.elapsed()
        chosen_pairs = tuple(winner.pairs)
        plan = remote.plan
        plan_chosen = tuple(plan.chosen_pairs)
        return DatabaseGenerationResult(
            database=derived,
            partition=partition,
            materialization=_RemoteMaterializationSummary(
                database=derived,
                delta=payload.delta,
                modification_count=payload.modification_count,
                modified_tuple_count=payload.modified_tuple_count,
                modified_relation_count=payload.modified_relation_count,
                side_effect_count=payload.side_effect_count,
                skipped_pair_count=payload.skipped_pair_count,
            ),
            skyline=_RemoteSkylineSummary(pair_count=plan.skyline_pair_count),
            selection=_RemoteSelectionSummary(
                found=True, chosen_pairs=plan_chosen, chosen_cost=plan.chosen_cost
            ),
            chosen_pairs=chosen_pairs,
            chosen_cost=plan.chosen_cost if chosen_pairs == plan_chosen else None,
            skyline_seconds=plan.skyline_seconds,
            selection_seconds=plan.selection_seconds,
            materialize_seconds=materialize_seconds,
            fallback_attempts=winner.attempt_index,
        )
