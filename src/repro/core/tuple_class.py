"""Tuple classes (Section 5.1): the abstraction the Database Generator searches.

Given the joined relation ``T`` and the surviving candidate queries ``QC``,
every attribute ``A_i`` appearing in a selection predicate of ``QC`` has its
domain partitioned into a minimum collection of subsets ``P_QC(A_i)`` such
that each selection term on ``A_i`` is constant (all-true or all-false) on
each subset. A *tuple class* is a choice of one subset per selection
attribute; every tuple of ``T`` belongs to exactly one tuple class, and every
candidate query either matches all tuples of a class or none of them.

The module provides:

* :class:`DomainSubset` / :class:`DomainPartition` — the per-attribute
  partition, for both ordered (numeric) and categorical domains, each subset
  carrying representative values used when materializing modifications;
* :class:`TupleClass` — one combination of subsets, with query matching;
* :class:`TupleClassSpace` — the partitions for all selection attributes, the
  mapping of joined rows to their source tuple classes (STCs), and the
  enumeration of destination tuple classes (DTCs) at a given edit distance.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.relational.join import JoinedRelation
from repro.relational.predicates import Term, compile_predicate
from repro.relational.query import SPJQuery
from repro.relational.types import value_sort_key

__all__ = ["DomainSubset", "DomainPartition", "TupleClass", "TupleClassSpace"]


# --------------------------------------------------------------------- subsets
@dataclass(frozen=True)
class DomainSubset:
    """One block of a selection attribute's domain partition.

    ``signature`` records, per selection term on the attribute, whether the
    block satisfies it; two values in the same block are indistinguishable to
    every candidate query. ``representatives`` are concrete values from the
    block — active-domain values first, then synthesized ones — used when the
    Database Generator materializes a modification into this block.
    """

    attribute: str
    index: int
    signature: tuple[bool, ...]
    representatives: tuple[Any, ...]
    description: str

    @property
    def has_representative(self) -> bool:
        """Whether a concrete value can be drawn from this block."""
        return bool(self.representatives)

    def representative(self) -> Any:
        """The preferred concrete value of this block."""
        if not self.representatives:
            raise ValueError(f"domain subset {self.description} has no representative value")
        return self.representatives[0]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.attribute}∈{self.description}"


class DomainPartition:
    """The partition ``P_QC(A)`` of one selection attribute's domain."""

    def __init__(self, attribute: str, terms: Sequence[Term], active_values: Sequence[Any]) -> None:
        self.attribute = attribute
        self.terms = tuple(terms)
        self.subsets: tuple[DomainSubset, ...] = tuple(
            self._build_subsets(attribute, self.terms, list(active_values))
        )
        self._subset_of_value_cache: dict[Any, int] = {}

    # ------------------------------------------------------------------ build
    @staticmethod
    def _signature_of_value(terms: Sequence[Term], value: Any) -> tuple[bool, ...]:
        return tuple(term.evaluate_value(value) for term in terms)

    @classmethod
    def _build_subsets(
        cls, attribute: str, terms: Sequence[Term], active_values: list[Any]
    ) -> list[DomainSubset]:
        numeric_active = [
            v for v in active_values if isinstance(v, (int, float)) and not isinstance(v, bool)
        ]
        all_numeric = bool(active_values) and len(numeric_active) == len(active_values)
        numeric_constants = [
            c
            for term in terms
            for c in term.constants()
            if isinstance(c, (int, float)) and not isinstance(c, bool)
        ]
        if all_numeric or (not active_values and numeric_constants):
            return cls._build_numeric_subsets(attribute, terms, numeric_active)
        return cls._build_categorical_subsets(attribute, terms, active_values)

    @classmethod
    def _build_numeric_subsets(
        cls, attribute: str, terms: Sequence[Term], active_values: list[Any]
    ) -> list[DomainSubset]:
        # Atomic intervals induced by every numeric constant, then merged by
        # term signature so the partition is minimal (Example 5.1). Constants
        # are kept exact (integral floats collapse onto the equal int, large
        # ints never round-trip through a double) so neighbouring integer
        # breakpoints ≥ 2^53 stay distinct.
        breakpoints = sorted(
            {
                cls._clean_number(c)
                for term in terms
                for c in term.constants()
                if isinstance(c, (int, float)) and not isinstance(c, bool)
            }
        )
        probes: list[float] = []
        interval_labels: list[str] = []
        if not breakpoints:
            probes = [0.0]
            interval_labels = ["(-inf, +inf)"]
        else:
            spread = max(breakpoints[-1] - breakpoints[0], 1)
            probes.append(breakpoints[0] - spread)
            interval_labels.append(f"(-inf, {cls._label(breakpoints[0])})")
            for i, point in enumerate(breakpoints):
                probes.append(point)
                interval_labels.append(f"[{cls._label(point)}]")
                upper = breakpoints[i + 1] if i + 1 < len(breakpoints) else point + spread
                probes.append(cls._midpoint(point, upper) if i + 1 < len(breakpoints) else point + spread)
                interval_labels.append(
                    f"({cls._label(point)}, {cls._label(upper)})"
                    if i + 1 < len(breakpoints)
                    else f"({cls._label(point)}, +inf)"
                )

        groups: dict[tuple[bool, ...], dict[str, list[Any]]] = {}
        order: list[tuple[bool, ...]] = []
        for probe, label in zip(probes, interval_labels):
            signature = cls._signature_of_value(terms, probe)
            bucket = groups.setdefault(signature, {"labels": [], "synth": [], "active": []})
            if signature not in order:
                order.append(signature)
            bucket["labels"].append(label)
            bucket["synth"].append(cls._clean_number(probe))
        for value in sorted(set(active_values)):
            signature = cls._signature_of_value(terms, value)
            bucket = groups.setdefault(signature, {"labels": [], "synth": [], "active": []})
            if signature not in order:
                order.append(signature)
            bucket["active"].append(cls._clean_number(value))

        subsets: list[DomainSubset] = []
        for index, signature in enumerate(order):
            bucket = groups[signature]
            representatives = tuple(dict.fromkeys(bucket["active"] + bucket["synth"]))
            description = " ∪ ".join(dict.fromkeys(bucket["labels"])) or "{active}"
            subsets.append(
                DomainSubset(attribute, index, signature, representatives, description)
            )
        return subsets

    @staticmethod
    def _clean_number(value: Any) -> Any:
        """Canonical exact form of a numeric value (no float() round-trip).

        Integral floats collapse onto the exactly-equal int; ints — including
        those ≥ 2^53, which ``float(value)`` would corrupt — pass through
        unchanged, so a domain-subset representative written back into a
        materialized database is always the exact active-domain value.
        """
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        return value

    @staticmethod
    def _label(value: Any) -> str:
        """Exact interval-boundary rendering for subset descriptions.

        Integers print exactly ("{:g}" would show 2^53 and 2^53 + 1 as the
        same '9.0072e+15', giving distinct subsets identical user-facing
        labels); floats keep the compact "{:g}" form.
        """
        if isinstance(value, int):
            return str(value)
        return f"{value:g}"

    @staticmethod
    def _midpoint(low: Any, high: Any) -> Any:
        """A probe value strictly between two breakpoints (exact for ints).

        ``(low + high) / 2.0`` on huge integers rounds to a double and can
        land *on* a breakpoint; the integer midpoint stays exact. For
        adjacent integers the open interval contains no integers at all, so
        the (collapsing) float midpoint merely merges the empty interval with
        its lower breakpoint's signature group — which is harmless, since
        subsets are keyed by term signature.
        """
        if isinstance(low, int) and isinstance(high, int) and high - low > 1:
            return low + (high - low) // 2
        return (low + high) / 2.0

    @classmethod
    def _build_categorical_subsets(
        cls, attribute: str, terms: Sequence[Term], active_values: list[Any]
    ) -> list[DomainSubset]:
        constants = [c for term in terms for c in term.constants()]
        universe = list(dict.fromkeys(list(active_values) + constants))
        universe.sort(key=value_sort_key)
        groups: dict[tuple[bool, ...], list[Any]] = {}
        order: list[tuple[bool, ...]] = []
        for value in universe:
            signature = cls._signature_of_value(terms, value)
            if signature not in groups:
                groups[signature] = []
                order.append(signature)
            groups[signature].append(value)
        # A "fresh value" block (satisfying no equality/membership term) exists
        # implicitly; only add it when no existing block has that signature.
        fresh_signature = tuple(
            term.op.value in ("!=", "NOT IN") for term in terms
        )
        if terms and fresh_signature not in groups:
            groups[fresh_signature] = []
            order.append(fresh_signature)
        subsets = []
        for index, signature in enumerate(order):
            values = groups[signature]
            description = "{" + ", ".join(str(v) for v in values[:6]) + ("…}" if len(values) > 6 else "}")
            representatives = tuple(values)
            if not representatives:
                representatives = (cls._fresh_value(universe),)
                description = "{fresh}"
            subsets.append(DomainSubset(attribute, index, signature, representatives, description))
        return subsets

    @staticmethod
    def _fresh_value(universe: list[Any]) -> Any:
        existing = {v for v in universe if isinstance(v, str)}
        candidate = "QFE_OTHER"
        suffix = 0
        while candidate in existing:
            suffix += 1
            candidate = f"QFE_OTHER_{suffix}"
        return candidate

    # ----------------------------------------------------------------- lookup
    def __len__(self) -> int:
        return len(self.subsets)

    def subset_of_value(self, value: Any) -> int:
        """Index of the subset containing *value* (NULL maps to a no-term block)."""
        key = value if not isinstance(value, float) else round(value, 12)
        if key in self._subset_of_value_cache:
            return self._subset_of_value_cache[key]
        signature = self._signature_of_value(self.terms, value)
        for subset in self.subsets:
            if subset.signature == signature:
                self._subset_of_value_cache[key] = subset.index
                return subset.index
        # A value whose signature was never seen (possible for NULLs): treat it
        # as belonging to the first all-false block, creating one if needed.
        for subset in self.subsets:
            if not any(subset.signature):
                self._subset_of_value_cache[key] = subset.index
                return subset.index
        self._subset_of_value_cache[key] = 0
        return 0

    def subset(self, index: int) -> DomainSubset:
        """The subset with the given index."""
        return self.subsets[index]


# ---------------------------------------------------------------- tuple classes
@dataclass(frozen=True)
class TupleClass:
    """A tuple of domain-subset indexes, one per selection attribute."""

    subset_indexes: tuple[int, ...]

    def differing_positions(self, other: "TupleClass") -> tuple[int, ...]:
        """Positions (attribute slots) where the two classes differ."""
        return tuple(
            i for i, (a, b) in enumerate(zip(self.subset_indexes, other.subset_indexes)) if a != b
        )

    def edit_distance(self, other: "TupleClass") -> int:
        """``minEdit`` between the classes: number of differing attribute slots."""
        return len(self.differing_positions(other))

    def __len__(self) -> int:
        return len(self.subset_indexes)


class TupleClassSpace:
    """Domain partitions + the STC structure of a joined relation w.r.t. ``QC``."""

    def __init__(self, joined: JoinedRelation, queries: Sequence[SPJQuery]) -> None:
        self.joined = joined
        self.queries = tuple(queries)
        self.selection_attributes: tuple[str, ...] = self._collect_selection_attributes(queries)
        self.partitions: dict[str, DomainPartition] = {}
        for attribute in self.selection_attributes:
            terms = [
                term for query in queries for term in query.predicate.terms_on(attribute)
            ]
            active = [
                v
                for v in joined.relation.column(attribute)
                if v is not None
            ]
            self.partitions[attribute] = DomainPartition(attribute, terms, active)
        self._row_classes: list[TupleClass] = []
        self._class_rows: dict[TupleClass, list[int]] = {}
        self._assign_rows()
        self._slot_of_attribute = {
            attribute: slot for slot, attribute in enumerate(self.selection_attributes)
        }
        self._compiled_predicates: list | None = None
        self._match_vector_cache: dict[TupleClass, tuple[bool, ...]] = {}

    # ------------------------------------------------------------------ build
    @staticmethod
    def _collect_selection_attributes(queries: Sequence[SPJQuery]) -> tuple[str, ...]:
        ordered: dict[str, None] = {}
        for query in queries:
            for attribute in query.selection_attributes():
                ordered.setdefault(attribute, None)
        return tuple(ordered)

    def _assign_rows(self) -> None:
        # Column-at-a-time: map each selection attribute's column to subset
        # indexes through the shared columnar view (one value-cache lookup per
        # cell, no per-row attribute indirection), then zip the index columns
        # back into per-row tuple classes.
        view = self.joined.columnar()
        index_columns = [
            [self.partitions[attribute].subset_of_value(value) for value in view.column(attribute)]
            for attribute in self.selection_attributes
        ]
        row_count = len(self.joined)
        if index_columns:
            per_row = zip(*index_columns)
        else:
            per_row = (() for _ in range(row_count))
        for position, indexes in enumerate(per_row):
            tuple_class = TupleClass(tuple(indexes))
            self._row_classes.append(tuple_class)
            self._class_rows.setdefault(tuple_class, []).append(position)

    # ----------------------------------------------------------------- access
    @property
    def attribute_count(self) -> int:
        """Number of distinct selection-predicate attributes (the ``n`` of Alg. 3)."""
        return len(self.selection_attributes)

    def source_tuple_classes(self) -> list[TupleClass]:
        """All tuple classes that contain at least one joined row, deterministic order."""
        return sorted(self._class_rows, key=lambda tc: tc.subset_indexes)

    def rows_in_class(self, tuple_class: TupleClass) -> tuple[int, ...]:
        """Joined-row positions belonging to the class."""
        return tuple(self._class_rows.get(tuple_class, ()))

    def class_of_row(self, position: int) -> TupleClass:
        """The tuple class of the joined row at *position*."""
        return self._row_classes[position]

    def max_subsets_per_attribute(self) -> int:
        """``k = max_i |P_QC(A_i)|`` — drives Algorithm 3's complexity bound."""
        if not self.partitions:
            return 1
        return max(len(partition) for partition in self.partitions.values())

    # --------------------------------------------------------------- matching
    def representative_values(self, tuple_class: TupleClass) -> dict[str, Any]:
        """Concrete values (one per selection attribute) representing the class."""
        values: dict[str, Any] = {}
        for attribute, index in zip(self.selection_attributes, tuple_class.subset_indexes):
            values[attribute] = self.partitions[attribute].subset(index).representative()
        return values

    def _compiled(self) -> list:
        # Each candidate's predicate compiled once into a positional closure
        # over the selection-attribute slots (the shared compile cache means
        # terms common to several candidates compile a single time).
        if self._compiled_predicates is None:
            self._compiled_predicates = [
                compile_predicate(query.predicate, self._slot_of_attribute)
                for query in self.queries
            ]
        return self._compiled_predicates

    def match_vector(self, tuple_class: TupleClass) -> tuple[bool, ...]:
        """Whether each candidate query matches the tuple class, for all candidates.

        By construction every term of every candidate is constant on each
        domain subset, so evaluating the compiled predicates on the class's
        representative values (one per selection-attribute slot) decides it
        for all tuples of the class. Computed once per class and cached — the
        pair-set simulators of Algorithms 3/4 probe the same classes for every
        candidate.
        """
        cached = self._match_vector_cache.get(tuple_class)
        if cached is not None:
            return cached
        values = tuple(
            self.partitions[attribute].subset(index).representative()
            for attribute, index in zip(self.selection_attributes, tuple_class.subset_indexes)
        )
        vector = tuple(predicate(values) for predicate in self._compiled())
        self._match_vector_cache[tuple_class] = vector
        return vector

    def matches(self, query_index: int, tuple_class: TupleClass) -> bool:
        """Whether the candidate query at *query_index* matches the tuple class."""
        return self.match_vector(tuple_class)[query_index]

    # ------------------------------------------------------------ enumeration
    def destination_classes(self, source: TupleClass, modified_slots: int) -> Iterator[TupleClass]:
        """All DTCs derived from *source* by changing exactly *modified_slots* attributes.

        Only destination blocks with at least one representative value are
        yielded (otherwise the modification could not be materialized).
        """
        n = len(self.selection_attributes)
        if modified_slots < 1 or modified_slots > n:
            return
        for slots in itertools.combinations(range(n), modified_slots):
            alternatives_per_slot = []
            for slot in slots:
                attribute = self.selection_attributes[slot]
                partition = self.partitions[attribute]
                alternatives = [
                    subset.index
                    for subset in partition.subsets
                    if subset.index != source.subset_indexes[slot] and subset.has_representative
                ]
                alternatives_per_slot.append(alternatives)
            if any(not alternatives for alternatives in alternatives_per_slot):
                continue
            for choice in itertools.product(*alternatives_per_slot):
                new_indexes = list(source.subset_indexes)
                for slot, subset_index in zip(slots, choice):
                    new_indexes[slot] = subset_index
                yield TupleClass(tuple(new_indexes))

    def changed_attributes(self, source: TupleClass, destination: TupleClass) -> tuple[str, ...]:
        """Qualified attribute names whose subset changes between the two classes."""
        return tuple(
            self.selection_attributes[slot]
            for slot in source.differing_positions(destination)
        )
