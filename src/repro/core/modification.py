"""(STC, DTC) class pairs and the simulated effect of applying them.

A *class pair* ``(s, d)`` stands for "take some joined row whose tuple class
is ``s`` and modify its selection-attribute values so the row moves to class
``d``" (Section 5.1). Before any concrete tuple is touched, the Database
Generator needs to know — for a *set* of class pairs — how the surviving
candidate queries would partition, how large the database edit would be, and
roughly how far each induced result drifts from the original ``R``. This
module computes those tuple-class-level simulations; they drive the balance
scores and the Equation (5) cost used by Algorithms 3 and 4, while the exact
partition is recomputed on the materialized database afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.tuple_class import TupleClass, TupleClassSpace

__all__ = ["ClassPair", "PairSetEffect", "PairSetSimulator", "simulate_pair_set"]


@dataclass(frozen=True)
class ClassPair:
    """A source/destination tuple-class pair representing one tuple modification.

    A class pair is always realized as E1 attribute modifications of existing
    tuples — never tuple insertions or deletions — so the
    :class:`~repro.relational.delta.TupleDelta` its materialization records
    is update-only (:attr:`is_update_only`). That is the contract the
    delta-derived evaluation path (:meth:`JoinCache.derive
    <repro.relational.evaluator.JoinCache.derive>`) relies on to patch the
    cached join instead of rebuilding it for every candidate ``D'``.

    Class pairs are plain frozen dataclasses over tuples of ints, so they
    pickle cheaply — they are the unit of work the parallel round planner
    ships to worker processes, and their materialization is a deterministic
    function of ``(tuple-class space, pair sequence, config)``, which is what
    makes worker-evaluated outcomes bit-identical to driver-evaluated ones.
    """

    source: TupleClass
    destination: TupleClass

    @property
    def edit_cost(self) -> int:
        """``minEdit(s, d)``: how many selection attributes the modification touches."""
        return self.source.edit_distance(self.destination)

    @property
    def is_update_only(self) -> bool:
        """Class pairs modify attribute values in place; they never insert/delete tuples."""
        return True

    def changed_slots(self) -> tuple[int, ...]:
        """Positions of the selection attributes whose domain subset changes."""
        return self.source.differing_positions(self.destination)


@dataclass(frozen=True)
class PairSetEffect:
    """The simulated, tuple-class-level effect of applying a set of class pairs."""

    pairs: tuple[ClassPair, ...]
    group_sizes: tuple[int, ...]
    balance: float
    min_edit: int
    modified_attributes: tuple[str, ...]
    modified_tables: tuple[str, ...]
    estimated_result_cost: float
    per_group_result_cost: tuple[float, ...]

    @property
    def group_count(self) -> int:
        """How many result-equivalence classes the modification induces (``k``)."""
        return len(self.group_sizes)

    @property
    def partitions_queries(self) -> bool:
        """Whether the modification distinguishes at least two candidate queries."""
        return self.group_count > 1

    @property
    def modified_tuple_estimate(self) -> int:
        """The ``µ`` of Section 3: one modified base tuple per class pair."""
        return len(self.pairs)


def _per_pair_query_key(
    source_match: bool,
    destination_match: bool,
    projected_change: bool,
) -> tuple:
    """The result-effect key of one pair for one query (see Lemma 5.1).

    Four outcomes are possible: the result is unchanged, loses the modified
    row's projection, gains the new projection, or swaps one for the other.
    When none of the modified attributes is projected, "swap" collapses into
    "unchanged" because the projected values are identical.
    """
    if not projected_change:
        if source_match == destination_match:
            return ("same",)
        return ("remove",) if source_match else ("add",)
    if not source_match and not destination_match:
        return ("same",)
    return ("swap", source_match, destination_match)


def _per_pair_result_edit(
    key: tuple,
    result_arity: int,
    changed_projected_attributes: int,
) -> float:
    """Estimated ``minEdit(R, R_i)`` contribution of one pair under one key."""
    if key[0] == "same":
        return 0.0
    if key[0] in ("remove", "add"):
        return float(result_arity)
    source_match, destination_match = key[1], key[2]
    if source_match and destination_match:
        return float(max(changed_projected_attributes, 1))
    return float(result_arity)


class PairSetSimulator:
    """Precomputes per-pair, per-query effects so pair *sets* evaluate in O(|QC|·|S|).

    Algorithms 3 and 4 evaluate thousands of candidate pair sets against the
    same tuple-class space; the per-(pair, query) reaction keys and result-edit
    contributions never change, so they are computed once per pair on first use
    and combined cheaply for every set containing the pair.
    """

    def __init__(self, space: TupleClassSpace, *, result_arity: int) -> None:
        self.space = space
        self.result_arity = result_arity
        projection = space.queries[0].projection if space.queries else ()
        self._projection_set = set(projection)
        self._pair_cache: dict[ClassPair, tuple[tuple[tuple, ...], tuple[float, ...], tuple[str, ...]]] = {}

    # ------------------------------------------------------------- per pair
    def _pair_data(self, pair: ClassPair) -> tuple[tuple[tuple, ...], tuple[float, ...], tuple[str, ...]]:
        cached = self._pair_cache.get(pair)
        if cached is not None:
            return cached
        space = self.space
        changed = space.changed_attributes(pair.source, pair.destination)
        changed_projected = [a for a in changed if a in self._projection_set]
        projected_change = bool(changed_projected)
        # One batch probe per class: the space's compiled predicates evaluate
        # every candidate against the source/destination classes at once.
        source_matches = space.match_vector(pair.source)
        destination_matches = space.match_vector(pair.destination)
        keys: list[tuple] = []
        edits: list[float] = []
        for source_match, destination_match in zip(source_matches, destination_matches):
            key = _per_pair_query_key(source_match, destination_match, projected_change)
            keys.append(key)
            edits.append(_per_pair_result_edit(key, self.result_arity, len(changed_projected)))
        data = (tuple(keys), tuple(edits), changed)
        self._pair_cache[pair] = data
        return data

    # -------------------------------------------------------------- pair sets
    def effect(self, pairs: Sequence[ClassPair]) -> PairSetEffect:
        """Simulate applying *pairs*: query partition, balance, edit costs.

        The queries are grouped by the tuple of their per-pair keys: two queries
        that react identically to every modification produce the same result on
        the modified database (at the tuple-class level of abstraction).
        ``balance`` follows Section 3 (standard deviation of group sizes divided
        by the number of groups), with the degenerate single-group case mapped
        to infinity so non-distinguishing modifications are never preferred.
        """
        pairs = tuple(pairs)
        per_pair = [self._pair_data(pair) for pair in pairs]

        changed_attribute_names: list[str] = []
        for _, _, changed in per_pair:
            changed_attribute_names.extend(changed)
        changed_attribute_names = list(dict.fromkeys(changed_attribute_names))
        modified_tables = tuple(
            sorted({attribute.partition(".")[0] for attribute in changed_attribute_names})
        )

        groups: dict[tuple, int] = {}
        group_result_costs: dict[tuple, float] = {}
        for query_index in range(len(self.space.queries)):
            signature = tuple(keys[query_index] for keys, _, _ in per_pair)
            groups[signature] = groups.get(signature, 0) + 1
            if signature not in group_result_costs:
                group_result_costs[signature] = sum(
                    edits[query_index] for _, edits, _ in per_pair
                )

        group_sizes = tuple(sorted(groups.values(), reverse=True))
        balance = _balance_score(group_sizes)
        min_edit = sum(pair.edit_cost for pair in pairs)
        per_group_costs = tuple(group_result_costs[key] for key in groups)
        return PairSetEffect(
            pairs=pairs,
            group_sizes=group_sizes,
            balance=balance,
            min_edit=min_edit,
            modified_attributes=tuple(changed_attribute_names),
            modified_tables=modified_tables,
            estimated_result_cost=float(sum(per_group_costs)),
            per_group_result_cost=per_group_costs,
        )


def simulate_pair_set(
    space: TupleClassSpace,
    pairs: Sequence[ClassPair],
    *,
    result_arity: int,
) -> PairSetEffect:
    """One-off simulation of a pair set (convenience wrapper over the simulator)."""
    return PairSetSimulator(space, result_arity=result_arity).effect(pairs)


def _balance_score(group_sizes: Sequence[int]) -> float:
    """``balance = σ / |C|`` with a single group scored as +infinity."""
    if len(group_sizes) <= 1:
        return float("inf")
    mean = sum(group_sizes) / len(group_sizes)
    variance = sum((size - mean) ** 2 for size in group_sizes) / len(group_sizes)
    return (variance ** 0.5) / len(group_sizes)
