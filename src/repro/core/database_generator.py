"""Algorithm 2: the Database Generator module.

Each QFE iteration calls :class:`DatabaseGenerator` with the original pair
``(D, R)`` and the surviving candidate queries ``QC'``. The generator:

1. materializes the full foreign-key join ``T`` of ``D`` and builds the
   tuple-class space of ``T`` relative to ``QC'`` (Section 5.1);
2. enumerates skyline (STC, DTC) pairs with Algorithm 3, bounded by the time
   threshold ``δ``;
3. selects a low-cost subset of pairs with Algorithm 4 under the Section 3
   cost model (or an alternative objective for the user-study baseline);
4. scores candidate materializations — the selected subset first, then the
   skyline singles in balance order — until one concretely distinguishes the
   candidates, retrying past heuristic/concrete disagreements;
5. materializes the winning attempt into ``D'`` and computes the exact
   candidate partition presented to the user.

Since the parallel-round-planner refactor the generator is a thin shell over
:class:`~repro.core.round_planner.RoundPlanner`: step 4 — the per-iteration
hot loop — runs on a pluggable
:class:`~repro.core.execution_backend.ExecutionBackend`, either serially in
process (the differential oracle) or sharded across a pool of worker
processes holding a delta-replicated snapshot of the base state. Results are
bit-identical for every backend and worker count.

The result carries everything the experiment harness reports per iteration
(skyline pair count, timings of the three steps, modification costs).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import QFEConfig
from repro.core.execution_backend import ExecutionBackend, create_backend
from repro.core.round_planner import DatabaseGenerationResult, RoundPlanner
from repro.core.subset_selection import ScoreFunction
from repro.relational.database import Database
from repro.relational.evaluator import JoinCache, SharedSnapshotCache
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation

__all__ = ["DatabaseGenerationResult", "DatabaseGenerator"]


class DatabaseGenerator:
    """Generate a distinguishing modified database for the surviving candidates."""

    def __init__(
        self,
        config: QFEConfig | None = None,
        *,
        score: ScoreFunction | None = None,
        join_cache: JoinCache | None = None,
        backend: ExecutionBackend | None = None,
        workers: int | None = None,
        snapshot_cache: SharedSnapshotCache | None = None,
    ) -> None:
        self.config = config or QFEConfig()
        self.score = score
        if backend is None:
            backend = create_backend(
                workers if workers is not None else self.config.workers,
                self.config.backend,
            )
        # The planner owns the join cache: the original database's joins (and
        # their columnar views / term masks) stay warm across iterations —
        # the session calls generate() with the same ``original`` every
        # round. Entries evict automatically when a database is
        # garbage-collected; only in-place modification of a live cached
        # database requires ``join_cache.invalidate``.
        self.planner = RoundPlanner(
            self.config,
            score=score,
            join_cache=join_cache,
            backend=backend,
            snapshot_cache=snapshot_cache,
        )

    @property
    def join_cache(self) -> JoinCache:
        """The session-wide join cache (shared with the planner)."""
        return self.planner.join_cache

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend the candidate-modification search runs on."""
        return self.planner.backend

    def generate(
        self,
        original: Database,
        result: Relation,
        queries: Sequence[SPJQuery],
    ) -> DatabaseGenerationResult:
        """Produce ``D'`` distinguishing *queries*; raises if no modification helps."""
        return self.planner.plan_round(original, result, queries)

    def close(self) -> None:
        """Release backend resources (worker pools); the generator stays usable."""
        self.planner.close()
