"""Algorithm 2: the Database Generator module.

Each QFE iteration calls :class:`DatabaseGenerator` with the original pair
``(D, R)`` and the surviving candidate queries ``QC'``. The generator:

1. materializes the full foreign-key join ``T`` of ``D`` and builds the
   tuple-class space of ``T`` relative to ``QC'`` (Section 5.1);
2. enumerates skyline (STC, DTC) pairs with Algorithm 3, bounded by the time
   threshold ``δ``;
3. selects a low-cost subset of pairs with Algorithm 4 under the Section 3
   cost model (or an alternative objective for the user-study baseline);
4. materializes the selected pairs into a concrete modified database ``D'``,
   preferring side-effect-free, constraint-preserving changes;
5. verifies by exact evaluation that ``D'`` actually distinguishes the
   candidates, retrying with the next-best pair subsets when the heuristic
   abstraction and the concrete data disagree.

The result carries everything the experiment harness reports per iteration
(skyline pair count, timings of the three steps, modification costs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Sequence

from repro.core.config import QFEConfig
from repro.core.cost_model import CostBreakdown
from repro.core.materialize import MaterializationResult, materialize_pairs
from repro.core.modification import ClassPair, PairSetSimulator
from repro.core.partitioner import QueryPartition, partition_queries
from repro.core.skyline import SkylineResult, skyline_stc_dtc_pairs
from repro.core.subset_selection import ScoreFunction, SubsetSelectionResult, pick_stc_dtc_subset
from repro.core.tuple_class import TupleClassSpace
from repro.exceptions import DatabaseGenerationError
from repro.relational.database import Database
from repro.relational.evaluator import JoinCache
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation

__all__ = ["DatabaseGenerationResult", "DatabaseGenerator"]


@dataclass
class DatabaseGenerationResult:
    """The modified database of one iteration plus all per-step diagnostics."""

    database: Database
    partition: QueryPartition
    materialization: MaterializationResult
    skyline: SkylineResult
    selection: SubsetSelectionResult
    chosen_pairs: tuple[ClassPair, ...]
    chosen_cost: CostBreakdown | None
    skyline_seconds: float
    selection_seconds: float
    materialize_seconds: float
    fallback_attempts: int = 0

    @property
    def total_seconds(self) -> float:
        """Combined Database Generator time for the iteration."""
        return self.skyline_seconds + self.selection_seconds + self.materialize_seconds


class DatabaseGenerator:
    """Generate a distinguishing modified database for the surviving candidates."""

    def __init__(
        self,
        config: QFEConfig | None = None,
        *,
        score: ScoreFunction | None = None,
        join_cache: JoinCache | None = None,
    ) -> None:
        self.config = config or QFEConfig()
        self.score = score
        # Caches the original database's joins (and their columnar views /
        # term masks) across iterations — the session calls generate() with
        # the same ``original`` every round. Entries evict automatically when
        # a database is garbage-collected; only in-place modification of a
        # live cached database requires ``join_cache.invalidate``.
        self.join_cache = join_cache if join_cache is not None else JoinCache()

    def generate(
        self,
        original: Database,
        result: Relation,
        queries: Sequence[SPJQuery],
    ) -> DatabaseGenerationResult:
        """Produce ``D'`` distinguishing *queries*; raises if no modification helps."""
        if len(queries) < 2:
            raise DatabaseGenerationError("need at least two candidate queries to distinguish")
        config = self.config

        # Join only the relations the candidates actually reference (Section 5
        # assumes a shared join schema; this also keeps databases with
        # unrelated extra tables usable).
        referenced = sorted({table for query in queries for table in query.tables})
        try:
            joined = self.join_cache.join_for(original, referenced)
        except Exception as exc:
            raise DatabaseGenerationError(
                f"cannot materialize the join of {referenced}: {exc}"
            ) from exc
        space = TupleClassSpace(joined, queries)
        if space.attribute_count == 0:
            raise DatabaseGenerationError(
                "candidate queries have no selection predicates to distinguish"
            )
        result_arity = result.schema.arity
        simulator = PairSetSimulator(space, result_arity=result_arity)

        started = perf_counter()
        skyline = skyline_stc_dtc_pairs(
            space, config, result_arity=result_arity, simulator=simulator
        )
        skyline_seconds = perf_counter() - started
        if not skyline.pairs:
            raise DatabaseGenerationError("Algorithm 3 found no distinguishing tuple-class pairs")

        started = perf_counter()
        selection = pick_stc_dtc_subset(
            space,
            skyline.pairs,
            config,
            result_arity=result_arity,
            most_balanced_binary_x=skyline.most_balanced_binary_x,
            score=self.score,
            simulator=simulator,
        )
        selection_seconds = perf_counter() - started
        if not selection.found:
            raise DatabaseGenerationError("Algorithm 4 found no distinguishing pair subset")

        # Materialize the chosen subset; if the concrete database fails to
        # split the candidates (side effects, value collisions), fall back to
        # other skyline pairs ordered by their single-pair balance.
        attempts: list[tuple[ClassPair, ...]] = [selection.chosen_pairs]
        ordered_singles = sorted(
            skyline.pairs, key=lambda pair: (skyline.pair_balances.get(pair, float("inf")), str(pair))
        )
        attempts.extend((pair,) for pair in ordered_singles if (pair,) != selection.chosen_pairs)

        started = perf_counter()
        fallback_attempts = 0
        last_error: str | None = None
        for pairs in attempts[: 1 + len(ordered_singles)]:
            materialization = materialize_pairs(space, pairs, original, config)
            if not materialization.applied:
                fallback_attempts += 1
                last_error = "no class pair could be materialized"
                continue
            # Evaluate the candidates on D' through the *derived* cache path:
            # the recorded update-only delta patches the original database's
            # cached join, columnar view and term masks in O(|Δ|), so each
            # verification attempt skips the full join rebuild entirely. The
            # entries die with the attempt's database (weakref finalizer) or
            # with the base entry, whichever goes first.
            if materialization.delta.is_update_only and not materialization.delta.is_empty:
                self.join_cache.derive(original, materialization.delta, materialization.database)
            partition = partition_queries(
                queries,
                materialization.database,
                set_semantics=config.set_semantics,
                result_name=result.schema.name,
                join_cache=self.join_cache,
            )
            if partition.distinguishes:
                materialize_seconds = perf_counter() - started
                return DatabaseGenerationResult(
                    database=materialization.database,
                    partition=partition,
                    materialization=materialization,
                    skyline=skyline,
                    selection=selection,
                    chosen_pairs=tuple(pairs),
                    chosen_cost=selection.chosen_cost if pairs == selection.chosen_pairs else None,
                    skyline_seconds=skyline_seconds,
                    selection_seconds=selection_seconds,
                    materialize_seconds=materialize_seconds,
                    fallback_attempts=fallback_attempts,
                )
            fallback_attempts += 1
            last_error = "materialized database did not distinguish any candidates"
        raise DatabaseGenerationError(
            f"could not generate a distinguishing database: {last_error} "
            f"after {fallback_attempts} attempts"
        )
