"""The Section 7.7 studies: initial-pair size, active-domain entropy, user study.

The paper reports these three experiments only in summary form (details in
the companion technical report): no clear trend for the initial-pair-size and
entropy studies, and — for the simulated replay of the user study — the QFE
cost model finishing with slightly more iterations but lower total user time
than the maximize-subsets alternative. The functions below regenerate each
study and return :class:`~repro.experiments.report.ExperimentTable` objects.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.alternative_cost import max_partitions_score
from repro.core.config import QFEConfig
from repro.datasets import adult
from repro.experiments.report import ExperimentTable
from repro.experiments.runner import prepare_candidates, run_session
from repro.experiments.simulated_user import ResponseTimeModel, simulated_oracle_user
from repro.qbo.config import QBOConfig
from repro.relational.database import Database
from repro.relational.evaluator import evaluate
from repro.relational.relation import Relation
from repro.workloads import build_pair

__all__ = ["initial_pair_size_study", "entropy_study", "user_study"]

_QBO = QBOConfig(threshold_variants=2, max_terms_per_conjunct=3, max_candidates=40)


# ------------------------------------------------------------------ §7.7 size
def _database_subset(database: Database, fraction: float, keep_rows: dict[str, set[int]]) -> Database:
    """A copy of the database keeping a fraction of each relation's tuples.

    Tuples listed in ``keep_rows`` (by relation and tuple id) are always kept
    so the target query's result only shrinks monotonically, mirroring the
    paper's construction ``Q(D_i) ⊆ Q(D_{i+1})``.
    """
    reduced = database.copy()
    for relation in reduced:
        keep = keep_rows.get(relation.name, set())
        tuples = list(relation.tuples)
        budget = max(int(round(len(tuples) * fraction)), len(keep), 1)
        kept = 0
        for row in tuples:
            if row.tuple_id in keep:
                kept += 1
        for row in tuples:
            if kept >= budget:
                if row.tuple_id not in keep:
                    relation.delete(row.tuple_id)
                continue
            if row.tuple_id not in keep:
                kept += 1
    return reduced


def initial_pair_size_study(
    scale: float = 0.12,
    *,
    workload_name: str = "Q2",
    fractions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
) -> ExperimentTable:
    """Effect of the size of the initial ``(D, R)`` pair (Section 7.7).

    Four nested subsets ``D1 ⊂ D2 ⊂ D3 ⊂ D4 = D`` are built; each keeps the
    target query's qualifying base tuples so ``Q(D_i) ⊆ Q(D_{i+1})``.
    """
    database, result, target = build_pair(workload_name, scale)
    # Base tuples participating in the target result must survive subsetting.
    from repro.relational.join import full_join

    joined = full_join(database)
    keep: dict[str, set[int]] = {name: set() for name in database.table_names}
    rows = joined.rows_as_mappings()
    for position, row in enumerate(rows):
        if target.predicate.evaluate_row(row):
            for table in joined.tables:
                keep[table].add(joined.base_tuple_of(position, table))

    table = ExperimentTable(
        title=f"Section 7.7: effect of initial database size ({workload_name})",
        columns=["|D_i| / |D|", "DB tuples", "|R_i|", "# of iterations",
                 "Modification cost", "Execution time (s)"],
    )
    for fraction in fractions:
        subset = _database_subset(database, fraction, keep)
        subset_result = evaluate(target, subset, name="R")
        run = run_session(
            subset, subset_result, target,
            qbo_config=_QBO, feedback="worst",
            workload_name=workload_name, scale=scale,
        )
        table.add_row(
            fraction, subset.total_tuples(), len(subset_result), run.iteration_count,
            round(run.total_modification_cost, 1), round(run.execution_seconds, 2),
        )
    table.notes.append("paper finding: no clear performance trend with initial-pair size")
    return table


# --------------------------------------------------------------- §7.7 entropy
def _coarsen_column(database: Database, table: str, column: str, levels: int) -> Database:
    """Reduce the number of distinct values in one column by bucketing.

    Mirrors the paper's datasets ``D1..D5`` that keep everything identical
    except the number of distinct values in a selected selection attribute.
    """
    coarsened = database.copy()
    relation = coarsened.relation(table)
    values = sorted(
        {v for v in relation.column(column) if v is not None},
        key=lambda v: (isinstance(v, str), v),
    )
    if not values or levels >= len(values):
        return coarsened
    bucket_size = max(1, len(values) // levels)
    mapping = {}
    for index, value in enumerate(values):
        bucket_index = min(index // bucket_size, levels - 1)
        mapping[value] = values[bucket_index * bucket_size]
    for row in list(relation.tuples):
        current = relation.value_of(row, column)
        if current is not None and mapping.get(current, current) != current:
            relation.update_value(row.tuple_id, column, mapping[current])
    return coarsened


def entropy_study(
    scale: float = 0.12,
    *,
    workload_name: str = "Q5",
    column: str = "HR",
    distinct_fractions: Sequence[float] = (1.0, 0.8, 0.6, 0.4, 0.2),
) -> ExperimentTable:
    """Effect of the entropy of a selection attribute's active domain (Section 7.7)."""
    database, result, target = build_pair(workload_name, scale)
    from repro.datasets import baseball

    base_distinct = len(database.relation(baseball.BATTING_TABLE).active_domain(column))
    table = ExperimentTable(
        title=f"Section 7.7: effect of active-domain entropy ({workload_name}, {column})",
        columns=["distinct fraction", "# distinct values", "# of iterations",
                 "Modification cost", "Execution time (s)"],
    )
    for fraction in distinct_fractions:
        levels = max(2, int(round(base_distinct * fraction)))
        variant = _coarsen_column(database, baseball.BATTING_TABLE, column, levels)
        variant_result = evaluate(target, variant, name="R")
        run = run_session(
            variant, variant_result, target,
            qbo_config=_QBO, feedback="worst",
            workload_name=workload_name, scale=scale,
        )
        table.add_row(
            fraction, len(variant.relation(baseball.BATTING_TABLE).active_domain(column)),
            run.iteration_count, round(run.total_modification_cost, 1),
            round(run.execution_seconds, 2),
        )
    table.notes.append("paper finding: no clear performance trend with active-domain entropy")
    return table


# ------------------------------------------------------------- §7.7 user study
def user_study(
    scale: float = 0.1,
    *,
    participants: int = 3,
    time_model: ResponseTimeModel | None = None,
) -> ExperimentTable:
    """The simulated replay of the paper's preliminary user study.

    Three simulated participants each determine the three Adult target queries
    twice: once with the QFE cost model and once with the alternative
    maximize-subsets model. Participants differ in their response-time model
    (faster / average / slower readers). Reported per (participant, query,
    approach): iterations, machine time, simulated user time and total time —
    the paper's comparison is on total time, where QFE wins despite sometimes
    needing more iterations.
    """
    base_model = time_model or ResponseTimeModel()
    participant_models = [
        ResponseTimeModel(
            base=base_model.base * factor,
            per_db_edit=base_model.per_db_edit * factor,
            per_result_edit=base_model.per_result_edit * factor,
            per_option=base_model.per_option * factor,
        )
        for factor in (0.7, 1.0, 1.4)[: max(participants, 1)]
    ]
    table = ExperimentTable(
        title="Section 7.7: simulated user study on the Adult dataset",
        columns=["Participant", "Target", "Approach", "# of iterations",
                 "Machine time (s)", "User time (s)", "Total time (s)", "Identified"],
    )
    database = adult.build_database(scale)
    targets = adult.user_study_queries()
    for target_index, target in enumerate(targets, start=1):
        result = evaluate(target, database, name="R")
        candidates, _ = prepare_candidates(database, result, target, qbo_config=_QBO)
        for participant_index, model in enumerate(participant_models, start=1):
            for approach, score in (("QFE", None), ("max-subsets", max_partitions_score)):
                user = simulated_oracle_user(target, time_model=model)
                run = run_session(
                    database, result, target,
                    candidates=candidates, selector=user, score=score,
                    workload_name=f"U{target_index}", scale=scale,
                )
                identified = run.session.identified_query == target
                machine_time = run.execution_seconds
                user_time = user.total_response_seconds
                table.add_row(
                    f"P{participant_index}", f"U{target_index}", approach,
                    run.iteration_count, round(machine_time, 2), round(user_time, 1),
                    round(machine_time + user_time, 1), identified,
                )
    table.notes.append(
        "paper findings: all participants identified their targets; user response time "
        "dominates; the QFE cost model yields lower total time than the maximize-subsets "
        "alternative even when it needs more iterations"
    )
    return table
