"""Experiment harness: regenerate every table and study of the paper's Section 7."""

from repro.experiments.report import ExperimentTable, render_tables
from repro.experiments.runner import ExperimentRun, prepare_candidates, run_session, run_workload
from repro.experiments.simulated_user import (
    NoisyOracleSelector,
    ResponseTimeModel,
    SimulatedUser,
    simulated_oracle_user,
    simulated_worst_case_user,
)
from repro.experiments.studies import entropy_study, initial_pair_size_study, user_study
from repro.experiments.tables import (
    DEFAULT_SCALE,
    all_tables,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)

__all__ = [
    "ExperimentTable",
    "render_tables",
    "ExperimentRun",
    "run_session",
    "run_workload",
    "prepare_candidates",
    "SimulatedUser",
    "ResponseTimeModel",
    "NoisyOracleSelector",
    "simulated_oracle_user",
    "simulated_worst_case_user",
    "DEFAULT_SCALE",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "all_tables",
    "initial_pair_size_study",
    "entropy_study",
    "user_study",
]
