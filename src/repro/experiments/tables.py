"""Regeneration of every table in the paper's evaluation (Section 7).

Each function reproduces one table as an
:class:`~repro.experiments.report.ExperimentTable` with the same rows/series
the paper reports. Absolute timings differ from the paper (pure Python vs the
authors' C++/MySQL prototype); the *shape* of each table — which quantities
grow, which stay flat, what dominates — is what the reproduction checks.

All functions accept a ``scale`` parameter that shrinks the synthetic
datasets so the whole suite runs on a laptop in minutes; ``scale=1.0``
reproduces the paper's row counts.
"""

from __future__ import annotations

from time import perf_counter
from typing import Sequence

from repro.core.config import QFEConfig
from repro.core.database_generator import DatabaseGenerator
from repro.core.modification import PairSetSimulator
from repro.core.skyline import skyline_stc_dtc_pairs
from repro.core.subset_selection import pick_stc_dtc_subset
from repro.core.tuple_class import TupleClassSpace
from repro.experiments.report import ExperimentTable
from repro.experiments.runner import ExperimentRun, prepare_candidates, run_session
from repro.qbo.config import QBOConfig
from repro.relational.join import full_join
from repro.workloads import build_pair

__all__ = [
    "DEFAULT_SCALE",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "all_tables",
]

#: Default dataset scale for table regeneration: small enough for minutes-long
#: laptop runs, large enough that every workload keeps its paper cardinality.
DEFAULT_SCALE = 0.12

_QBO = QBOConfig(threshold_variants=2, max_terms_per_conjunct=3, max_candidates=40)


def _per_round_table(run: ExperimentRun, title: str) -> ExperimentTable:
    table = ExperimentTable(
        title=title,
        columns=[
            "Iteration No.",
            "# of queries",
            "# of query subsets",
            "# of skyline pairs",
            "Execution time (s)",
            "dbCost",
            "resultCost",
            "avgResultCost",
        ],
        caption=f"workload={run.workload} scale={run.scale} feedback={run.feedback} "
        f"candidates={run.candidate_count}",
    )
    for record in run.iterations:
        table.add_row(
            record.iteration,
            record.candidate_count,
            record.subset_count,
            record.skyline_pair_count,
            record.execution_seconds,
            record.db_cost,
            record.result_cost,
            record.avg_result_cost,
        )
    table.notes.append(
        f"total execution time {run.execution_seconds:.2f}s "
        f"(candidate generation {run.candidate_generation_seconds:.2f}s); "
        f"converged={run.session.converged}"
    )
    return table


def table1(scale: float = DEFAULT_SCALE, *, config: QFEConfig | None = None) -> list[ExperimentTable]:
    """Table 1(a)/(b): per-round statistics for Q1 and Q2 (worst-case feedback)."""
    config = config or QFEConfig()
    tables = []
    for name, label in (("Q1", "Table 1(a): per-round statistics for Q1"),
                        ("Q2", "Table 1(b): per-round statistics for Q2")):
        database, result, target = build_pair(name, scale)
        run = run_session(
            database, result, target,
            config=config, qbo_config=_QBO, feedback="worst",
            workload_name=name, scale=scale,
        )
        tables.append(_per_round_table(run, label))
    return tables


def table2(
    scale: float = DEFAULT_SCALE,
    *,
    betas: Sequence[float] = (1, 2, 3, 4, 5),
    workloads: Sequence[str] = ("Q3", "Q4", "Q5", "Q6"),
) -> ExperimentTable:
    """Table 2: effect of the scale factor β on iterations and modification cost."""
    iteration_columns = [f"iters β={beta:g}" for beta in betas]
    cost_columns = [f"cost β={beta:g}" for beta in betas]
    table = ExperimentTable(
        title="Table 2: effect of β (baseball database)",
        columns=["Query", *iteration_columns, *cost_columns],
    )
    for name in workloads:
        database, result, target = build_pair(name, scale)
        candidates, _ = prepare_candidates(database, result, target, qbo_config=_QBO)
        iterations = []
        costs = []
        for beta in betas:
            run = run_session(
                database, result, target,
                candidates=candidates,
                config=QFEConfig(beta=float(beta)),
                feedback="worst", workload_name=name, scale=scale,
            )
            iterations.append(run.iteration_count)
            costs.append(round(run.total_modification_cost, 1))
        table.add_row(name, *iterations, *costs)
    return table


def table3(
    scale: float = DEFAULT_SCALE,
    *,
    deltas: Sequence[float] = (0.1, 0.2, 0.5, 1, 2),
    workloads: Sequence[str] = ("Q1", "Q2"),
) -> list[ExperimentTable]:
    """Table 3(a)/(b): effect of the time threshold δ for the scientific database.

    The paper sweeps δ up to 10 s; the default sweep here stops at 2 s to keep
    the regeneration quick — pass ``deltas=(0.1, 0.2, 0.5, 1, 2, 5, 10)`` for
    the full sweep.
    """
    tables = []
    for name in workloads:
        database, result, target = build_pair(name, scale)
        candidates, _ = prepare_candidates(database, result, target, qbo_config=_QBO)
        table = ExperimentTable(
            title=f"Table 3: effect of δ on {name} (scientific database)",
            columns=["δ (s)", "# of iterations", "Modification cost", "Execution time (s)"],
        )
        for delta in deltas:
            run = run_session(
                database, result, target,
                candidates=candidates,
                config=QFEConfig(delta_seconds=float(delta)),
                feedback="worst", workload_name=name, scale=scale,
            )
            table.add_row(
                delta, run.iteration_count, round(run.total_modification_cost, 1),
                round(run.execution_seconds, 2),
            )
        tables.append(table)
    return tables


def table4(scale: float = DEFAULT_SCALE, *, config: QFEConfig | None = None) -> ExperimentTable:
    """Table 4: per-iteration |SP| and Algorithm 4 runtime for Q1 and Q2."""
    config = config or QFEConfig()
    table = ExperimentTable(
        title="Table 4: performance of Algorithm 4 (scientific database)",
        columns=["Query", "Iteration", "# of skyline pairs", "Alg. 4 time (ms)"],
    )
    for name in ("Q1", "Q2"):
        database, result, target = build_pair(name, scale)
        run = run_session(
            database, result, target,
            config=config, qbo_config=_QBO, feedback="worst",
            workload_name=name, scale=scale,
        )
        for record in run.iterations:
            table.add_row(
                name, record.iteration, record.skyline_pair_count,
                round(record.selection_seconds * 1000.0, 3),
            )
    return table


def table5(
    scale: float = DEFAULT_SCALE,
    *,
    pair_counts: Sequence[int] = (50, 100, 200, 400),
    workload_name: str = "Q1",
) -> ExperimentTable:
    """Table 5: Algorithm 4 runtime as the skyline set |SP| grows.

    The paper grows |SP| up to 1000 by raising δ; here the skyline enumeration
    is run once with a generous budget and truncated to each requested size,
    which isolates exactly the quantity the paper varies (the input size of
    Algorithm 4).
    """
    database, result, target = build_pair(workload_name, scale)
    candidates, _ = prepare_candidates(database, result, target, qbo_config=_QBO)
    joined = full_join(database)
    space = TupleClassSpace(joined, candidates)
    simulator = PairSetSimulator(space, result_arity=result.schema.arity)
    config = QFEConfig(delta_seconds=10.0, max_skyline_pairs=max(pair_counts))
    skyline = skyline_stc_dtc_pairs(
        space, config, result_arity=result.schema.arity, simulator=simulator
    )
    table = ExperimentTable(
        title="Table 5: execution time of Algorithm 4 for varying |SP|",
        columns=["# of skyline pairs", "Exec. time (s)", "chosen |S|", "chosen k"],
        caption=f"workload={workload_name} scale={scale} (skyline enumerated once: "
        f"{skyline.pair_count} pairs available)",
    )
    for count in pair_counts:
        subset = skyline.pairs[: min(count, skyline.pair_count)]
        started = perf_counter()
        selection = pick_stc_dtc_subset(
            space, subset, config,
            result_arity=result.schema.arity,
            most_balanced_binary_x=skyline.most_balanced_binary_x,
            simulator=simulator,
        )
        elapsed = perf_counter() - started
        chosen_k = selection.chosen_effect.group_count if selection.chosen_effect else 0
        table.add_row(len(subset), round(elapsed, 4), len(selection.chosen_pairs), chosen_k)
    return table


def table6(
    scale: float = DEFAULT_SCALE,
    *,
    candidate_counts: Sequence[int] = (5, 10, 20, 40, 60, 80),
    workload_name: str = "Q2",
) -> ExperimentTable:
    """Table 6: effect of the number of candidate queries on Q2."""
    database, result, target = build_pair(workload_name, scale)
    table = ExperimentTable(
        title="Table 6: effect of the number of candidate queries on Q2",
        columns=[
            "# of candidate queries",
            "# of selection attributes",
            "# of iterations",
            "Execution time (s)",
            "Modification cost",
            "Avg. dbCost per round",
            "Avg. resultCost per result set",
        ],
    )
    for count in candidate_counts:
        candidates, _ = prepare_candidates(
            database, result, target, qbo_config=_QBO, candidate_count=count
        )
        run = run_session(
            database, result, target,
            candidates=candidates, feedback="worst",
            workload_name=workload_name, scale=scale,
        )
        selection_attributes = {
            attribute for query in candidates for attribute in query.selection_attributes()
        }
        total_subsets = sum(record.subset_count for record in run.iterations)
        avg_db = (
            sum(record.db_cost for record in run.iterations) / max(run.iteration_count, 1)
        )
        avg_result = (
            sum(record.result_cost for record in run.iterations) / max(total_subsets, 1)
        )
        table.add_row(
            len(candidates), len(selection_attributes), run.iteration_count,
            round(run.execution_seconds, 2), round(run.total_modification_cost, 1),
            round(avg_db, 2), round(avg_result, 2),
        )
    return table


def table7(
    scale: float = DEFAULT_SCALE,
    *,
    candidate_counts: Sequence[int] = (5, 10, 20, 40, 60, 80),
    workload_name: str = "Q2",
) -> ExperimentTable:
    """Table 7: breakdown of the first iteration's running time.

    The three steps of Algorithm 2 — skyline enumeration (Algorithm 3),
    subset selection (Algorithm 4) and the database modification step — are
    timed for the first iteration at each candidate-set size.
    """
    database, result, target = build_pair(workload_name, scale)
    table = ExperimentTable(
        title="Table 7: breakdown of the first iteration's running time (s)",
        columns=["Query set size", "Algorithm 3", "Algorithm 4", "Modify DB", "Total"],
    )
    generator = DatabaseGenerator(QFEConfig())
    for count in candidate_counts:
        candidates, _ = prepare_candidates(
            database, result, target, qbo_config=_QBO, candidate_count=count
        )
        generation = generator.generate(database, result, candidates)
        table.add_row(
            len(candidates),
            round(generation.skyline_seconds, 4),
            round(generation.selection_seconds, 4),
            round(generation.materialize_seconds, 4),
            round(generation.total_seconds, 4),
        )
    return table


def all_tables(scale: float = DEFAULT_SCALE) -> list[ExperimentTable]:
    """Regenerate every table of the paper at the given scale."""
    tables: list[ExperimentTable] = []
    tables.extend(table1(scale))
    tables.append(table2(scale))
    tables.extend(table3(scale))
    tables.append(table4(scale))
    tables.append(table5(scale))
    tables.append(table6(scale))
    tables.append(table7(scale))
    return tables
