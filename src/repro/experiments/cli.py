"""Command-line entry point for regenerating the paper's tables and studies.

Installed as the ``qfe-experiments`` console script::

    qfe-experiments list
    qfe-experiments table1 --scale 0.12
    qfe-experiments all --scale 0.12 --output results.txt
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.core.config import nonnegative_int
from repro.experiments import studies, tables
from repro.experiments.report import ExperimentTable, render_tables
from repro.experiments.runner import set_default_workers, set_transcript_sink

__all__ = ["main", "build_parser"]


def _as_list(result) -> list[ExperimentTable]:
    if isinstance(result, ExperimentTable):
        return [result]
    return list(result)


_EXPERIMENTS: dict[str, Callable[[float], list[ExperimentTable]]] = {
    "table1": lambda scale: _as_list(tables.table1(scale)),
    "table2": lambda scale: _as_list(tables.table2(scale)),
    "table3": lambda scale: _as_list(tables.table3(scale)),
    "table4": lambda scale: _as_list(tables.table4(scale)),
    "table5": lambda scale: _as_list(tables.table5(scale)),
    "table6": lambda scale: _as_list(tables.table6(scale)),
    "table7": lambda scale: _as_list(tables.table7(scale)),
    "size-study": lambda scale: _as_list(studies.initial_pair_size_study(scale)),
    "entropy-study": lambda scale: _as_list(studies.entropy_study(scale)),
    "user-study": lambda scale: _as_list(studies.user_study(scale)),
}


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the experiments CLI."""
    parser = argparse.ArgumentParser(
        prog="qfe-experiments",
        description="Regenerate the tables and studies of the QFE paper (VLDB 2015).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all", "list"],
        help="which experiment to run ('all' runs everything, 'list' shows the options)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=tables.DEFAULT_SCALE,
        help="dataset scale factor (1.0 = the paper's full row counts)",
    )
    parser.add_argument(
        "--output",
        type=str,
        default=None,
        help="write the rendered tables to this file instead of stdout",
    )
    parser.add_argument(
        "--workers",
        type=nonnegative_int,
        default=None,
        help="worker processes for every session's round-planner search "
             "(0/1 = serial; omit to defer to each session's config; "
             "regenerated numbers are identical at any count)",
    )
    parser.add_argument(
        "--transcript-out",
        type=str,
        default=None,
        metavar="PATH",
        help="write the machine-readable transcript of every session the "
             "experiment runs (rounds, deltas, choices, timings) as one JSON "
             "array to this file",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in sorted(_EXPERIMENTS):
            print(name)
        return 0

    # When given, install the worker count process-wide so every table/study
    # session's round planner picks it up; restore afterwards (library
    # callers of main() must not inherit the CLI's setting). When omitted,
    # each session's own config decides. The transcript sink works the same
    # way: installed for the duration of the run, then restored.
    previous_workers = set_default_workers(args.workers) if args.workers is not None else None
    transcripts: list | None = [] if args.transcript_out else None
    previous_sink = set_transcript_sink(transcripts) if transcripts is not None else None
    try:
        if args.experiment == "all":
            produced: list[ExperimentTable] = []
            for name in sorted(_EXPERIMENTS):
                produced.extend(_EXPERIMENTS[name](args.scale))
        else:
            produced = _EXPERIMENTS[args.experiment](args.scale)
    finally:
        if args.workers is not None:
            set_default_workers(previous_workers)
        if transcripts is not None:
            set_transcript_sink(previous_sink)

    if transcripts is not None:
        import json

        with open(args.transcript_out, "w", encoding="utf-8") as handle:
            json.dump(transcripts, handle, indent=2, sort_keys=True)
            handle.write("\n")

    text = render_tables(produced)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
