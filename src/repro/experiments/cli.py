"""Command-line entry point for regenerating the paper's tables and studies.

Installed as the ``qfe-experiments`` console script (with a
``repro-experiments`` alias)::

    qfe-experiments list
    qfe-experiments table1 --scale 0.12
    qfe-experiments all --scale 0.12 --output results.txt

The ``scenarios`` experiment runs the scenario engine's scale sweep instead
of a paper table: it generates the named scenarios at every requested scale,
cross-checks every generated query against the SQLite oracle, runs each
scenario end to end on the serial and process-pool backends (canonical
transcripts must be bit-identical), and records the per-scale trajectory
into ``benchmarks/BENCH_scenarios.json``::

    repro-experiments scenarios --seed 7 --scales 0.1,0.5,1.0
    repro-experiments scenarios --scenarios mixed --scales 0.05 --workers 4
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.core.config import BACKEND_CHOICES, backend_name, nonnegative_int
from repro.experiments import studies, tables
from repro.obs.trace import start_tracing, stop_tracing
from repro.experiments.report import ExperimentTable, render_tables
from repro.experiments.runner import (
    set_default_backend,
    set_default_workers,
    set_transcript_sink,
)

__all__ = ["main", "build_parser"]


def _as_list(result) -> list[ExperimentTable]:
    if isinstance(result, ExperimentTable):
        return [result]
    return list(result)


_EXPERIMENTS: dict[str, Callable[[float], list[ExperimentTable]]] = {
    "table1": lambda scale: _as_list(tables.table1(scale)),
    "table2": lambda scale: _as_list(tables.table2(scale)),
    "table3": lambda scale: _as_list(tables.table3(scale)),
    "table4": lambda scale: _as_list(tables.table4(scale)),
    "table5": lambda scale: _as_list(tables.table5(scale)),
    "table6": lambda scale: _as_list(tables.table6(scale)),
    "table7": lambda scale: _as_list(tables.table7(scale)),
    "size-study": lambda scale: _as_list(studies.initial_pair_size_study(scale)),
    "entropy-study": lambda scale: _as_list(studies.entropy_study(scale)),
    "user-study": lambda scale: _as_list(studies.user_study(scale)),
}


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the experiments CLI."""
    parser = argparse.ArgumentParser(
        prog="qfe-experiments",
        description="Regenerate the tables and studies of the QFE paper (VLDB 2015).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["scenarios", "all", "list"],
        help="which experiment to run ('all' runs every paper table/study, "
             "'list' shows the options, 'scenarios' sweeps generated "
             "scenarios across scale factors)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=tables.DEFAULT_SCALE,
        help="dataset scale factor (1.0 = the paper's full row counts)",
    )
    parser.add_argument(
        "--output",
        type=str,
        default=None,
        help="write the rendered tables to this file instead of stdout",
    )
    parser.add_argument(
        "--workers",
        type=nonnegative_int,
        default=None,
        help="worker processes for every session's round-planner search "
             "(0/1 = serial; omit to defer to each session's config; "
             "regenerated numbers are identical at any count)",
    )
    parser.add_argument(
        "--backend",
        type=backend_name,
        default=None,
        metavar="NAME",
        help="execution backend for every session's round-planner search: "
             f"{', '.join(BACKEND_CHOICES)} (omit to defer to each session's "
             "config; transcripts are identical for every backend)",
    )
    parser.add_argument(
        "--transcript-out",
        type=str,
        default=None,
        metavar="PATH",
        help="write the machine-readable transcript of every session the "
             "experiment runs (rounds, deltas, choices, timings) as one JSON "
             "array to this file",
    )
    parser.add_argument(
        "--trace-out",
        type=str,
        default=None,
        metavar="PATH",
        help="write round-lifecycle spans for every session the experiment "
             "runs as JSON lines to this file (inspect with "
             "`qfe-trace summary PATH`; tracing never changes results)",
    )
    scenario_group = parser.add_argument_group(
        "scenario sweep", "options for the 'scenarios' experiment"
    )
    scenario_group.add_argument(
        "--seed",
        type=int,
        default=None,
        help="scenario generator seed (default: the library's base seed)",
    )
    scenario_group.add_argument(
        "--scales",
        type=str,
        default="0.1,0.5,1.0",
        metavar="S1,S2,...",
        help="comma-separated scale factors to sweep (default 0.1,0.5,1.0)",
    )
    scenario_group.add_argument(
        "--scenarios",
        type=str,
        default=None,
        metavar="NAME1,NAME2,...",
        help="comma-separated scenario presets to sweep (default: the whole catalog)",
    )
    scenario_group.add_argument(
        "--candidates",
        type=nonnegative_int,
        default=8,
        help="candidate queries per scenario session (default 8)",
    )
    scenario_group.add_argument(
        "--bench-out",
        type=str,
        default=None,
        metavar="PATH",
        help="where to write the per-scale trajectory JSON "
             "(default benchmarks/BENCH_scenarios.json; 'none' disables)",
    )
    return parser


def _parse_scales(text: str) -> list[float]:
    import math

    try:
        scales = [float(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(f"--scales must be a comma-separated float list, got {text!r}")
    # Note not(> 0), not (<= 0): NaN fails every comparison, so 'nan' would
    # otherwise sail through and detonate deep inside the generator.
    if not scales or any(not (scale > 0) or math.isinf(scale) for scale in scales):
        raise SystemExit(
            f"--scales must name at least one positive finite scale, got {text!r}"
        )
    return scales


def _run_scenarios(args) -> int:
    from repro.scenarios.sweep import DEFAULT_BENCH_PATH, run_sweep, sweep_table

    if args.bench_out is None:
        bench_out = DEFAULT_BENCH_PATH
    elif args.bench_out.lower() == "none":
        bench_out = None
    else:
        bench_out = args.bench_out
    names = (
        [part.strip() for part in args.scenarios.split(",") if part.strip()]
        if args.scenarios
        else None
    )
    if names:
        # Resolve preset names up front so a typo is a clean usage error, not
        # a traceback (and internal engine errors are never masked as one).
        from repro.scenarios.catalog import get_scenario

        for name in names:
            try:
                get_scenario(name)
            except KeyError as exc:
                raise SystemExit(f"error: {exc.args[0]}")
    # 0/1 workers skips the pooled leg entirely; default is a 2-worker pool
    # so every sweep point also proves serial-vs-pooled transcript identity.
    workers = 2 if args.workers is None else args.workers
    payload = run_sweep(
        names,
        _parse_scales(args.scales),
        seed=args.seed,
        workers=workers,
        candidate_count=args.candidates,
        out_path=bench_out,
    )
    text = render_tables([sweep_table(payload)])
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    if bench_out is not None:
        print(f"\ntrajectory written to {bench_out}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in sorted(_EXPERIMENTS) + ["scenarios"]:
            print(name)
        return 0

    # The tracer is installed process-wide for the whole experiment (every
    # session the run spawns contributes spans) and always uninstalled on the
    # way out so library callers of main() never inherit it.
    if args.trace_out:
        start_tracing(args.trace_out)
    try:
        if args.experiment == "scenarios":
            return _run_scenarios(args)
        return _run_tables(args)
    finally:
        if args.trace_out:
            stop_tracing()


def _run_tables(args) -> int:
    # When given, install the worker count process-wide so every table/study
    # session's round planner picks it up; restore afterwards (library
    # callers of main() must not inherit the CLI's setting). When omitted,
    # each session's own config decides. The transcript sink works the same
    # way: installed for the duration of the run, then restored.
    previous_workers = set_default_workers(args.workers) if args.workers is not None else None
    previous_backend = set_default_backend(args.backend) if args.backend is not None else None
    transcripts: list | None = [] if args.transcript_out else None
    previous_sink = set_transcript_sink(transcripts) if transcripts is not None else None
    try:
        if args.experiment == "all":
            produced: list[ExperimentTable] = []
            for name in sorted(_EXPERIMENTS):
                produced.extend(_EXPERIMENTS[name](args.scale))
        else:
            produced = _EXPERIMENTS[args.experiment](args.scale)
    finally:
        if args.workers is not None:
            set_default_workers(previous_workers)
        if args.backend is not None:
            set_default_backend(previous_backend)
        if transcripts is not None:
            set_transcript_sink(previous_sink)

    if transcripts is not None:
        import json

        with open(args.transcript_out, "w", encoding="utf-8") as handle:
            json.dump(transcripts, handle, indent=2, sort_keys=True)
            handle.write("\n")

    text = render_tables(produced)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
