"""Simulated users for automated experiments and the user-study reproduction.

Sections 7.2–7.6 automate result feedback in two modes: *worst-case* (always
keep the largest candidate subset) and *target-aware* (always keep the subset
containing the target query). Section 7.7's user study additionally involves
human response times that dominate the per-iteration wall clock (92.4 % on
average, between 2 s and 85 s per answer).

This module wraps the core selectors with a deterministic response-time model
so the user-study comparison (QFE cost model vs the maximize-subsets
alternative) can be reproduced without human participants: response time
grows with the amount of *new information* the user must absorb — the
database delta plus the per-option result deltas — which is exactly the
quantity the paper's cost model is designed to minimize.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.feedback import (
    NONE_OF_THE_ABOVE,
    FeedbackRound,
    OracleSelector,
    ResultSelector,
    WorstCaseSelector,
)
from repro.core.partitioner import QueryPartition
from repro.relational.query import SPJQuery

__all__ = [
    "ResponseTimeModel",
    "SimulatedUser",
    "simulated_oracle_user",
    "simulated_worst_case_user",
    "NoisyOracleSelector",
]


@dataclass(frozen=True)
class ResponseTimeModel:
    """A linear model of how long a user needs to answer one feedback round.

    ``seconds = base + per_db_edit · |Δ(D, D')| + per_result_edit · Σ|Δ(R, R_i)|
    + per_option · k``, clamped into ``[minimum, maximum]`` — the paper's
    observed range was 2 s to 85 s.
    """

    base: float = 2.0
    per_db_edit: float = 1.5
    per_result_edit: float = 0.6
    per_option: float = 1.0
    minimum: float = 2.0
    maximum: float = 85.0

    def response_seconds(self, round_: FeedbackRound) -> float:
        """Predicted response time for one feedback round."""
        db_edits = round_.database_delta.cost
        result_edits = sum(option.delta.cost for option in round_.options)
        raw = (
            self.base
            + self.per_db_edit * db_edits
            + self.per_result_edit * result_edits
            + self.per_option * round_.option_count
        )
        return max(self.minimum, min(self.maximum, raw))


@dataclass
class SimulatedUser:
    """A selector wrapper that records simulated response times per round."""

    selector: ResultSelector
    time_model: ResponseTimeModel = field(default_factory=ResponseTimeModel)
    response_times: list[float] = field(default_factory=list)
    rounds_seen: int = 0

    def select(self, round_: FeedbackRound, partition: QueryPartition) -> int:
        self.rounds_seen += 1
        self.response_times.append(self.time_model.response_seconds(round_))
        return self.selector.select(round_, partition)

    @property
    def total_response_seconds(self) -> float:
        """Total simulated user time across all answered rounds."""
        return sum(self.response_times)


def simulated_oracle_user(
    target: SPJQuery,
    *,
    time_model: ResponseTimeModel | None = None,
    set_semantics: bool = False,
) -> SimulatedUser:
    """A simulated participant who recognizes the target query's results."""
    return SimulatedUser(
        OracleSelector(target, set_semantics=set_semantics),
        time_model or ResponseTimeModel(),
    )


def simulated_worst_case_user(*, time_model: ResponseTimeModel | None = None) -> SimulatedUser:
    """A simulated worst-case participant (always keeps the largest subset)."""
    return SimulatedUser(WorstCaseSelector(), time_model or ResponseTimeModel())


class NoisyOracleSelector:
    """An oracle that occasionally rejects every option ("none of the above").

    Models a user who fails to recognize the correct result in a round; the
    session reacts by regenerating candidates, exercising the Section 2 escape
    hatch. The error positions are deterministic for a given seed.
    """

    def __init__(self, target: SPJQuery, *, error_rate: float = 0.1, seed: int = 7) -> None:
        if not 0.0 <= error_rate < 1.0:
            raise ValueError("error_rate must be in [0, 1)")
        self._oracle = OracleSelector(target)
        self._rng = random.Random(seed)
        self.error_rate = error_rate
        self.errors_made = 0

    def select(self, round_: FeedbackRound, partition: QueryPartition) -> int:
        if self._rng.random() < self.error_rate:
            self.errors_made += 1
            return NONE_OF_THE_ABOVE
        return self._oracle.select(round_, partition)
