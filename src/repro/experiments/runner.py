"""Experiment runner: one call = one QFE session over a paper workload.

The runner standardizes how every table and study of Section 7 obtains its
numbers: build (or accept) the workload's ``(D, R)`` pair, obtain candidate
queries (from the QBO generator, optionally expanded by constant mutation to
a requested size, always including the target query so target-aware feedback
is meaningful), run the session under the requested feedback mode and
configuration, and return the per-iteration records plus aggregate figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

from repro.core.config import QFEConfig, backend_name
from repro.core.feedback import OracleSelector, ResultSelector, WorstCaseSelector
from repro.core.session import IterationRecord, QFESession, SessionResult
from repro.core.subset_selection import ScoreFunction
from repro.core.timing import Stopwatch
from repro.exceptions import NoCandidateQueriesError
from repro.experiments.simulated_user import SimulatedUser
from repro.qbo.config import QBOConfig
from repro.qbo.generator import QueryGenerator
from repro.qbo.mutation import expand_candidate_set
from repro.relational.database import Database
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation
from repro.workloads import build_pair

__all__ = [
    "ExperimentRun",
    "prepare_candidates",
    "run_workload",
    "run_session",
    "set_default_workers",
    "set_default_backend",
    "set_transcript_sink",
]

FeedbackMode = Literal["worst", "oracle"]

_DEFAULT_QBO = QBOConfig(threshold_variants=2, max_terms_per_conjunct=3, max_candidates=60)

#: Process-wide default for the round planner's worker count. ``None`` defers
#: to each session's config; the experiments CLI sets it from ``--workers`` so
#: every table/study regeneration fans out without threading a parameter
#: through every table function.
_DEFAULT_WORKERS: int | None = None


def set_default_workers(workers: int | None) -> int | None:
    """Set the process-wide default worker count; returns the previous value."""
    global _DEFAULT_WORKERS
    if workers is not None and workers < 0:
        raise ValueError("workers must be non-negative")
    previous = _DEFAULT_WORKERS
    _DEFAULT_WORKERS = workers
    return previous


#: Process-wide default for the execution-backend name, the ``--backend``
#: counterpart of :data:`_DEFAULT_WORKERS`. ``None`` defers to each session's
#: config (whose own default is ``"auto"``).
_DEFAULT_BACKEND: str | None = None


def set_default_backend(backend: str | None) -> str | None:
    """Set the process-wide default backend name; returns the previous value."""
    global _DEFAULT_BACKEND
    if backend is not None:
        backend = backend_name(backend)
    previous = _DEFAULT_BACKEND
    _DEFAULT_BACKEND = backend
    return previous


#: Process-wide sink collecting the machine-readable transcript of every
#: session :func:`run_session` executes. The experiments CLI installs a list
#: here for ``--transcript-out`` — table/study code stays oblivious — and
#: restores the previous value afterwards.
_TRANSCRIPT_SINK: list | None = None


def set_transcript_sink(sink: list | None) -> list | None:
    """Install a list collecting per-session transcripts; returns the previous sink."""
    global _TRANSCRIPT_SINK
    previous = _TRANSCRIPT_SINK
    _TRANSCRIPT_SINK = sink
    return previous


@dataclass
class ExperimentRun:
    """The outcome of one experiment session plus the inputs that produced it."""

    workload: str
    scale: float
    feedback: str
    config: QFEConfig
    candidate_count: int
    session: SessionResult
    candidate_generation_seconds: float
    simulated_user: SimulatedUser | None = None
    #: Canonical (timing-free) transcript, captured when ``run_session`` was
    #: asked to; byte-identical across backends and worker counts.
    transcript: dict | None = None

    @property
    def iterations(self) -> list[IterationRecord]:
        """Per-iteration records of the session."""
        return self.session.iterations

    @property
    def iteration_count(self) -> int:
        """Number of feedback rounds."""
        return self.session.iteration_count

    @property
    def total_modification_cost(self) -> float:
        """Total database + result modification cost over the session."""
        return self.session.total_modification_cost

    @property
    def execution_seconds(self) -> float:
        """Candidate generation plus all iteration execution time."""
        return self.candidate_generation_seconds + sum(
            record.execution_seconds for record in self.iterations
        )


def prepare_candidates(
    database: Database,
    result: Relation,
    target: SPJQuery,
    *,
    qbo_config: QBOConfig | None = None,
    candidate_count: int | None = None,
    include_target: bool = True,
) -> tuple[list[SPJQuery], float]:
    """Generate (and optionally resize) the candidate set for an experiment.

    Returns the candidate list and the generation wall time. When
    ``candidate_count`` is given the list is truncated or expanded (by
    constant mutation, Section 7.6's device) to that size.
    """
    watch = Stopwatch()
    generator = QueryGenerator(qbo_config or _DEFAULT_QBO)
    try:
        candidates = generator.generate(database, result)
    except NoCandidateQueriesError:
        # The configured search space missed every consistent query (possible
        # at very small dataset scales); fall back to the target plus mutants.
        candidates = []
    if include_target and not any(candidate == target for candidate in candidates):
        candidates = [target] + candidates
    if len(candidates) < 2:
        # A single candidate would make the session trivially converge with
        # zero feedback rounds; pad with result-preserving constant mutants so
        # every experiment actually exercises the winnowing loop.
        candidates = expand_candidate_set(database, result, candidates, max(candidate_count or 0, 10))
    if candidate_count is not None:
        if len(candidates) > candidate_count:
            kept = candidates[:candidate_count]
            if include_target and not any(candidate == target for candidate in kept):
                kept[-1] = target
            candidates = kept
        elif len(candidates) < candidate_count:
            candidates = expand_candidate_set(database, result, candidates, candidate_count)
    elapsed = watch.elapsed()
    return candidates, elapsed


def _selector_for(feedback: FeedbackMode, target: SPJQuery) -> ResultSelector:
    if feedback == "worst":
        return WorstCaseSelector()
    if feedback == "oracle":
        return OracleSelector(target)
    raise ValueError(f"unknown feedback mode {feedback!r}")


def run_session(
    database: Database,
    result: Relation,
    target: SPJQuery,
    *,
    candidates: Sequence[SPJQuery] | None = None,
    config: QFEConfig | None = None,
    qbo_config: QBOConfig | None = None,
    candidate_count: int | None = None,
    feedback: FeedbackMode = "worst",
    selector: ResultSelector | None = None,
    score: ScoreFunction | None = None,
    workload_name: str = "custom",
    scale: float = 1.0,
    workers: int | None = None,
    backend=None,
    join_cache=None,
    snapshot_cache=None,
    capture_transcript: bool = False,
) -> ExperimentRun:
    """Run one QFE session over an explicit ``(D, R, target)`` triple.

    ``workers`` selects the round planner's execution backend (0/1 serial,
    ≥2 a process pool); when omitted, the process-wide default installed by
    :func:`set_default_workers` applies, then the config's ``workers`` field.
    An explicit ``backend`` (an :class:`~repro.core.execution_backend.\
ExecutionBackend`) overrides both and is *not* owned by the session — the
    scenario sweep reuses one process pool across many sessions this way.
    ``join_cache``/``snapshot_cache`` are likewise shared-not-owned when
    given: passing the same pair across several ``run_session`` calls over
    the same base database makes later sessions start warm (no cold join,
    no snapshot rebuild), which is how the sweep's pooled leg measures the
    steady-state of the warm backend. ``capture_transcript`` records the
    canonical (timing-free) transcript on the returned run, the
    byte-comparable form the differential harnesses use.
    """
    config = config or QFEConfig()
    if workers is None:
        workers = _DEFAULT_WORKERS
    if backend is None and _DEFAULT_BACKEND is not None and config.backend == "auto":
        # The CLI's --backend default applies only where the session's own
        # config did not already pick a backend explicitly.
        config = config.with_overrides(backend=_DEFAULT_BACKEND)
    if candidates is None:
        candidate_list, generation_seconds = prepare_candidates(
            database,
            result,
            target,
            qbo_config=qbo_config,
            candidate_count=candidate_count,
        )
    else:
        candidate_list, generation_seconds = list(candidates), 0.0
    chosen_selector = selector if selector is not None else _selector_for(feedback, target)
    session = QFESession(
        database,
        result,
        candidates=candidate_list,
        config=config,
        score=score,
        workers=workers,
        backend=backend,
        join_cache=join_cache,
        snapshot_cache=snapshot_cache,
    )
    outcome = session.run(chosen_selector)
    canonical_transcript: dict | None = None
    if capture_transcript:
        from repro.service.checkpoint import session_transcript

        canonical_transcript = session_transcript(session, workload=workload_name)
    if _TRANSCRIPT_SINK is not None:
        from repro.service.checkpoint import session_transcript

        _TRANSCRIPT_SINK.append(
            {
                "workload": workload_name,
                "scale": scale,
                "feedback": feedback if selector is None else type(chosen_selector).__name__,
                "transcript": session_transcript(
                    session, workload=workload_name, include_timings=True
                ),
            }
        )
    simulated = chosen_selector if isinstance(chosen_selector, SimulatedUser) else None
    return ExperimentRun(
        workload=workload_name,
        scale=scale,
        feedback=feedback if selector is None else type(chosen_selector).__name__,
        config=config,
        candidate_count=len(candidate_list),
        session=outcome,
        candidate_generation_seconds=generation_seconds,
        simulated_user=simulated,
        transcript=canonical_transcript,
    )


def run_workload(
    name: str,
    *,
    scale: float = 1.0,
    config: QFEConfig | None = None,
    qbo_config: QBOConfig | None = None,
    candidate_count: int | None = None,
    feedback: FeedbackMode = "worst",
    selector: ResultSelector | None = None,
    score: ScoreFunction | None = None,
    workers: int | None = None,
    backend=None,
    capture_transcript: bool = False,
) -> ExperimentRun:
    """Run one QFE session over a named workload.

    Accepts the paper workloads (``Q1``…``Q6``, ``U1``…``U3``) and generated
    scenario workloads (``scenario:<preset>[@seed]``).
    """
    database, result, target = build_pair(name, scale)
    run = run_session(
        database,
        result,
        target,
        config=config,
        qbo_config=qbo_config,
        candidate_count=candidate_count,
        feedback=feedback,
        selector=selector,
        score=score,
        workload_name=name,
        scale=scale,
        workers=workers,
        backend=backend,
        capture_transcript=capture_transcript,
    )
    return run
