"""Plain-text table rendering for the experiment harness.

Every experiment returns an :class:`ExperimentTable`: named columns, a list
of rows, optional caption and notes. The renderer prints fixed-width text
tables that mirror the layout of the paper's Tables 1–7, so benchmark output
can be eyeballed against the paper directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["ExperimentTable", "format_value", "render_tables"]


def format_value(value: Any) -> str:
    """Format one table cell (floats get a compact, stable representation)."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


@dataclass
class ExperimentTable:
    """A named table of experiment results."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    caption: str = ""
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append one row (must match the number of columns)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells but table {self.title!r} has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(values)

    def as_dicts(self) -> list[dict[str, Any]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> list[Any]:
        """All values of one column."""
        index = list(self.columns).index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        """A fixed-width text rendering of the table."""
        headers = [str(c) for c in self.columns]
        formatted = [[format_value(cell) for cell in row] for row in self.rows]
        widths = [len(h) for h in headers]
        for row in formatted:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title]
        if self.caption:
            lines.append(self.caption)
        lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
        lines.append("-+-".join("-" * w for w in widths))
        for row in formatted:
            lines.append(" | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def render_tables(tables: Sequence[ExperimentTable]) -> str:
    """Render several tables separated by blank lines."""
    return "\n\n".join(table.render() for table in tables)
