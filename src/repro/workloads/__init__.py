"""Paper workloads: the queries Q1–Q6 and user-study targets with their datasets."""

from repro.workloads.paper_queries import (
    WORKLOADS,
    Workload,
    baseball_queries,
    build_pair,
    scientific_queries,
    workload,
)

__all__ = [
    "Workload",
    "WORKLOADS",
    "workload",
    "build_pair",
    "scientific_queries",
    "baseball_queries",
]
