"""The paper's workload queries Q1–Q6 and the example pairs they induce.

Section 7.1 lists two real SQLShare queries (Q1, Q2) over the scientific
database and four synthetic queries (Q3–Q6) over the baseball database. Each
workload entry bundles the dataset builder, the target query and helpers to
produce the initial ``(D, R)`` pair used to seed a QFE session.

Column-name note: the baseball archive's ``2B``/``3B`` columns are spelled
``doubles``/``triples`` in our synthetic schema; the queries below are the
paper's queries with that renaming applied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.datasets import adult, baseball, scientific
from repro.relational.database import Database
from repro.relational.evaluator import evaluate
from repro.relational.predicates import ComparisonOp, Conjunct, DNFPredicate, Term
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation

__all__ = ["Workload", "WORKLOADS", "workload", "build_pair", "scientific_queries", "baseball_queries"]


def _q(attribute: str, op: ComparisonOp, constant) -> Term:
    return Term(attribute, op, constant)


# --------------------------------------------------------------- scientific Q1/Q2
def scientific_queries() -> dict[str, SPJQuery]:
    """The two real SQLShare queries over the scientific database."""
    main = scientific.MAIN_TABLE
    side = scientific.SIDE_TABLE
    tables = [main, side]
    projection = [f"{main}.{c}" for c in scientific.MAIN_COLUMNS] + [
        f"{side}.{c}" for c in scientific.SIDE_COLUMNS
    ]

    def fc(column: str) -> str:
        return f"{main}.{column}"

    pvalue_disjunction = [
        [_q(fc("PValue_Fe"), ComparisonOp.LT, 0.05)],
        [_q(fc("PValue_P"), ComparisonOp.LT, 0.05)],
        [_q(fc("PValue_Si"), ComparisonOp.LT, 0.05)],
        [_q(fc("PValue_Urea"), ComparisonOp.LT, 0.05)],
    ]

    q1_base = [
        _q(fc("logFC_Fe"), ComparisonOp.LT, 0.5),
        _q(fc("logFC_Fe"), ComparisonOp.GT, -0.5),
        _q(fc("logFC_P"), ComparisonOp.LT, -1),
        _q(fc("logFC_Si"), ComparisonOp.LT, -1),
        _q(fc("logFC_Urea"), ComparisonOp.LT, -1),
    ]
    q2_base = [
        _q(fc("logFC_Fe"), ComparisonOp.LT, 1),
        _q(fc("logFC_P"), ComparisonOp.GT, 1),
        _q(fc("logFC_Si"), ComparisonOp.GT, 1),
        _q(fc("logFC_Urea"), ComparisonOp.GT, 1),
    ]

    def dnf(base: list[Term]) -> DNFPredicate:
        # (base conjunction) AND (p-value disjunction), expanded to DNF.
        return DNFPredicate(
            tuple(Conjunct(tuple(base + disjunct)) for disjunct in pvalue_disjunction)
        )

    return {
        "Q1": SPJQuery(tables, projection, dnf(q1_base)),
        "Q2": SPJQuery(tables, projection, dnf(q2_base)),
    }


# --------------------------------------------------------------- baseball Q3..Q6
def baseball_queries() -> dict[str, SPJQuery]:
    """The four synthetic queries over the baseball database (Q3–Q6)."""
    manager, team, batting = baseball.MANAGER_TABLE, baseball.TEAM_TABLE, baseball.BATTING_TABLE
    q3 = SPJQuery(
        [manager, team],
        [f"{manager}.managerID", f"{team}.year", f"{team}.R"],
        DNFPredicate.from_terms(
            [
                _q(f"{team}.teamID", ComparisonOp.EQ, "CIN"),
                _q(f"{team}.year", ComparisonOp.GT, 1982),
                _q(f"{team}.year", ComparisonOp.LE, 1987),
            ]
        ),
    )
    q4 = SPJQuery(
        [manager, team, batting],
        [f"{manager}.managerID", f"{team}.year", f"{batting}.doubles"],
        DNFPredicate(
            tuple(
                Conjunct((_q(f"{batting}.playerID", ComparisonOp.EQ, player),))
                for player in baseball.Q4_PLAYERS
            )
        ),
    )
    q5 = SPJQuery(
        [manager, team, batting],
        [f"{manager}.managerID", f"{team}.year", f"{batting}.HR"],
        DNFPredicate.from_terms(
            [
                _q(f"{batting}.playerID", ComparisonOp.EQ, baseball.Q5_PLAYER),
                _q(f"{batting}.HR", ComparisonOp.GT, 1),
                _q(f"{batting}.doubles", ComparisonOp.LE, 3),
            ]
        ),
    )
    q6 = SPJQuery(
        [manager, team, batting],
        [f"{manager}.managerID", f"{team}.year", f"{batting}.triples"],
        DNFPredicate(
            (
                Conjunct(
                    (
                        _q(f"{batting}.playerID", ComparisonOp.EQ, baseball.Q6_PLAYER),
                        _q(f"{team}.IP", ComparisonOp.GT, 4380),
                    )
                ),
                Conjunct(
                    (
                        _q(f"{batting}.playerID", ComparisonOp.EQ, baseball.Q6_PLAYER),
                        _q(f"{team}.IP", ComparisonOp.LE, 4380),
                        _q(f"{team}.BBA", ComparisonOp.LE, 485),
                    )
                ),
            )
        ),
    )
    return {"Q3": q3, "Q4": q4, "Q5": q5, "Q6": q6}


# ------------------------------------------------------------------ registry
@dataclass(frozen=True)
class Workload:
    """One paper workload: a dataset builder plus a target query."""

    name: str
    dataset: str
    build_database: Callable[..., Database]
    target_query: SPJQuery
    expected_result_size: int

    def build_pair(self, scale: float = 1.0) -> tuple[Database, Relation]:
        """Build the database at *scale* and the target query's result on it."""
        database = self.build_database(scale)
        result = evaluate(self.target_query, database, name="R")
        return database, result


def _registry() -> dict[str, Workload]:
    sci = scientific_queries()
    base = baseball_queries()
    expected = {"Q1": 1, "Q2": 6, "Q3": 5, "Q4": 14, "Q5": 4, "Q6": 4}
    workloads: dict[str, Workload] = {}
    for name, query in sci.items():
        workloads[name] = Workload(name, "scientific", scientific.build_database, query, expected[name])
    for name, query in base.items():
        workloads[name] = Workload(name, "baseball", baseball.build_database, query, expected[name])
    for index, query in enumerate(adult.user_study_queries(), start=1):
        workloads[f"U{index}"] = Workload(
            f"U{index}", "adult", adult.build_database, query, -1
        )
    return workloads


WORKLOADS: dict[str, Workload] = _registry()


def workload(name: str) -> Workload:
    """Look up a workload by name.

    Accepts the paper workloads (``Q1``–``Q6``, ``U1``–``U3``) and generated
    scenario workloads (``scenario:<preset>`` or ``scenario:<preset>@<seed>``,
    built on demand by the scenario engine — see :mod:`repro.scenarios`).
    Scenario workloads behave exactly like paper ones everywhere a name is
    accepted: the experiments runner, checkpoints-by-reference, the service.
    """
    if name.startswith("scenario:"):
        from repro.scenarios.catalog import scenario_workload

        return scenario_workload(name)
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)} "
            f"plus scenario:<preset>[@seed]"
        ) from None


def build_pair(name: str, scale: float = 1.0) -> tuple[Database, Relation, SPJQuery]:
    """Build ``(D, R, target)`` for a named workload at the given scale."""
    entry = workload(name)
    database, result = entry.build_pair(scale)
    return database, result, entry.target_query
