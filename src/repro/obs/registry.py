"""A thread-safe registry of typed metric instruments with label support.

The registry is the single home for every counter the engine keeps about
itself. Three instrument types cover the reporting needs of the whole
codebase:

* :class:`Counter` — a monotonically *used* cumulative value. (It also
  supports direct assignment, which is what lets the historical stats
  objects — ``JOIN_STATS.full_joins += 1``, ``stats.reset()`` — keep their
  exact attribute APIs while being registry-backed underneath.)
* :class:`Gauge` — a value that goes up and down (live sessions, cached
  joins).
* :class:`Histogram` — cumulative bucket counts plus sum/count in the
  Prometheus style, with an optional bounded sample reservoir so exact
  p50/p95 quantiles come from the same instrument that feeds the
  ``/metrics`` exposition.

Instruments are created through the registry (:meth:`MetricsRegistry.counter`
etc.), which memoizes by name — asking twice returns the same instrument, so
module-level stats objects and ad-hoc instrumentation can share counters
freely. Labeled instruments hold one value per label-value tuple.

**Worker snapshot/merge.** Counters incremented inside a worker process
would historically be lost when the round ended. The registry therefore
exposes :meth:`MetricsRegistry.counter_values` (a picklable snapshot) and
:meth:`MetricsRegistry.merge_counter_deltas`: a worker snapshots before and
after evaluating a work unit, ships the difference back alongside its
outcomes, and the driver merges the deltas into its own registry. Counter
merges are commutative sums, so the merged totals are independent of worker
scheduling — determinism of the search itself is untouched.
"""

from __future__ import annotations

import threading
import weakref
from collections import deque
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RegistryStats",
    "REGISTRY",
    "reset_all_stats",
    "register_worker_stats_participant",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default histogram buckets (seconds) — the Prometheus client defaults,
#: which bracket interactive round latencies well on this workload.
DEFAULT_LATENCY_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: The label-value key of an unlabeled instrument's single series.
_UNLABELED: tuple = ()


class _Instrument:
    """Shared machinery: name, help text, label names, per-series storage."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", label_names: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, Any] | None) -> tuple:
        if not self.label_names:
            if labels:
                raise ValueError(f"instrument {self.name!r} takes no labels")
            return _UNLABELED
        labels = labels or {}
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"instrument {self.name!r} requires labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)


class Counter(_Instrument):
    """A cumulative value; also settable, for the legacy attribute APIs."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help, label_names)
        self._values: dict[tuple, int | float] = {}

    def inc(self, amount: int | float = 1, **labels: Any) -> None:
        """Add *amount* to the counter (atomically)."""
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def set(self, value: int | float, **labels: Any) -> None:
        """Assign the counter directly (the legacy ``stats.field = n`` path)."""
        key = self._key(labels)
        with self._lock:
            self._values[key] = value

    def get(self, **labels: Any) -> int | float:
        """The current value (0 for a series never touched)."""
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0)

    @property
    def value(self) -> int | float:
        """The unlabeled series' current value."""
        return self.get()

    def series(self) -> dict[tuple, int | float]:
        """All ``label values -> value`` series (a copy)."""
        with self._lock:
            return dict(self._values)

    def reset(self) -> None:
        with self._lock:
            self._values.clear()


class Gauge(Counter):
    """A value that can go up and down; same storage, different exposition."""

    kind = "gauge"

    def dec(self, amount: int | float = 1, **labels: Any) -> None:
        self.inc(-amount, **labels)


class Histogram(_Instrument):
    """Cumulative buckets + sum/count, with an optional quantile reservoir.

    ``reservoir`` keeps the most recent N observations per series (the
    service's round-latency window); :meth:`quantile` computes exact
    percentiles over that window with the same nearest-rank rule the
    service's historical ``_Metrics`` used, so the JSON contract's p50/p95
    stay byte-for-byte compatible while the Prometheus exposition gets real
    buckets.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        reservoir: int | None = None,
    ) -> None:
        super().__init__(name, help, label_names)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one finite bucket bound")
        self.reservoir_size = reservoir
        #: per-series: (bucket counts list, sum, count, deque | None)
        self._series: dict[tuple, list] = {}

    def _state(self, key: tuple) -> list:
        state = self._series.get(key)
        if state is None:
            window = deque(maxlen=self.reservoir_size) if self.reservoir_size else None
            state = [[0] * (len(self.buckets) + 1), 0.0, 0, window]
            self._series[key] = state
        return state

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation."""
        key = self._key(labels)
        with self._lock:
            counts, total, count, window = self._state(key)
            placed = len(self.buckets)  # the +Inf bucket
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    placed = index
                    break
            counts[placed] += 1
            state = self._series[key]
            state[1] = total + value
            state[2] = count + 1
            if window is not None:
                window.append(value)

    def snapshot(self, **labels: Any) -> dict:
        """``{"buckets": [(le, cumulative), ...], "sum": s, "count": n}``."""
        key = self._key(labels)
        with self._lock:
            if key not in self._series:
                counts, total, count = [0] * (len(self.buckets) + 1), 0.0, 0
            else:
                counts, total, count, _ = self._series[key]
                counts = list(counts)
        cumulative, out = 0, []
        for bound, bucket_count in zip(self.buckets, counts):
            cumulative += bucket_count
            out.append((bound, cumulative))
        out.append((float("inf"), cumulative + counts[-1]))
        return {"buckets": out, "sum": total, "count": count}

    def observation_count(self, **labels: Any) -> int:
        return self.snapshot(**labels)["count"]

    def quantile(self, fraction: float, **labels: Any) -> float | None:
        """Nearest-rank quantile over the reservoir window (None when empty).

        Matches the service's historical percentile rule exactly:
        ``sorted(samples)[min(n - 1, max(0, round(fraction * (n - 1))))]``.
        """
        key = self._key(labels)
        with self._lock:
            state = self._series.get(key)
            samples = sorted(state[3]) if state is not None and state[3] else []
        if not samples:
            return None
        index = min(len(samples) - 1, max(0, round(fraction * (len(samples) - 1))))
        return samples[index]

    def series(self) -> dict[tuple, dict]:
        with self._lock:
            keys = list(self._series)
        return {key: self.snapshot(**dict(zip(self.label_names, key))) for key in keys}

    def reset(self) -> None:
        with self._lock:
            self._series.clear()


class MetricsRegistry:
    """A named collection of instruments; creation is memoized by name."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    def _register(self, cls, name: str, help: str, label_names: Sequence[str], **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind}, not a {cls.kind}"
                    )
                if tuple(label_names) != existing.label_names:
                    raise ValueError(
                        f"metric {name!r} is already registered with labels "
                        f"{existing.label_names}"
                    )
                return existing
            instrument = cls(name, help, label_names, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        reservoir: int | None = None,
    ) -> Histogram:
        return self._register(
            Histogram, name, help, labels, buckets=buckets, reservoir=reservoir
        )

    def instruments(self) -> list[_Instrument]:
        """Every registered instrument, sorted by name (exposition order)."""
        with self._lock:
            return [self._instruments[name] for name in sorted(self._instruments)]

    def get(self, name: str) -> _Instrument | None:
        with self._lock:
            return self._instruments.get(name)

    # -------------------------------------------------- worker snapshot/merge
    def counter_values(self) -> dict[str, dict[tuple, int | float]]:
        """A picklable snapshot of every Counter series (gauges excluded).

        Gauges describe *this* process's live state (resident sessions, pool
        size) and must not be summed across processes; counters are
        cumulative event counts, which merge as plain sums.
        """
        snapshot: dict[str, dict[tuple, int | float]] = {}
        for instrument in self.instruments():
            if type(instrument) is Counter:
                series = instrument.series()
                if series:
                    snapshot[instrument.name] = series
        return snapshot

    def counter_deltas(
        self, before: Mapping[str, Mapping[tuple, int | float]]
    ) -> dict[str, dict[tuple, int | float]]:
        """Per-series increments since a :meth:`counter_values` snapshot."""
        deltas: dict[str, dict[tuple, int | float]] = {}
        for name, series in self.counter_values().items():
            baseline = before.get(name, {})
            changed = {
                key: value - baseline.get(key, 0)
                for key, value in series.items()
                if value != baseline.get(key, 0)
            }
            if changed:
                deltas[name] = changed
        return deltas

    def merge_counter_deltas(
        self, deltas: Mapping[str, Mapping[tuple, int | float]]
    ) -> None:
        """Add worker-shipped counter increments into this registry.

        Instruments are looked up by name: both sides import the same
        modules, so any counter a worker incremented exists here too. A
        labeled series whose instrument is somehow absent is skipped rather
        than guessed at (its label names are not recoverable from the key).
        """
        for name, series in deltas.items():
            counter = self.get(name)
            if counter is None:
                if any(key != _UNLABELED for key in series):
                    continue
                counter = self.counter(name)
            if not isinstance(counter, Counter):
                continue
            for key, amount in series.items():
                if counter.label_names:
                    counter.inc(amount, **dict(zip(counter.label_names, key)))
                else:
                    counter.inc(amount)

    # ------------------------------------------------------------------ reset
    def reset(self) -> None:
        """Zero every instrument (tests call this between cases)."""
        for instrument in self.instruments():
            instrument.reset()  # type: ignore[attr-defined]


#: The process-wide default registry. The legacy stats objects
#: (``JOIN_STATS``, ``COLUMNAR_STATS``, ``PUSHDOWN_STATS``) register their
#: counters here at import time; worker merge and the Prometheus exposition
#: read from it.
REGISTRY = MetricsRegistry()


#: Live objects holding counter state *outside* this process's registry —
#: warm worker pools whose persistent child processes accumulate their own
#: ``REGISTRY`` counters between unit merges. Weakly referenced: a pool that
#: was closed and collected simply disappears from the reset fan-out.
_WORKER_STATS_PARTICIPANTS: "weakref.WeakSet" = weakref.WeakSet()


def register_worker_stats_participant(participant: Any) -> None:
    """Register an object whose ``reset_worker_stats()`` joins the global reset.

    Persistent worker pools keep counter state in long-lived child processes;
    without this hook, :func:`reset_all_stats` would zero the driver registry
    while workers keep their cumulative values — and any code path that ships
    worker counter *values* (rather than per-unit deltas) after the reset
    would re-merge pre-reset amounts. Registration is idempotent and weak.
    """
    _WORKER_STATS_PARTICIPANTS.add(participant)


def reset_all_stats() -> None:
    """Zero every instrument of the process-wide registry — and warm workers.

    The shared pytest fixture calls this before each test so counter state
    can never leak across tests; it is also safe to call from benchmarks
    before a measured section. Registered warm worker pools (see
    :func:`register_worker_stats_participant`) have their worker-side
    registries reset too, so bench groups sharing a persistent pool cannot
    inherit stale ``qfe_columnar_*`` (or any other) counter state from a
    previous measured section. A pool whose reset fails (e.g. its executor
    already broke) is skipped: the reset must never raise.
    """
    REGISTRY.reset()
    for participant in list(_WORKER_STATS_PARTICIPANTS):
        try:
            participant.reset_worker_stats()
        except Exception:  # pragma: no cover - defensive: reset must not raise
            continue


class RegistryStats:
    """Attribute-API façade over registry counters.

    The historical stats objects are plain attribute bags
    (``JOIN_STATS.full_joins += 1``, ``stats.reset()``,
    ``stats.snapshot()``). Subclasses declare ``_PREFIX`` and ``_FIELDS``;
    each field becomes a registry Counter named ``{prefix}_{field}``, and
    attribute reads/writes pass through to it — so every existing call site
    and guard keeps working unchanged while the values become visible to the
    exposition endpoint and the worker merge protocol.
    """

    _PREFIX = "qfe"
    _FIELDS: tuple[str, ...] = ()
    _HELP: Mapping[str, str] = {}

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        registry = registry if registry is not None else REGISTRY
        counters = {
            field: registry.counter(
                f"{self._PREFIX}_{field}", self._HELP.get(field, "")
            )
            for field in self._FIELDS
        }
        object.__setattr__(self, "_registry", registry)
        object.__setattr__(self, "_counters", counters)

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    def __getattr__(self, name: str):
        # Only reached when normal lookup fails: the counter-backed fields.
        counters = object.__getattribute__(self, "_counters")
        if name in counters:
            return counters[name].value
        raise AttributeError(f"{type(self).__name__!r} has no attribute {name!r}")

    def __setattr__(self, name: str, value) -> None:
        if name in self._FIELDS:
            self._counters[name].set(value)
        else:
            object.__setattr__(self, name, value)

    def reset(self) -> None:
        """Zero all counters (tests/benchmarks call this before measuring)."""
        for counter in self._counters.values():
            counter.set(0)

    def snapshot(self) -> dict[str, int | float]:
        """``field -> value`` at this moment (subclasses may narrow the shape)."""
        return {field: self._counters[field].value for field in self._FIELDS}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(f"{k}={self._counters[k].value}" for k in self._FIELDS)
        return f"{type(self).__name__}({body})"
