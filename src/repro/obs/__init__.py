"""The unified observability layer: metrics, tracing, and exposition.

Everything the engine, the service and the CLIs report about *themselves*
funnels through this package:

* :mod:`repro.obs.registry` — a thread-safe :class:`MetricsRegistry` of typed
  Counter/Gauge/Histogram instruments with label support. The process-wide
  default registry (:data:`REGISTRY`) backs the legacy stats objects
  (``JOIN_STATS``, ``COLUMNAR_STATS``, ``PUSHDOWN_STATS``, the service's
  ``_Metrics``) behind their historical attribute APIs, and provides the
  counter snapshot/merge protocol worker processes use to ship their
  increments back to the driver with each round.
* :mod:`repro.obs.trace` — structured round-lifecycle spans (JSON-lines
  export, monotonic durations, parent/child nesting) behind a process-wide
  tracer that is a no-op unless explicitly enabled (``--trace-out``).
* :mod:`repro.obs.exposition` — the Prometheus text exposition format for any
  registry, served by the service's ``/metrics?format=prometheus``.
* :mod:`repro.obs.summary` — the ``qfe-trace summary`` renderer: a per-round
  phase breakdown (prepare/ship/evaluate/merge/materialize) computed from a
  span file, so "the pool loses to serial" becomes "62% of round time is
  context pickling".
"""

from repro.obs.registry import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RegistryStats,
    reset_all_stats,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    start_tracing,
    stop_tracing,
)
from repro.obs.exposition import render_prometheus

__all__ = [
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RegistryStats",
    "reset_all_stats",
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "start_tracing",
    "stop_tracing",
    "render_prometheus",
]
