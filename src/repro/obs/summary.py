"""Per-round phase breakdown computed from a span trace.

The tracer records *what happened*; this module answers *where the time
went*. Each ``session.propose`` span is one round; its descendant spans are
folded into the five lifecycle phases the backends share:

======================  ====================================================
phase                   source spans
======================  ====================================================
``prepare``             ``round.prepare`` (candidate enumeration, planning),
                        ``backend.plan`` (warm-pool remote prologue)
``ship``                ``backend.broadcast`` (context pickling/base loads),
                        ``backend.advance`` (warm-pool delta publication)
``evaluate``            ``round.search`` minus its ship/plan/merge children
``merge``               ``backend.merge`` (worker outcome + counter merge)
``materialize``         ``round.materialize`` (winning database build)
``present``             ``round.present`` (feedback-round construction)
``other``               the propose remainder not covered above
======================  ====================================================

Because ``other`` is defined as the remainder, the phases of a round sum to
the round's measured wall-clock *by construction* — the acceptance bound
(within 10%) only has floating-point noise to survive.
"""

from __future__ import annotations

import json
import os
from typing import Iterable

__all__ = [
    "PHASES",
    "load_spans",
    "phase_breakdown",
    "aggregate_phases",
    "render_summary",
]

PHASES = ("prepare", "ship", "evaluate", "merge", "materialize", "present", "other")

_PHASE_OF_SPAN = {
    "round.prepare": "prepare",
    "backend.plan": "prepare",
    "backend.broadcast": "ship",
    "backend.advance": "ship",
    "backend.merge": "merge",
    "round.materialize": "materialize",
    "round.present": "present",
}



def load_spans(source) -> list[dict]:
    """Spans from a JSON-lines path, an open file, or a list of dicts."""
    if isinstance(source, list):
        return list(source)
    if isinstance(source, (str, os.PathLike)):
        with open(source, "r", encoding="utf-8") as handle:
            return [json.loads(line) for line in handle if line.strip()]
    return [json.loads(line) for line in source if line.strip()]


def _children_index(spans: list[dict]) -> dict[int | None, list[dict]]:
    children: dict[int | None, list[dict]] = {}
    for span in spans:
        children.setdefault(span.get("parent_id"), []).append(span)
    return children


def _descendants(span: dict, children: dict) -> Iterable[dict]:
    stack = list(children.get(span["span_id"], ()))
    while stack:
        node = stack.pop()
        yield node
        stack.extend(children.get(node["span_id"], ()))


def phase_breakdown(source) -> list[dict]:
    """One entry per round (``session.propose`` span), in trace order.

    Each entry: ``{"round": n, "total_s": wall, "phases": {phase: seconds},
    "attrs": propose-span attrs}``. Phases sum to ``total_s`` exactly.
    """
    spans = load_spans(source)
    children = _children_index(spans)
    proposes = sorted(
        (s for s in spans if s["name"] == "session.propose"),
        key=lambda s: s["span_id"],
    )
    rounds = []
    for index, propose in enumerate(proposes, start=1):
        phases = dict.fromkeys(PHASES, 0.0)
        descendants = list(_descendants(propose, children))
        # Spans nested under the round's search span(s) need separating from
        # top-level ones: the search wall-clock covers its broadcast/merge
        # children (and, on a round-planning backend, the remote-prologue
        # ``backend.plan``), so pure evaluation is what remains of the
        # search after subtracting its *own* mapped descendants — never a
        # same-phase span that ran outside it.
        search_total = 0.0
        under_search: set[int] = set()
        for node in descendants:
            if node["name"] == "round.search":
                search_total += node["duration_s"]
                under_search.update(
                    child["span_id"] for child in _descendants(node, children)
                )
        search_children = 0.0
        top_mapped = 0.0
        for node in descendants:
            phase = _PHASE_OF_SPAN.get(node["name"])
            if phase is None:
                continue
            phases[phase] += node["duration_s"]
            if node["span_id"] in under_search:
                search_children += node["duration_s"]
            else:
                top_mapped += node["duration_s"]
        phases["evaluate"] = max(0.0, search_total - search_children)
        total = propose["duration_s"]
        phases["other"] = max(0.0, total - search_total - top_mapped)
        rounds.append(
            {
                "round": index,
                "total_s": total,
                "phases": phases,
                "attrs": propose.get("attrs", {}),
            }
        )
    return rounds


def aggregate_phases(source) -> dict[str, float]:
    """Phase seconds summed over every round in the trace.

    The shape the scenario sweep records per backend into
    ``BENCH_scenarios.json`` (``phase_seconds``).
    """
    totals = dict.fromkeys(PHASES, 0.0)
    for entry in phase_breakdown(source):
        for phase, seconds in entry["phases"].items():
            totals[phase] += seconds
    return {phase: round(seconds, 6) for phase, seconds in totals.items()}


def render_summary(source) -> str:
    """A per-round phase table plus a totals row (the ``qfe-trace summary``)."""
    rounds = phase_breakdown(source)
    if not rounds:
        return "no session.propose spans in trace\n"
    headers = ["round", "total_s"] + [f"{p}_s" for p in PHASES] + ["top phase"]
    body: list[list[str]] = []
    totals = dict.fromkeys(PHASES, 0.0)
    grand_total = 0.0
    for entry in rounds:
        phases = entry["phases"]
        top = max(phases, key=lambda p: phases[p])
        share = 100.0 * phases[top] / entry["total_s"] if entry["total_s"] else 0.0
        body.append(
            [str(entry["round"]), f"{entry['total_s']:.4f}"]
            + [f"{phases[p]:.4f}" for p in PHASES]
            + [f"{top} ({share:.0f}%)"]
        )
        for phase in PHASES:
            totals[phase] += phases[phase]
        grand_total += entry["total_s"]
    body.append(
        ["all", f"{grand_total:.4f}"]
        + [f"{totals[p]:.4f}" for p in PHASES]
        + [""]
    )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in body))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend("  ".join(cell.rjust(w) for cell, w in zip(row, widths)) for row in body)
    return "\n".join(lines) + "\n"
