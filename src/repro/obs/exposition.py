"""Prometheus text exposition (format version 0.0.4) for metric registries.

:func:`render_prometheus` turns one or more :class:`MetricsRegistry`
instances into the plain-text format scraped by Prometheus::

    # HELP qfe_join_full_joins Full hash-join rebuilds.
    # TYPE qfe_join_full_joins counter
    qfe_join_full_joins 3
    # HELP qfe_service_round_latency_seconds Per-round service latency.
    # TYPE qfe_service_round_latency_seconds histogram
    qfe_service_round_latency_seconds_bucket{le="0.005"} 1
    ...
    qfe_service_round_latency_seconds_bucket{le="+Inf"} 4
    qfe_service_round_latency_seconds_sum 0.123
    qfe_service_round_latency_seconds_count 4

The service passes its private per-manager registry plus the process-wide
default registry; when the same metric name appears in several registries,
the first occurrence wins (the private registry is authoritative for
service metrics).
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["render_prometheus", "PROMETHEUS_CONTENT_TYPE"]

#: The Content-Type the exposition endpoint answers with.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _format_value(value: int | float) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            # Integral floats render without the trailing ".0" Prometheus
            # clients don't emit either.
            return str(int(value))
        return repr(value)
    return str(value)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _labels_text(names: tuple[str, ...], values: tuple, extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(*registries: MetricsRegistry) -> str:
    """Render every instrument of *registries* as exposition text.

    Duplicate metric names across registries keep the first registry's
    series only, so a private service registry can shadow the global one.
    """
    lines: list[str] = []
    seen: set[str] = set()
    for registry in registries:
        for instrument in registry.instruments():
            if instrument.name in seen:
                continue
            seen.add(instrument.name)
            if instrument.help:
                lines.append(f"# HELP {instrument.name} {_escape_help(instrument.help)}")
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            if isinstance(instrument, Histogram):
                _render_histogram(lines, instrument)
            elif isinstance(instrument, (Counter, Gauge)):
                _render_scalar(lines, instrument)
    return "\n".join(lines) + "\n" if lines else ""


def _render_scalar(lines: list[str], instrument: Counter) -> None:
    series = instrument.series()
    if not series and not instrument.label_names:
        series = {(): 0}
    for key in sorted(series):
        labels = _labels_text(instrument.label_names, key)
        lines.append(f"{instrument.name}{labels} {_format_value(series[key])}")


def _render_histogram(lines: list[str], instrument: Histogram) -> None:
    series = instrument.series()
    if not series and not instrument.label_names:
        series = {(): instrument.snapshot()}
    for key in sorted(series):
        snapshot = series[key]
        for bound, cumulative in snapshot["buckets"]:
            le = "+Inf" if math.isinf(bound) else _format_value(bound)
            labels = _labels_text(
                instrument.label_names, key, extra=f'le="{le}"'
            )
            lines.append(f"{instrument.name}_bucket{labels} {cumulative}")
        labels = _labels_text(instrument.label_names, key)
        lines.append(f"{instrument.name}_sum{labels} {_format_value(snapshot['sum'])}")
        lines.append(f"{instrument.name}_count{labels} {snapshot['count']}")
