"""Round-lifecycle tracing: structured spans with JSON-lines export.

A :class:`Tracer` produces nested :class:`Span`\\ s — one JSON object per
line in the sink — measuring durations on the monotonic clock
(:mod:`repro.core.timing`), never the wall clock. Nesting is per thread: a
span opened while another is active on the same thread becomes its child
(``parent_id``), which is how one ``session.propose`` span ends up owning
its round's ``round.prepare``/``round.search``/``round.materialize``
children and the search span owns the backend's broadcast/wave spans.

**Zero cost when disabled.** The process-wide tracer defaults to
:data:`NULL_TRACER`, whose :meth:`~NullTracer.span` returns a shared no-op
context manager — no allocation, no clock read, no I/O. Call sites that
would compute non-trivial span attributes guard on ``tracer.enabled``.
Tracing must never perturb behaviour: spans carry *measurements about* the
round, and the differential suite pins traced-vs-untraced transcripts
bit-identical on every backend.

**Worker processes.** A forked worker inherits the parent's tracer object —
including its open file descriptor, which two processes must not interleave
writes on. Every span creation therefore checks the owning pid and silently
degrades to the no-op span in any other process; worker-side activity is
observable through the counter snapshot/merge protocol instead
(:mod:`repro.obs.registry`), and the driver-side wave spans bound it in
time.

Span line format (one JSON object per line)::

    {"name": "round.search", "span_id": 7, "parent_id": 6, "pid": 123,
     "thread": "MainThread", "t_wall": 1754650000.123,
     "t_start": 12.345678, "duration_s": 0.042, "attrs": {"backend": "serial"}}

``t_start`` is a monotonic reading (comparable only within one trace);
``t_wall`` is an informational wall-clock anchor taken at span start and
never used for durations.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, IO

from repro.core.timing import monotonic_seconds

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "start_tracing",
    "stop_tracing",
]


class _NullSpan:
    """The shared do-nothing span handed out whenever tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        """Attribute setting is a no-op on the null span."""


_NULL_SPAN = _NullSpan()


class Span:
    """One live span; exits write a JSON line to the tracer's sink."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "attrs", "_t_start", "_t_wall")

    def __init__(self, tracer: "Tracer", name: str, parent_id: int | None, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = tracer._next_id()
        self.parent_id = parent_id
        self.attrs = attrs
        self._t_wall = time.time()
        self._t_start = monotonic_seconds()

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = max(0.0, monotonic_seconds() - self._t_start)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self, duration)
        return False


class Tracer:
    """Writes spans as JSON lines to a sink (a file handle or a list).

    ``sink`` is either a writable text file object (lines are written and
    flushed as spans close, so a killed process keeps every finished span)
    or a plain list (spans are appended as dicts — the in-memory form the
    scenario sweep and the tests use).
    """

    enabled = True

    def __init__(self, sink: IO[str] | list, *, close_sink: bool = False) -> None:
        self._sink = sink
        self._close_sink = close_sink
        self._lock = threading.Lock()
        self._ids = iter(range(1, 2**63))
        self._local = threading.local()
        self._pid = os.getpid()

    # ------------------------------------------------------------------ spans
    def span(self, name: str, **attrs: Any):
        """Open a span; use as a context manager.

        Returns the shared no-op span from any process other than the one
        that created the tracer (forked pool workers inherit the tracer and
        must not interleave writes on its file descriptor).
        """
        if os.getpid() != self._pid:
            return _NULL_SPAN
        return Span(self, name, self._current_id(), attrs)

    def _next_id(self) -> int:
        with self._lock:
            return next(self._ids)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _current_id(self) -> int | None:
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span, duration: float) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # pragma: no cover - misnested exit; drop rather than corrupt
            try:
                stack.remove(span)
            except ValueError:
                pass
        self._write(
            {
                "name": span.name,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "pid": self._pid,
                "thread": threading.current_thread().name,
                "t_wall": span._t_wall,
                "t_start": span._t_start,
                "duration_s": duration,
                "attrs": span.attrs,
            }
        )

    def _write(self, record: dict) -> None:
        if isinstance(self._sink, list):
            with self._lock:
                self._sink.append(record)
            return
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            self._sink.write(line + "\n")
            self._sink.flush()

    # ------------------------------------------------------------------ close
    def close(self) -> None:
        if self._close_sink and not isinstance(self._sink, list):
            self._sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullTracer:
    """The disabled tracer: every span is the shared no-op span."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()

#: The process-wide active tracer; NULL unless ``--trace-out`` (or a test)
#: installed a real one.
_ACTIVE: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The active tracer (the no-op tracer unless tracing was enabled)."""
    return _ACTIVE


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install *tracer* (None = disable) and return the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer if tracer is not None else NULL_TRACER
    return previous


def start_tracing(path: str | os.PathLike) -> Tracer:
    """Open *path* for writing and install a JSON-lines tracer on it.

    The ``--trace-out`` entry point used by all three CLIs. Returns the
    tracer; pair with :func:`stop_tracing` (or ``set_tracer(previous)``).
    """
    handle = open(path, "w", encoding="utf-8")
    tracer = Tracer(handle, close_sink=True)
    set_tracer(tracer)
    return tracer


def stop_tracing() -> None:
    """Disable tracing and close the active tracer's sink (idempotent)."""
    previous = set_tracer(NULL_TRACER)
    if isinstance(previous, Tracer):
        previous.close()
