"""``qfe-trace`` — inspect span traces written by ``--trace-out``.

Currently one subcommand::

    qfe-trace summary trace.jsonl

prints the per-round phase breakdown table (prepare/ship/evaluate/merge/
materialize/present seconds per round, plus the dominant phase) so a slow
run can be attributed without opening the raw JSON lines.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.summary import render_summary


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="qfe-trace", description="Inspect span traces from --trace-out."
    )
    sub = parser.add_subparsers(dest="command", required=True)
    summary = sub.add_parser(
        "summary", help="Per-round phase breakdown from a trace file."
    )
    summary.add_argument("trace", help="Path to a JSON-lines span trace.")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "summary":
        try:
            sys.stdout.write(render_summary(args.trace))
        except OSError as exc:
            print(f"qfe-trace: cannot read {args.trace}: {exc}", file=sys.stderr)
            return 2
        return 0
    return 2  # pragma: no cover - argparse enforces the subcommand


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
