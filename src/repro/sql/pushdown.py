"""SQL pushdown: compile a candidate round into SQLite passes.

The QFE inner loop scores each candidate modification ``D'`` by the exact
result-equivalence partition it induces over the surviving candidate
queries. The pure-Python path materializes ``D'``, delta-derives the cached
join and batch-evaluates every candidate per attempt; this module instead
pushes the evaluation into SQLite, where the join, the selection predicates
and the per-group row counting all run at C speed:

* :class:`SqliteMirror` loads the base database **once per session** into a
  persistent ``:memory:`` connection (an ``"_qfe_id" INTEGER PRIMARY KEY``
  column maps the engine's stable ``tuple_id``\\ s onto SQLite rowids, and
  join-key columns are indexed), then replays each attempt's
  :class:`~repro.relational.delta.TupleDelta` as INSERT/UPDATE/DELETE
  statements inside a SAVEPOINT that is rolled back between attempts;
* :func:`compile_round` compiles the surviving-candidate batch into one
  aggregated SELECT per join signature — ``SUM(CASE WHEN <predicate> THEN 1
  ELSE 0 END)`` per query over the foreign-key join, grouped by the union of
  the queries' projected columns — whose result rows
  :meth:`RoundProgram.fingerprints` folds into per-query result
  fingerprints, from which :func:`~repro.core.partitioner.partition_signature`
  recovers the exact partition the Python evaluator would have computed.

Faithfulness is the whole game. The compiler reproduces
:meth:`~repro.relational.predicates.Term.evaluate_value` — not SQL's naive
three-valued logic — by explicit rewrites:

* a NULL attribute value never satisfies any term (SQL's ``WHERE``/``CASE``
  collapse of UNKNOWN already matches; no rewrite needed);
* ``= NULL`` is always false (rendered ``0``); ``<> NULL`` selects exactly
  the non-NULL values (rendered ``IS NOT NULL``);
* NULLs are stripped from ``IN``/``NOT IN`` constant lists — SQL's
  ``x NOT IN (..., NULL)`` selects *nothing*, while the evaluator selects
  every non-NULL value outside the non-NULL constants;
* cross-type equalities that SQLite's column affinity would coerce into
  spurious matches (``'1'`` against an INTEGER column, ``1`` against a TEXT
  column) are constant-folded to the evaluator's answer: never equal;
* ordering comparisons between incomparable types (or against NULL), which
  the evaluator surfaces as :class:`~repro.exceptions.EvaluationError` under
  its reachability-aware error masks, raise
  :class:`PushdownUnsupportedError` — the backend then falls back to the
  bit-identical in-process path instead of guessing;
* constants are rendered with :func:`~repro.relational.types.float_literal`
  round-trip precision, integers stay exact through the 2^53 neighbourhood
  (SQLite INTEGERs are 64-bit and INTEGER-vs-REAL comparisons are exact),
  and integers outside the 64-bit range are refused rather than silently
  parsed as REAL.
"""

from __future__ import annotations

import math
import sqlite3
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.obs.registry import RegistryStats
from repro.obs.trace import get_tracer
from repro.relational.columnar import BoolColumn, build_typed_column, mask_positions
from repro.relational.database import Database
from repro.relational.delta import TupleDelta
from repro.relational.predicates import ComparisonOp, DNFPredicate, Term
from repro.relational.query import SPJQuery
from repro.relational.relation import Relation
from repro.relational.schema import TableSchema
from repro.relational.types import INT64_MAX, INT64_MIN, AttributeType, canonical_value
from repro.sql.render import OP_SQL, render_from_clause, render_identifier, render_value

__all__ = [
    "PushdownUnsupportedError",
    "PushdownExecutionError",
    "PushdownStats",
    "PUSHDOWN_STATS",
    "SqliteMirror",
    "RoundProgram",
    "compile_term",
    "compile_predicate",
    "compile_round",
]

#: The rowid-aliased column mapping ``tuple_id`` onto SQLite row addressing.
_ID_COLUMN = "_qfe_id"

#: SQLite INTEGER literals (and bound parameters) are 64-bit — the same
#: bounds as the typed int column buffer (see repro.relational.types).
_INT64_MIN = INT64_MIN
_INT64_MAX = INT64_MAX


class PushdownUnsupportedError(Exception):
    """The round (or database) cannot be compiled with exact evaluator semantics.

    Raised at *compile/load* time — before any attempt is scored — so the
    backend can fall back to the bit-identical in-process path wholesale.
    """


class PushdownExecutionError(Exception):
    """SQLite failed mid-attempt (bind overflow, engine error).

    Raised from inside an attempt's SAVEPOINT scope after the rollback has
    run; the backend re-scores just that attempt on the in-process path.
    """


class PushdownStats(RegistryStats):
    """Process-wide counters instrumenting the SQL-pushdown path.

    ``base_loads`` counts full base-database loads into a mirror connection —
    the backend's contract is **at most one per session** (re-loading only
    when the base snapshot actually changes); ``attempt_batches`` counts
    attempts whose partition was computed by SQLite; ``python_fallbacks``
    counts rounds/attempts that fell back to the in-process path. The bench
    regression guard pins the first two, so a silent fallback to per-attempt
    reloading (or to Python evaluation) fails a fast test instead of only
    showing up as a slow bench. Registry-backed as ``qfe_pushdown_*``.
    """

    _PREFIX = "qfe_pushdown"
    _FIELDS = ("base_loads", "attempt_batches", "python_fallbacks")
    _HELP = {
        "base_loads": "Full base-database loads into a mirror connection.",
        "attempt_batches": "Attempt partitions computed by SQLite.",
        "python_fallbacks": "Rounds/attempts evaluated on the Python path.",
    }

    def snapshot(self) -> tuple[int, int, int]:
        """``(base_loads, attempt_batches, python_fallbacks)`` at this moment."""
        return (self.base_loads, self.attempt_batches, self.python_fallbacks)


#: Module-level instrumentation shared by all mirrors in the process.
PUSHDOWN_STATS = PushdownStats()


# ----------------------------------------------------------------- compilation
_NUMERIC_TYPES = (AttributeType.INTEGER, AttributeType.FLOAT, AttributeType.BOOLEAN)


def _comparable(column_type: AttributeType, constant: Any) -> bool:
    """Whether the evaluator's ``==``/``<`` can ever relate column and constant.

    Python's operators never equate numbers with strings (booleans compare as
    their integer value), while SQLite's column affinity would coerce
    ``'1' = 1`` into a match either way around — so incomparable pairs must
    be constant-folded (equality) or refused (ordering), never rendered.
    """
    if isinstance(constant, (bool, int, float)):
        return column_type in _NUMERIC_TYPES
    if isinstance(constant, str):
        return column_type is AttributeType.STRING
    return False


def _is_nan(constant: Any) -> bool:
    return isinstance(constant, float) and math.isnan(constant)


def _check_literal(constant: Any) -> None:
    if isinstance(constant, int) and not isinstance(constant, bool):
        if not _INT64_MIN <= constant <= _INT64_MAX:
            raise PushdownUnsupportedError(
                f"integer constant {constant} exceeds SQLite's 64-bit range"
            )


def compile_term(term: Term, column_type: AttributeType) -> str:
    """Compile one term into a SQL condition with exact evaluator semantics.

    The result is meant for a ``WHERE``/``CASE WHEN`` context, where SQL's
    UNKNOWN collapses to "not selected" — exactly the evaluator's "NULL never
    satisfies any term". Raises :class:`PushdownUnsupportedError` for
    comparisons the evaluator itself would surface as evaluation errors.
    """
    identifier = render_identifier(term.attribute)
    op = term.op
    if op.is_membership:
        constants = [
            c
            for c in term.constant
            if c is not None and not _is_nan(c) and _comparable(column_type, c)
        ]
        for constant in constants:
            _check_literal(constant)
        rendered = ", ".join(render_value(c) for c in constants)
        if op is ComparisonOp.IN:
            return f"({identifier} IN ({rendered}))" if constants else "0"
        if constants:
            return f"({identifier} NOT IN ({rendered}))"
        return f"({identifier} IS NOT NULL)"
    constant = term.constant
    if op is ComparisonOp.EQ:
        if constant is None or _is_nan(constant) or not _comparable(column_type, constant):
            return "0"
        _check_literal(constant)
        return f"({identifier} = {render_value(constant)})"
    if op is ComparisonOp.NE:
        if constant is None or _is_nan(constant) or not _comparable(column_type, constant):
            return f"({identifier} IS NOT NULL)"
        _check_literal(constant)
        return f"({identifier} <> {render_value(constant)})"
    # Ordering a *numeric* column against NaN never matches anything in
    # Python (and never errors), so it folds to false; against NULL or an
    # incomparable type — which includes NaN over a string column — the
    # evaluator raises EvaluationError for every reachable non-NULL value, so
    # compilation is refused and the backend routes the whole round through
    # the in-process path, which reproduces those errors (and their
    # reachability-aware masking) exactly.
    if _is_nan(constant) and column_type in _NUMERIC_TYPES:
        return "0"
    if constant is None or not _comparable(column_type, constant):
        raise PushdownUnsupportedError(
            f"cannot push down ordering comparison {term.attribute} "
            f"{op.value} {constant!r} over a {column_type.value} column"
        )
    _check_literal(constant)
    return f"({identifier} {OP_SQL[op]} {render_value(constant)})"


def compile_predicate(predicate: DNFPredicate, column_types: dict[str, AttributeType]) -> str:
    """Compile a DNF predicate; *column_types* maps qualified attribute names."""
    if predicate.is_true:
        return "1"
    conjuncts = []
    for conjunct in predicate.conjuncts:
        if not conjunct.terms:
            conjuncts.append("1")
            continue
        conjuncts.append(
            " AND ".join(
                compile_term(term, column_types[term.attribute])
                for term in conjunct.terms
            )
        )
    if len(conjuncts) == 1:
        return conjuncts[0]
    return " OR ".join(f"({c})" for c in conjuncts)


# ----------------------------------------------------------------- the mirror
class SqliteMirror:
    """A persistent ``:memory:`` SQLite copy of a base database.

    Unlike the cross-validation :class:`~repro.sql.sqlite_backend.SQLiteBackend`
    (which mirrors a database to answer rendered SELECTs), the mirror exists
    to be *mutated and rolled back* thousands of times: every table carries a
    ``"_qfe_id" INTEGER PRIMARY KEY`` column aliasing the rowid to the
    engine's stable ``tuple_id``, so a :class:`TupleDelta` translates into
    O(|Δ|) primary-key UPDATE/DELETE/INSERT statements, and foreign-key
    columns are indexed so the per-attempt join never scans.
    """

    def __init__(self, database: Database) -> None:
        self._connection = sqlite3.connect(":memory:")
        try:
            self._table_columns: dict[str, tuple[str, ...]] = {}
            with get_tracer().span("sql.mirror.load"):
                self._load(database)
        except BaseException:
            self._connection.close()
            raise
        PUSHDOWN_STATS.base_loads += 1

    # ------------------------------------------------------------------ setup
    def _load(self, database: Database) -> None:
        cursor = self._connection.cursor()
        for relation in database:
            schema = relation.schema
            if any(a.name == _ID_COLUMN for a in schema.attributes):
                raise PushdownUnsupportedError(
                    f"table {schema.name!r} has a column named {_ID_COLUMN!r}"
                )
            cursor.execute(self._create_table_sql(schema))
            names = tuple(a.name for a in schema.attributes)
            self._table_columns[schema.name] = names
            placeholders = ", ".join("?" for _ in range(len(names) + 1))
            insert_sql = f'INSERT INTO "{schema.name}" VALUES ({placeholders})'
            try:
                cursor.executemany(insert_sql, _bulk_rows(relation))
            except OverflowError as exc:
                raise PushdownUnsupportedError(
                    f"table {schema.name!r} holds an integer outside SQLite's "
                    f"64-bit range: {exc}"
                ) from exc
        for index, fk in enumerate(database.schema.foreign_keys):
            for table, columns in (
                (fk.child_table, fk.child_columns),
                (fk.parent_table, fk.parent_columns),
            ):
                cols = ", ".join(f'"{c}"' for c in columns)
                cursor.execute(
                    f'CREATE INDEX IF NOT EXISTS "qfe_fk{index}_{table}" '
                    f'ON "{table}" ({cols})'
                )
        self._connection.commit()

    @staticmethod
    def _create_table_sql(schema: TableSchema) -> str:
        columns = ", ".join(
            f'"{attribute.name}" {attribute.type.sql_name}'
            for attribute in schema.attributes
        )
        return (
            f'CREATE TABLE "{schema.name}" '
            f'("{_ID_COLUMN}" INTEGER PRIMARY KEY, {columns})'
        )

    # ---------------------------------------------------------------- attempts
    @contextmanager
    def attempt(self, delta: TupleDelta) -> Iterator[sqlite3.Cursor]:
        """Apply *delta* inside a SAVEPOINT; rolls back on exit, always.

        SQLite failures (bind overflow, engine errors) surface as
        :class:`PushdownExecutionError` after the rollback has restored the
        base state, so a failed attempt never poisons the mirror.
        """
        cursor = self._connection.cursor()
        cursor.execute('SAVEPOINT "qfe_attempt"')
        try:
            with get_tracer().span("sql.mirror.dml"):
                self._apply_delta(cursor, delta)
            yield cursor
        except (sqlite3.Error, OverflowError, PushdownUnsupportedError) as exc:
            raise PushdownExecutionError(f"SQLite rejected the attempt: {exc}") from exc
        finally:
            cursor.execute('ROLLBACK TO "qfe_attempt"')
            cursor.execute('RELEASE "qfe_attempt"')

    def _apply_delta(self, cursor: sqlite3.Cursor, delta: TupleDelta) -> None:
        for relation in delta.relations:
            names = self._table_columns[relation]
            updates = delta.updates_for(relation)
            if updates:
                assignments = ", ".join(f'"{n}" = ?' for n in names)
                cursor.executemany(
                    f'UPDATE "{relation}" SET {assignments} WHERE "{_ID_COLUMN}" = ?',
                    [
                        (*_encode_row(values), tuple_id)
                        for tuple_id, values in updates.items()
                    ],
                )
            deletes = delta.deletes_for(relation)
            if deletes:
                cursor.executemany(
                    f'DELETE FROM "{relation}" WHERE "{_ID_COLUMN}" = ?',
                    [(tuple_id,) for tuple_id in sorted(deletes)],
                )
            inserts = delta.inserts_for(relation)
            if inserts:
                placeholders = ", ".join("?" for _ in range(len(names) + 1))
                cursor.executemany(
                    f'INSERT INTO "{relation}" VALUES ({placeholders})',
                    [
                        (tuple_id, *_encode_row(values))
                        for tuple_id, values in inserts.items()
                    ],
                )

    def close(self) -> None:
        """Close the underlying SQLite connection."""
        self._connection.close()

    def __enter__(self) -> "SqliteMirror":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _encode_row(row: Sequence[Any]) -> tuple:
    return tuple(int(v) if isinstance(v, bool) else v for v in row)


def _bulk_rows(relation: Relation) -> Iterator[tuple]:
    """Encode a base relation column-major through the typed column buffers.

    The bulk load is the one place the mirror touches every cell of the base
    database, so it reuses the compact columnar layer: int64/float64 columns
    unbox through C-level ``array.tolist``, dictionary strings through a map
    over the code array, and bit-packed bools fan the truth mask out into
    0/1 INTEGERs. Per-value Python work is confined to side-table cells
    (NULLs, out-of-int64 ints — which SQLite's binding layer still rejects
    with ``OverflowError`` → :class:`PushdownUnsupportedError`) and to
    columns that fell back to the object layout.
    """
    tuples = relation.tuples
    if not tuples:
        return iter(())
    raw_columns = list(zip(*(t.values for t in tuples)))
    encoded_columns: list[list[Any]] = []
    for attribute, values in zip(relation.schema.attributes, raw_columns):
        typed = build_typed_column(attribute.type, values)
        if typed is None:
            encoded_columns.append([int(v) if isinstance(v, bool) else v for v in values])
            continue
        if isinstance(typed, BoolColumn):
            encoded = [0] * len(values)
            for position in mask_positions(typed.truth_mask):
                encoded[position] = 1
            for position in mask_positions(typed.special_mask):
                value = values[position]
                encoded[position] = int(value) if isinstance(value, bool) else value
        else:
            encoded = typed.boxed()
            for position in mask_positions(typed.special_mask):
                value = encoded[position]
                if isinstance(value, bool):
                    encoded[position] = int(value)
        encoded_columns.append(encoded)
    return zip((t.tuple_id for t in tuples), *encoded_columns)


# ------------------------------------------------------------------ the round
@dataclass(frozen=True)
class _QueryFold:
    """How one query's fingerprint folds out of a signature statement's rows."""

    query_index: int
    positions: tuple[int, ...]  # projected columns, as indexes into the row
    count_index: int  # this query's SUM(CASE ...) column
    distinct: bool


@dataclass(frozen=True)
class _SignatureStatement:
    """One aggregated SELECT covering every query of one join signature."""

    sql: str
    folds: tuple[_QueryFold, ...]


@dataclass(frozen=True)
class RoundProgram:
    """The compiled form of one round's surviving-candidate batch.

    Executing the program against a mirror cursor (inside an attempt's
    SAVEPOINT) yields one hashable fingerprint per query whose equality
    classes are exactly bag (resp. set, under ``set_semantics``) equality of
    the queries' results — the input
    :func:`~repro.core.partitioner.partition_signature` needs. Fingerprints
    deliberately aggregate over the *projected* rows, not raw predicate
    membership vectors: two candidates satisfied by different joined rows
    can still project to equal results, and the partition must say so.
    """

    statements: tuple[_SignatureStatement, ...]
    query_count: int
    set_semantics: bool = False

    def fingerprints(self, cursor: sqlite3.Cursor) -> tuple[Any, ...]:
        """Execute every signature statement and fold per-query fingerprints."""
        fingerprints: list[Any] = [None] * self.query_count
        with get_tracer().span("sql.mirror.select", statements=len(self.statements)):
            for statement in self.statements:
                try:
                    rows = cursor.execute(statement.sql).fetchall()
                except sqlite3.Error as exc:
                    raise PushdownExecutionError(
                        f"SQLite rejected the round statement: {exc}\n{statement.sql}"
                    ) from exc
                for fold in statement.folds:
                    fingerprints[fold.query_index] = self._fold(rows, fold)
        return tuple(fingerprints)

    def _fold(self, rows: list, fold: _QueryFold) -> Any:
        if self.set_semantics:
            return frozenset(
                tuple(canonical_value(row[p]) for p in fold.positions)
                for row in rows
                if row[fold.count_index]
            )
        bag: Counter = Counter()
        for row in rows:
            count = row[fold.count_index]
            if not count:
                continue
            key = tuple(canonical_value(row[p]) for p in fold.positions)
            if fold.distinct:
                bag[key] = 1
            else:
                bag[key] += count
        return frozenset(bag.items())


def compile_round(
    queries: Sequence[SPJQuery],
    database: Database,
    *,
    set_semantics: bool = False,
) -> RoundProgram:
    """Compile a candidate batch into per-join-signature aggregated SELECTs.

    Queries sharing a join signature share one statement: the SELECT groups
    by the union of their projected columns and carries one
    ``SUM(CASE WHEN <predicate> THEN 1 ELSE 0 END)`` column per query, so a
    batch of ``q`` candidates over ``s`` signatures costs ``s`` SQLite passes
    regardless of ``q``. Raises :class:`PushdownUnsupportedError` when any
    predicate cannot be compiled with exact evaluator semantics.
    """
    schema = database.schema
    column_types: dict[str, AttributeType] = {}
    for table_name in schema.table_names:
        table = schema.table(table_name)
        for attribute in table.attributes:
            column_types[f"{table_name}.{attribute.name}"] = attribute.type

    by_signature: dict[tuple[str, ...], list[int]] = {}
    for index, query in enumerate(queries):
        by_signature.setdefault(query.join_signature, []).append(index)

    statements: list[_SignatureStatement] = []
    for signature, indexes in by_signature.items():
        columns: list[str] = []
        column_index: dict[str, int] = {}
        for index in indexes:
            for name in queries[index].projection:
                if name not in column_index:
                    column_index[name] = len(columns)
                    columns.append(name)
        select_parts = [render_identifier(name) for name in columns]
        folds: list[_QueryFold] = []
        for index in indexes:
            query = queries[index]
            condition = compile_predicate(query.predicate, column_types)
            folds.append(
                _QueryFold(
                    query_index=index,
                    positions=tuple(column_index[name] for name in query.projection),
                    count_index=len(select_parts),
                    distinct=query.distinct,
                )
            )
            select_parts.append(f"SUM(CASE WHEN {condition} THEN 1 ELSE 0 END)")
        group_by = ", ".join(str(i + 1) for i in range(len(columns)))
        sql = (
            f"SELECT {', '.join(select_parts)}\n"
            f"FROM {render_from_clause(signature, schema)}\n"
            f"GROUP BY {group_by}"
        )
        statements.append(_SignatureStatement(sql=sql, folds=tuple(folds)))
    return RoundProgram(
        statements=tuple(statements),
        query_count=len(queries),
        set_semantics=set_semantics,
    )
