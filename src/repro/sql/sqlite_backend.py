"""SQLite cross-validation backend.

The paper's prototype ran its workloads against MySQL. We substitute the
standard library's :mod:`sqlite3`: the backend loads a
:class:`~repro.relational.database.Database` into an in-memory SQLite
database, executes rendered SQL and returns the result as a
:class:`~repro.relational.relation.Relation`. The test suite uses it to
cross-check our pure-Python evaluator against an independent SQL engine on
every workload query, which is how we gain confidence that the substrate the
QFE algorithms run on is faithful.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Iterable

from repro.exceptions import EvaluationError
from repro.relational.database import Database
from repro.relational.evaluator import result_schema
from repro.relational.query import SPJQuery, SPJUQuery
from repro.relational.relation import Relation
from repro.relational.schema import TableSchema
from repro.relational.types import AttributeType
from repro.sql.render import render_query, render_union

__all__ = ["SQLiteBackend", "cross_check"]


class SQLiteBackend:
    """Execute library queries against an in-memory SQLite copy of a database."""

    def __init__(self, database: Database) -> None:
        self._database = database
        self._connection = sqlite3.connect(":memory:")
        self._load()

    # ------------------------------------------------------------------ setup
    def _load(self) -> None:
        cursor = self._connection.cursor()
        for relation in self._database:
            cursor.execute(self._create_table_sql(relation.schema))
            placeholders = ", ".join("?" for _ in relation.schema.attributes)
            insert_sql = f'INSERT INTO "{relation.name}" VALUES ({placeholders})'
            cursor.executemany(insert_sql, [self._encode_row(row) for row in relation.rows()])
        self._connection.commit()

    @staticmethod
    def _create_table_sql(schema: TableSchema) -> str:
        columns = ", ".join(
            f'"{attribute.name}" {attribute.type.sql_name}' for attribute in schema.attributes
        )
        return f'CREATE TABLE "{schema.name}" ({columns})'

    @staticmethod
    def _encode_row(row: Iterable[Any]) -> tuple:
        return tuple(int(v) if isinstance(v, bool) else v for v in row)

    # -------------------------------------------------------------- execution
    def execute_sql(self, sql: str) -> list[tuple]:
        """Run raw SQL and return the fetched rows."""
        try:
            cursor = self._connection.execute(sql)
        except sqlite3.Error as exc:
            raise EvaluationError(f"SQLite rejected the query: {exc}\n{sql}") from exc
        return [tuple(row) for row in cursor.fetchall()]

    def execute(self, query: SPJQuery | SPJUQuery, *, name: str = "Result") -> Relation:
        """Execute a query object and return its result as a :class:`Relation`."""
        if isinstance(query, SPJUQuery):
            sql = render_union(query, self._database.schema)
            schema = result_schema(query.branches[0], self._database, name=name)
            column_types = [a.type for a in schema.attributes]
        else:
            sql = render_query(query, self._database.schema)
            schema = result_schema(query, self._database, name=name)
            column_types = [a.type for a in schema.attributes]
        rows = self.execute_sql(sql)
        result = Relation(schema)
        for row in rows:
            result.insert([self._decode_value(v, t) for v, t in zip(row, column_types)])
        return result

    @staticmethod
    def _decode_value(value: Any, attribute_type: AttributeType) -> Any:
        if value is None:
            return None
        if attribute_type is AttributeType.BOOLEAN:
            return bool(value)
        if attribute_type is AttributeType.FLOAT:
            return float(value)
        if attribute_type is AttributeType.INTEGER and isinstance(value, float) and value.is_integer():
            return int(value)
        return value

    def close(self) -> None:
        """Close the underlying SQLite connection."""
        self._connection.close()

    def __enter__(self) -> "SQLiteBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def cross_check(
    query: SPJQuery | SPJUQuery,
    database: Database,
    *,
    backend: SQLiteBackend | None = None,
) -> bool:
    """Whether our evaluator and SQLite agree on the query's result (bag equality).

    Pass a *backend* already loaded with *database* to cross-check a whole
    run of queries against one mirror connection instead of rebuilding the
    SQLite copy per call; without one, a fresh backend is created and closed
    deterministically around the single check.
    """
    from repro.relational.evaluator import evaluate

    ours = evaluate(query, database)
    if backend is not None:
        theirs = backend.execute(query)
    else:
        with SQLiteBackend(database) as owned:
            theirs = owned.execute(query)
    return ours.bag_equal(theirs)
