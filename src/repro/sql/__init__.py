"""SQL layer: rendering, parsing, SQLite cross-validation and pushdown."""

from repro.sql.parser import parse_query
from repro.sql.pushdown import (
    PUSHDOWN_STATS,
    PushdownExecutionError,
    PushdownUnsupportedError,
    RoundProgram,
    SqliteMirror,
    compile_predicate,
    compile_round,
    compile_term,
)
from repro.sql.render import render_predicate, render_query, render_union, render_value
from repro.sql.sqlite_backend import SQLiteBackend, cross_check
from repro.sql.tokenizer import Token, tokenize

__all__ = [
    "parse_query",
    "render_query",
    "render_union",
    "render_predicate",
    "render_value",
    "SQLiteBackend",
    "cross_check",
    "PushdownUnsupportedError",
    "PushdownExecutionError",
    "PUSHDOWN_STATS",
    "SqliteMirror",
    "RoundProgram",
    "compile_term",
    "compile_predicate",
    "compile_round",
    "Token",
    "tokenize",
]
