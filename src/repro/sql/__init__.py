"""SQL layer: rendering, parsing and SQLite cross-validation."""

from repro.sql.parser import parse_query
from repro.sql.render import render_predicate, render_query, render_union, render_value
from repro.sql.sqlite_backend import SQLiteBackend, cross_check
from repro.sql.tokenizer import Token, tokenize

__all__ = [
    "parse_query",
    "render_query",
    "render_union",
    "render_predicate",
    "render_value",
    "SQLiteBackend",
    "cross_check",
    "Token",
    "tokenize",
]
