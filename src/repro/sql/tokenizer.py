"""A small SQL tokenizer for the SPJ subset understood by the parser.

Supported token kinds: keywords/identifiers (optionally ``"quoted"`` or
``table.column`` qualified), numeric literals, single-quoted string literals,
comparison operators, commas, parentheses and the statement-ending semicolon.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SQLSyntaxError

__all__ = ["Token", "tokenize"]

_OPERATORS = ("<>", "!=", "<=", ">=", "=", "<", ">")
_PUNCTUATION = {",": "COMMA", "(": "LPAREN", ")": "RPAREN", ";": "SEMI", "*": "STAR", ".": "DOT"}


@dataclass(frozen=True)
class Token:
    """A single lexical token with its kind, text and source position."""

    kind: str
    text: str
    position: int

    @property
    def upper(self) -> str:
        """The token text upper-cased (for keyword comparison)."""
        return self.text.upper()


def tokenize(sql: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`SQLSyntaxError` on unknown characters."""
    tokens: list[Token] = []
    i = 0
    length = len(sql)
    while i < length:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and i + 1 < length and sql[i + 1] == "-":
            newline = sql.find("\n", i)
            i = length if newline < 0 else newline + 1
            continue
        if ch == "'":
            end = i + 1
            parts: list[str] = []
            while True:
                if end >= length:
                    raise SQLSyntaxError(f"unterminated string literal at position {i}")
                if sql[end] == "'":
                    if end + 1 < length and sql[end + 1] == "'":
                        parts.append("'")
                        end += 2
                        continue
                    break
                parts.append(sql[end])
                end += 1
            tokens.append(Token("STRING", "".join(parts), i))
            i = end + 1
            continue
        if ch == '"':
            end = sql.find('"', i + 1)
            if end < 0:
                raise SQLSyntaxError(f"unterminated quoted identifier at position {i}")
            tokens.append(Token("IDENT", sql[i + 1 : end], i))
            i = end + 1
            continue
        matched_operator = next((op for op in _OPERATORS if sql.startswith(op, i)), None)
        if matched_operator:
            tokens.append(Token("OP", matched_operator, i))
            i += len(matched_operator)
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(_PUNCTUATION[ch], ch, i))
            i += 1
            continue
        if ch.isdigit() or (ch in "+-" and i + 1 < length and sql[i + 1].isdigit()):
            end = i + 1
            while end < length and (sql[end].isdigit() or sql[end] in ".eE+-"):
                # Stop a trailing +/- that is not part of an exponent.
                if sql[end] in "+-" and sql[end - 1] not in "eE":
                    break
                end += 1
            tokens.append(Token("NUMBER", sql[i:end], i))
            i = end
            continue
        if ch.isalpha() or ch == "_":
            end = i + 1
            while end < length and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            tokens.append(Token("IDENT", sql[i:end], i))
            i = end
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r} at position {i}")
    return tokens
