"""Parse the SPJ SQL subset into :class:`~repro.relational.query.SPJQuery` objects.

Supported grammar (case-insensitive keywords)::

    query      := SELECT [DISTINCT] projection FROM source {join} [WHERE expr] [;]
    projection := '*' | column {',' column}
    source     := table {',' table}
    join       := [INNER] JOIN table ON column '=' column {AND column '=' column}
    expr       := or_expr
    or_expr    := and_expr {OR and_expr}
    and_expr   := primary {AND primary}
    primary    := '(' expr ')' | comparison
    comparison := column op literal | column [NOT] IN '(' literal {',' literal} ')'
                | column op column          -- treated as an explicit join condition

The boolean expression is converted to disjunctive normal form, matching the
paper's candidate query representation. Column-to-column equality comparisons
are interpreted as join conditions (they must correspond to a declared
foreign key when a schema is supplied) and are removed from the selection
predicate, because the engine performs joins along declared foreign keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Any, Sequence

from repro.exceptions import SQLSyntaxError
from repro.relational.predicates import ComparisonOp, Conjunct, DNFPredicate, Term
from repro.relational.query import SPJQuery
from repro.relational.schema import DatabaseSchema, qualify
from repro.sql.tokenizer import Token, tokenize

__all__ = ["parse_query"]

_OP_FROM_SQL = {
    "=": ComparisonOp.EQ,
    "<>": ComparisonOp.NE,
    "!=": ComparisonOp.NE,
    "<": ComparisonOp.LT,
    "<=": ComparisonOp.LE,
    ">": ComparisonOp.GT,
    ">=": ComparisonOp.GE,
}


# --------------------------------------------------------------------------- AST
@dataclass(frozen=True)
class _Comparison:
    attribute: str
    op: ComparisonOp
    constant: Any


@dataclass(frozen=True)
class _JoinCondition:
    left: str
    right: str


@dataclass(frozen=True)
class _And:
    parts: tuple


@dataclass(frozen=True)
class _Or:
    parts: tuple


class _Parser:
    def __init__(self, tokens: Sequence[Token]) -> None:
        self._tokens = list(tokens)
        self._position = 0

    # ------------------------------------------------------------ token utils
    def _peek(self) -> Token | None:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _advance(self) -> Token:
        token = self._peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of SQL input")
        self._position += 1
        return token

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._advance()
        if token.kind != "IDENT" or token.upper != keyword:
            raise SQLSyntaxError(f"expected {keyword}, found {token.text!r}")
        return token

    def _expect_kind(self, kind: str) -> Token:
        token = self._advance()
        if token.kind != kind:
            raise SQLSyntaxError(f"expected {kind}, found {token.text!r}")
        return token

    def _match_keyword(self, *keywords: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "IDENT" and token.upper in keywords:
            self._position += 1
            return True
        return False

    def _peek_keyword(self, *keywords: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "IDENT" and token.upper in keywords

    # ------------------------------------------------------------- components
    def parse(self) -> tuple[bool, list[str] | None, list[str], list[_JoinCondition], object | None]:
        self._expect_keyword("SELECT")
        distinct = self._match_keyword("DISTINCT")
        projection = self._parse_projection()
        self._expect_keyword("FROM")
        tables, join_conditions = self._parse_from()
        where_expr = None
        if self._match_keyword("WHERE"):
            where_expr = self._parse_or()
        token = self._peek()
        if token is not None and token.kind == "SEMI":
            self._position += 1
            token = self._peek()
        if token is not None:
            raise SQLSyntaxError(f"unexpected trailing token {token.text!r}")
        return distinct, projection, tables, join_conditions, where_expr

    def _parse_projection(self) -> list[str] | None:
        token = self._peek()
        if token is not None and token.kind == "STAR":
            self._advance()
            return None
        columns = [self._parse_column()]
        while self._peek() is not None and self._peek().kind == "COMMA":
            self._advance()
            columns.append(self._parse_column())
        return columns

    def _parse_column(self) -> str:
        first = self._expect_kind("IDENT")
        token = self._peek()
        if token is not None and token.kind == "DOT":
            self._advance()
            second = self._expect_kind("IDENT")
            return f"{first.text}.{second.text}"
        return first.text

    def _parse_from(self) -> tuple[list[str], list[_JoinCondition]]:
        tables = [self._expect_kind("IDENT").text]
        join_conditions: list[_JoinCondition] = []
        while True:
            token = self._peek()
            if token is None:
                break
            if token.kind == "COMMA":
                self._advance()
                tables.append(self._expect_kind("IDENT").text)
                continue
            if token.kind == "IDENT" and token.upper in ("JOIN", "INNER"):
                if token.upper == "INNER":
                    self._advance()
                self._expect_keyword("JOIN")
                tables.append(self._expect_kind("IDENT").text)
                self._expect_keyword("ON")
                join_conditions.extend(self._parse_on_conditions())
                continue
            break
        return tables, join_conditions

    def _parse_on_conditions(self) -> list[_JoinCondition]:
        conditions = [self._parse_single_on()]
        while self._peek_keyword("AND"):
            self._advance()
            conditions.append(self._parse_single_on())
        return conditions

    def _parse_single_on(self) -> _JoinCondition:
        left = self._parse_column()
        op_token = self._expect_kind("OP")
        if op_token.text != "=":
            raise SQLSyntaxError("join conditions must be equality comparisons")
        right = self._parse_column()
        return _JoinCondition(left, right)

    # -------------------------------------------------------------- predicate
    def _parse_or(self):
        parts = [self._parse_and()]
        while self._match_keyword("OR"):
            parts.append(self._parse_and())
        if len(parts) == 1:
            return parts[0]
        return _Or(tuple(parts))

    def _parse_and(self):
        parts = [self._parse_primary()]
        while self._match_keyword("AND"):
            parts.append(self._parse_primary())
        if len(parts) == 1:
            return parts[0]
        return _And(tuple(parts))

    def _parse_primary(self):
        token = self._peek()
        if token is not None and token.kind == "LPAREN":
            self._advance()
            inner = self._parse_or()
            self._expect_kind("RPAREN")
            return inner
        return self._parse_comparison()

    def _parse_comparison(self):
        attribute = self._parse_column()
        if self._match_keyword("NOT"):
            self._expect_keyword("IN")
            values = self._parse_literal_list()
            return _Comparison(attribute, ComparisonOp.NOT_IN, tuple(values))
        if self._match_keyword("IN"):
            values = self._parse_literal_list()
            return _Comparison(attribute, ComparisonOp.IN, tuple(values))
        op_token = self._expect_kind("OP")
        operator = _OP_FROM_SQL.get(op_token.text)
        if operator is None:
            raise SQLSyntaxError(f"unsupported operator {op_token.text!r}")
        token = self._peek()
        if token is not None and token.kind == "IDENT" and token.upper not in ("TRUE", "FALSE", "NULL"):
            right = self._parse_column()
            if operator is not ComparisonOp.EQ:
                raise SQLSyntaxError("column-to-column comparisons must use '='")
            return _JoinCondition(attribute, right)
        constant = self._parse_literal()
        return _Comparison(attribute, operator, constant)

    def _parse_literal_list(self) -> list[Any]:
        self._expect_kind("LPAREN")
        values = [self._parse_literal()]
        while self._peek() is not None and self._peek().kind == "COMMA":
            self._advance()
            values.append(self._parse_literal())
        self._expect_kind("RPAREN")
        return values

    def _parse_literal(self) -> Any:
        token = self._advance()
        if token.kind == "STRING":
            return token.text
        if token.kind == "NUMBER":
            text = token.text
            if any(ch in text for ch in ".eE"):
                return float(text)
            return int(text)
        if token.kind == "IDENT" and token.upper in ("TRUE", "FALSE"):
            return token.upper == "TRUE"
        if token.kind == "IDENT" and token.upper == "NULL":
            return None
        raise SQLSyntaxError(f"expected a literal, found {token.text!r}")


# ------------------------------------------------------------------ DNF rewriting
def _to_dnf(expr) -> list[list]:
    """Convert the boolean AST to a list of conjuncts (each a list of leaves)."""
    if isinstance(expr, (_Comparison, _JoinCondition)):
        return [[expr]]
    if isinstance(expr, _And):
        child_dnfs = [_to_dnf(part) for part in expr.parts]
        conjuncts: list[list] = []
        for combination in product(*child_dnfs):
            merged: list = []
            for conjunct in combination:
                merged.extend(conjunct)
            conjuncts.append(merged)
        return conjuncts
    if isinstance(expr, _Or):
        conjuncts = []
        for part in expr.parts:
            conjuncts.extend(_to_dnf(part))
        return conjuncts
    raise SQLSyntaxError(f"unsupported expression node {expr!r}")  # pragma: no cover


def _qualify_attribute(name: str, tables: Sequence[str], schema: DatabaseSchema | None) -> str:
    if "." in name:
        return name
    if schema is not None:
        owners = [t for t in tables if schema.table(t).has_attribute(name)]
        if len(owners) == 1:
            return qualify(owners[0], name)
        if not owners:
            raise SQLSyntaxError(f"column {name!r} does not belong to any referenced table")
        raise SQLSyntaxError(f"column {name!r} is ambiguous between tables {sorted(owners)}")
    if len(tables) == 1:
        return qualify(tables[0], name)
    raise SQLSyntaxError(
        f"column {name!r} must be table-qualified when multiple tables are referenced"
    )


def parse_query(sql: str, schema: DatabaseSchema | None = None) -> SPJQuery:
    """Parse SQL text into an :class:`SPJQuery`.

    When *schema* is given, unqualified column names are resolved against it,
    ``SELECT *`` expands to all joined columns, and the query is validated.
    """
    tokens = tokenize(sql)
    distinct, projection, tables, explicit_joins, where_expr = _Parser(tokens).parse()

    conjuncts: list[Conjunct] = []
    join_conditions = list(explicit_joins)
    if where_expr is not None:
        dnf = _to_dnf(where_expr)
        predicate_conjuncts: list[list[Term]] = []
        for leaves in dnf:
            terms: list[Term] = []
            for leaf in leaves:
                if isinstance(leaf, _JoinCondition):
                    join_conditions.append(leaf)
                    continue
                attribute = _qualify_attribute(leaf.attribute, tables, schema)
                terms.append(Term(attribute, leaf.op, leaf.constant))
            predicate_conjuncts.append(terms)
        # A disjunct that only contained join conditions selects everything.
        if any(not terms for terms in predicate_conjuncts) and len(predicate_conjuncts) > 1:
            predicate_conjuncts = [t for t in predicate_conjuncts if t] or [[]]
        conjuncts = [Conjunct(terms) for terms in predicate_conjuncts if terms]
        if not conjuncts and any(isinstance(l, _Comparison) for leaves in dnf for l in leaves):
            conjuncts = []

    if projection is None:
        if schema is None:
            raise SQLSyntaxError("SELECT * requires a database schema to expand columns")
        projection = []
        for table in tables:
            projection.extend(schema.table(table).qualified_names())
    else:
        projection = [_qualify_attribute(column, tables, schema) for column in projection]

    predicate = DNFPredicate(conjuncts) if conjuncts else DNFPredicate.true()
    query = SPJQuery(tables, projection, predicate, distinct=distinct)
    if schema is not None:
        query.validate(schema)
    return query
