"""Render query objects to SQL text.

The generated SQL targets the SQLite dialect (double-quoted identifiers,
``<>`` inequality). Joins are rendered as explicit ``INNER JOIN ... ON``
clauses along the schema's foreign keys when a
:class:`~repro.relational.schema.DatabaseSchema` is provided, and as a
comma-separated ``FROM`` list with ``WHERE`` join conditions otherwise.
This is the SQL a QFE user would take away once their target query has been
identified.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.relational.predicates import ComparisonOp, Conjunct, DNFPredicate, Term
from repro.relational.query import SPJQuery, SPJUQuery
from repro.relational.schema import DatabaseSchema, qualify
from repro.relational.types import float_literal

__all__ = [
    "render_query",
    "render_union",
    "render_predicate",
    "render_value",
    "render_identifier",
    "render_from_clause",
    "OP_SQL",
]


def render_value(value: Any) -> str:
    """Render a constant as a SQL literal.

    Floats are rendered with full ``repr`` round-trip precision: SQLite
    parses the literal back to the bit-identical double, so the SQL sent to
    the oracle backend selects exactly the rows the in-memory evaluator
    selects. (``"{:g}"`` — 6 significant digits — silently rewrote constants
    like ``0.1234567`` to ``0.123457``, making the two engines disagree.)
    """
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float):
        return float_literal(value)
    return str(value)


def render_identifier(name: str) -> str:
    """Render a (possibly ``table.column``-qualified) identifier, quoted."""
    table, _, column = name.partition(".")
    if column:
        return f'"{table}"."{column}"'
    return f'"{table}"'


#: SQL operator text per comparison operator (shared with the pushdown compiler).
OP_SQL = {
    ComparisonOp.EQ: "=",
    ComparisonOp.NE: "<>",
    ComparisonOp.LT: "<",
    ComparisonOp.LE: "<=",
    ComparisonOp.GT: ">",
    ComparisonOp.GE: ">=",
}


def _render_term(term: Term) -> str:
    identifier = render_identifier(term.attribute)
    if term.op is ComparisonOp.IN or term.op is ComparisonOp.NOT_IN:
        values = ", ".join(render_value(v) for v in term.constant)
        keyword = "IN" if term.op is ComparisonOp.IN else "NOT IN"
        return f"{identifier} {keyword} ({values})"
    return f"{identifier} {OP_SQL[term.op]} {render_value(term.constant)}"


def _render_conjunct(conjunct: Conjunct) -> str:
    if not conjunct.terms:
        return "1 = 1"
    return " AND ".join(_render_term(term) for term in conjunct.terms)


def render_predicate(predicate: DNFPredicate) -> str:
    """Render a DNF predicate as a SQL boolean expression."""
    if predicate.is_true:
        return "1 = 1"
    if len(predicate.conjuncts) == 1:
        return _render_conjunct(predicate.conjuncts[0])
    return " OR ".join(f"({_render_conjunct(c)})" for c in predicate.conjuncts)


def render_from_clause(tables: Sequence[str], schema: DatabaseSchema | None) -> str:
    """The FROM clause joining *tables* along the schema's foreign keys.

    With a schema, multi-table joins are rendered as explicit ``INNER JOIN
    ... ON`` clauses along a spanning tree of the foreign-key graph — the
    exact join :func:`~repro.relational.join.foreign_key_join` materializes,
    which is what lets the SQL-pushdown backend reproduce the evaluator's
    joined-row multiplicities. Without a schema the caller gets a plain
    comma-separated table list (single-table queries only, in practice).
    """
    tables = list(tables)
    if len(tables) == 1 or schema is None:
        # Without a schema we cannot know the join columns; the caller is
        # expected to pass the schema for multi-table queries.
        return ", ".join(f'"{t}"' for t in tables)

    spanning = schema.spanning_foreign_keys(tables)
    joined = [tables[0]]
    clause = f'"{tables[0]}"'
    remaining = list(spanning)
    while remaining:
        progressed = False
        for fk in list(remaining):
            if fk.child_table in joined and fk.parent_table not in joined:
                new_table = fk.parent_table
            elif fk.parent_table in joined and fk.child_table not in joined:
                new_table = fk.child_table
            else:
                continue
            conditions = " AND ".join(
                f"{render_identifier(qualify(fk.child_table, child))} = "
                f"{render_identifier(qualify(fk.parent_table, parent))}"
                for child, parent in fk.column_pairs()
            )
            clause += f'\n  INNER JOIN "{new_table}" ON {conditions}'
            joined.append(new_table)
            remaining.remove(fk)
            progressed = True
            break
        if not progressed:  # pragma: no cover - schema guarantees connectivity
            break
    return clause


def render_query(query: SPJQuery, schema: DatabaseSchema | None = None) -> str:
    """Render an SPJ query as a SQL SELECT statement."""
    select_kind = "SELECT DISTINCT" if query.distinct else "SELECT"
    projection = ", ".join(render_identifier(a) for a in query.projection)
    from_clause = render_from_clause(query.tables, schema)
    lines = [f"{select_kind} {projection}", f"FROM {from_clause}"]
    if not query.predicate.is_true:
        lines.append("WHERE " + render_predicate(query.predicate))
    return "\n".join(lines)


def render_union(query: SPJUQuery, schema: DatabaseSchema | None = None) -> str:
    """Render an SPJU query as a SQL UNION [ALL] of SELECT statements."""
    keyword = "UNION" if query.distinct else "UNION ALL"
    rendered = [render_query(branch, schema) for branch in query.branches]
    return f"\n{keyword}\n".join(rendered)
