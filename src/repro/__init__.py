"""repro — a reproduction of "Query From Examples" (Li, Chan & Maier, VLDB 2015).

The package implements the full QFE system: an in-memory relational engine
(:mod:`repro.relational`), a SQL render/parse/cross-check layer
(:mod:`repro.sql`), a QBO-style candidate query generator (:mod:`repro.qbo`),
the QFE interaction loop and Database Generator (:mod:`repro.core`), the
paper's datasets and workload queries (:mod:`repro.datasets`,
:mod:`repro.workloads`), the experiment harness regenerating every table
of the paper's evaluation (:mod:`repro.experiments`), and the session
service layer — resumable checkpointed sessions, multi-session
multiplexing, an HTTP JSON API (:mod:`repro.service`, served by
``qfe-serve``).

Quickstart::

    from repro.core import QFESession, OracleSelector
    from repro.datasets import employee

    database, result, target = employee.example_pair()
    session = QFESession(database, result)
    outcome = session.run(OracleSelector(target))
    print(outcome.identified_query)
"""

from repro.core import (
    OracleSelector,
    QFEConfig,
    QFESession,
    SessionResult,
    WorstCaseSelector,
)
from repro.qbo import QBOConfig, QueryGenerator
from repro.relational import Database, Relation, SPJQuery
from repro.sql import parse_query, render_query

__version__ = "1.0.0"

__all__ = [
    "QFESession",
    "SessionResult",
    "QFEConfig",
    "OracleSelector",
    "WorstCaseSelector",
    "QueryGenerator",
    "QBOConfig",
    "Database",
    "Relation",
    "SPJQuery",
    "parse_query",
    "render_query",
    "__version__",
]
